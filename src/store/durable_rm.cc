#include "store/durable_rm.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "org/rdl_dump.h"
#include "org/rdl_parser.h"
#include "store/fingerprint.h"

namespace wfrm::store {

namespace {

/// Durable-home marker. The magic identifies the directory as ours (a
/// foreign directory must never be "recovered" — the WAL torn-tail
/// logic would happily truncate someone else's file); the version gates
/// cross-build format skew with a clear error instead of a decode
/// failure deep in replay.
constexpr char kStoreMetaMagic[] = "wfrm-store-v1";
constexpr uint32_t kStoreFormatVersion = 1;

std::string EncodeStoreMeta() {
  std::string payload;
  AppendString(&payload, kStoreMetaMagic);
  AppendU32(&payload, kStoreFormatVersion);
  std::string bytes;
  AppendWalFrame(&bytes, payload);
  return bytes;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Persisted lease deadlines are remaining lifetimes, not timestamps:
// the manager's clock is monotonic with an arbitrary epoch (for
// SystemClock, microseconds since boot), so an absolute deadline
// journaled by one process would be nonsense to the process replaying
// it after a restart — a recovered lease could look live for hours or
// expired on arrival. ToDurableLease subtracts "now" at journal or
// snapshot time; FromDurableLease re-bases onto the recovering clock,
// so a restored lease gets exactly the lifetime it had left when its
// record was written. kNoExpiry passes through unchanged.
core::Lease ToDurableLease(core::Lease lease, int64_t now_micros) {
  if (lease.deadline_micros != core::Lease::kNoExpiry) {
    lease.deadline_micros -= now_micros;
  }
  return lease;
}

core::Lease FromDurableLease(core::Lease lease, int64_t now_micros) {
  if (lease.deadline_micros != core::Lease::kNoExpiry) {
    lease.deadline_micros += now_micros;
  }
  return lease;
}

}  // namespace

DurableResourceManager::DurableResourceManager(std::string dir,
                                               DurableOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  obs::MetricsRegistry* reg = options_.rm_options.metrics;
  if (reg != nullptr) {
    metrics_.wal_appends = reg->GetCounter(
        "wfrm_store_wal_appends_total", {}, "WAL records appended.");
    metrics_.wal_bytes = reg->GetCounter("wfrm_store_wal_bytes_total", {},
                                         "WAL bytes written (framed).");
    metrics_.wal_syncs = reg->GetCounter("wfrm_store_wal_syncs_total", {},
                                         "WAL fsync calls issued.");
    metrics_.wal_truncations =
        reg->GetCounter("wfrm_store_wal_truncations_total", {},
                        "WAL truncations after successful snapshots.");
    metrics_.snapshots = reg->GetCounter("wfrm_store_snapshots_total", {},
                                         "Snapshots committed.");
    metrics_.replayed_records =
        reg->GetCounter("wfrm_store_replayed_records_total", {},
                        "WAL records re-applied during recovery.");
    metrics_.replay_latency = reg->GetHistogram(
        "wfrm_store_replay_micros", obs::Histogram::LatencyBucketsMicros(), {},
        "Open() recovery time (snapshot load + WAL replay) in microseconds.");
    metrics_.wal_broken = reg->GetGauge(
        "wfrm_store_wal_broken", {},
        "1 when the WAL writer has latched broken after a failed append; "
        "a successful checkpoint clears it.");
    metrics_.degraded = reg->GetGauge(
        "wfrm_store_degraded", {},
        "1 when the store refuses mutations (WAL broken, standby replica, "
        "or replication partition); reads keep serving.");
  }
  ResetWorldLocked();
}

void DurableResourceManager::ResetWorldLocked() {
  org_ = std::make_unique<org::OrgModel>();
  store_ = std::make_unique<policy::PolicyStore>(org_.get());
  obs::MetricsRegistry* reg = options_.rm_options.metrics;
  if (reg != nullptr) store_->set_metrics(reg);
  rm_ = std::make_unique<core::ResourceManager>(org_.get(), store_.get(),
                                                options_.rm_options);
  // A fresh world is fully resident until LoadWorldFromPagesLocked
  // defers it again.
  org_hydrated_ = true;
  pending_org_rdl_.clear();
}

DurableResourceManager::~DurableResourceManager() = default;

Result<std::unique_ptr<DurableResourceManager>> DurableResourceManager::Open(
    const std::string& dir, DurableOptions options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::ExecutionError("cannot create durable home " + dir + ": " +
                                  ec.message());
  }
  std::unique_ptr<DurableResourceManager> d(
      new DurableResourceManager(dir, std::move(options)));
  // The lock comes first: everything after it (tmp reaping, recovery,
  // WAL truncation) assumes no concurrent owner of the home.
  WFRM_ASSIGN_OR_RETURN(d->home_lock_, HomeLock::Acquire(dir));
  d->ReapOrphanTmpFiles();
  WFRM_RETURN_NOT_OK(d->ValidateHome());
  WFRM_RETURN_NOT_OK(d->Recover());
  if (d->needs_meta_) {
    // Stamp legacy homes only after recovery proved the contents ours.
    WFRM_RETURN_NOT_OK(WriteFileDurable(d->MetaPath(), EncodeStoreMeta()));
    d->needs_meta_ = false;
  }
  return d;
}

void DurableResourceManager::ReapOrphanTmpFiles() {
  // A `.tmp` in the home is pre-rename scratch from a checkpoint or
  // durable-file write that crashed before its commit point. We hold
  // the home lock, so no live writer can own one — reap them all.
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() == ".tmp") {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) {
        ++recovery_.tmp_files_reaped;
      }
    }
  }
}

Status DurableResourceManager::ValidateHome() {
  Result<std::string> raw = ReadFileBytes(MetaPath());
  if (raw.ok()) {
    WalScan scan = ScanWalBuffer(*raw);
    std::string_view in;
    std::string magic;
    uint32_t version = 0;
    if (scan.torn_tail || scan.payloads.size() != 1 ||
        (in = scan.payloads.front(), !ReadString(&in, &magic))) {
      return Status::ExecutionError(dir_ +
                                    " is not a usable wfrm durable home: "
                                    "store.meta is damaged");
    }
    if (magic != kStoreMetaMagic) {
      return Status::ExecutionError(
          dir_ + " is not a wfrm durable home: store.meta has foreign magic");
    }
    if (!ReadU32(&in, &version) || version != kStoreFormatVersion) {
      return Status::ExecutionError(
          dir_ + " holds store format v" + std::to_string(version) +
          "; this build reads v" + std::to_string(kStoreFormatVersion));
    }
    return Status::OK();
  }
  if (raw.status().code() != StatusCode::kNotFound) return raw.status();

  // No marker. Adopt a pre-marker home only when its contents decode as
  // ours; anything else is a foreign or half-written directory, and
  // recovery must not touch it (torn-tail handling would truncate it).
  std::error_code ec;
  if (std::filesystem::exists(PagesPath(), ec)) {
    Result<std::string> head = ReadFileBytes(PagesPath());
    if (!head.ok() || !LooksLikePagesFile(*head)) {
      return Status::ExecutionError(
          dir_ + " is not a wfrm durable home: pages.db has foreign magic");
    }
  }
  const bool has_snapshot = std::filesystem::exists(SnapshotPath(), ec);
  uintmax_t wal_size = 0;
  if (std::filesystem::exists(WalPath(), ec)) {
    wal_size = std::filesystem::file_size(WalPath(), ec);
    if (ec) wal_size = 0;
  }
  if (has_snapshot) {
    Result<SnapshotData> snap = ReadSnapshot(SnapshotPath());
    if (!snap.ok()) {
      return Status::ExecutionError(dir_ + " is not a wfrm durable home: " +
                                    snap.status().message());
    }
  }
  if (wal_size > 0) {
    Result<WalScan> scan = ReadWal(WalPath());
    if (!scan.ok()) return scan.status();
    if (scan->payloads.empty() || !DecodeRecord(scan->payloads.front()).ok()) {
      return Status::ExecutionError(
          dir_ + " is not a wfrm durable home: wal.log is not a wfrm journal");
    }
  }
  needs_meta_ = true;
  return Status::OK();
}

Status DurableResourceManager::SaveWorld(const std::string& dir,
                                         const org::OrgModel& org,
                                         const policy::PolicyStore& store,
                                         const core::ResourceManager& rm) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::ExecutionError("cannot create durable home " + dir + ": " +
                                  ec.message());
  }
  // Hold the home lock for the write: SaveWorld into a home another
  // process has open would corrupt it under the owner's feet.
  WFRM_ASSIGN_OR_RETURN(HomeLock lock, HomeLock::Acquire(dir));
  SnapshotData data;
  WFRM_ASSIGN_OR_RETURN(data.rdl_text, org::DumpRdl(org));
  data.policy_image = store.ExportImage();
  const int64_t now = rm.clock().NowMicros();
  for (const core::Lease& lease : rm.ListLeases()) {
    data.leases.push_back(ToDurableLease(lease, now));
  }
  data.next_lease_id = rm.next_lease_id();
  data.last_seq = 0;
  WFRM_RETURN_NOT_OK(WriteSnapshot(dir + "/snapshot.dat", data));
  // Start with an empty log: the snapshot is the whole history.
  WalWriter wal;
  WFRM_RETURN_NOT_OK(
      wal.Open(dir + "/wal.log", FsyncMode::kOff, 0, /*valid_bytes=*/0));
  WFRM_RETURN_NOT_OK(wal.Sync());
  return WriteFileDurable(dir + "/store.meta", EncodeStoreMeta());
}

// ---- Recovery ---------------------------------------------------------------

Status DurableResourceManager::Recover() {
  const int64_t start = NowMicros();

  if (options_.backend == StorageBackend::kPaged) {
    WFRM_RETURN_NOT_OK(RecoverPagedBase());
  } else {
    Result<SnapshotData> snapshot = ReadSnapshot(SnapshotPath());
    if (snapshot.ok()) {
      WFRM_RETURN_NOT_OK(RestoreSnapshotLocked(*snapshot));
      recovery_.snapshot_loaded = true;
      recovery_.snapshot_seq = snapshot->last_seq;
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      return snapshot.status();
    }
  }

  WFRM_ASSIGN_OR_RETURN(WalScan scan, ReadWal(WalPath()));
  uint64_t good_bytes = 0;
  for (const std::string& payload : scan.payloads) {
    Result<Record> record = DecodeRecord(payload);
    if (!record.ok()) {
      // A CRC-valid but undecodable record: version skew or silent
      // corruption. Cut history here, exactly like a torn tail.
      recovery_.torn_tail = true;
      break;
    }
    if (record->seq <= recovery_.snapshot_seq && recovery_.snapshot_loaded) {
      // Already inside the snapshot — the crash hit between
      // snapshot-rename and WAL-truncation.
      ++recovery_.wal_records_skipped;
    } else {
      // A non-RDL record needs the hydrated world underneath it (policy
      // text resolves org type names, lease ops need the allocation
      // table). Pure-RDL tails stay buffered, so recovery cost tracks
      // the tail, not the org.
      if (record->type != RecordType::kRdl) {
        WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
      }
      ApplyRecord(*record);
      seq_ = record->seq;
      ++recovery_.wal_records_replayed;
    }
    good_bytes += 8 + payload.size();
  }
  recovery_.torn_tail = recovery_.torn_tail || scan.torn_tail;

  // Reopen for appends, cutting off whatever tail was not replayable.
  WFRM_RETURN_NOT_OK(wal_.Open(WalPath(), options_.fsync_mode,
                               options_.fsync_interval_records,
                               static_cast<int64_t>(good_bytes)));

  recovery_.replay_micros = NowMicros() - start;
  if (metrics_.replayed_records != nullptr) {
    metrics_.replayed_records->Increment(recovery_.wal_records_replayed);
  }
  if (metrics_.replay_latency != nullptr) {
    metrics_.replay_latency->Observe(
        static_cast<double>(recovery_.replay_micros));
  }
  UpdateHealthGaugesLocked();
  return Status::OK();
}

Status DurableResourceManager::RecoverPagedBase() {
  WFRM_ASSIGN_OR_RETURN(std::shared_ptr<PageStore> pages,
                        PageStore::Open(PagesPath(), options_.pager));
  pages_ = std::move(pages);

  // Migration: a legacy snapshot.dat (home written by the snapshot
  // backend, or a SaveWorld capture) is folded into the page trees,
  // committed, then removed. Idempotent — a crash anywhere before the
  // unlink re-runs the whole fold on the next open, and WAL records are
  // skipped by seq either way.
  Result<SnapshotData> legacy = ReadSnapshot(SnapshotPath());
  if (legacy.ok()) {
    WFRM_RETURN_NOT_OK(pages_->RewritePolicyImage(legacy->policy_image));
    WFRM_RETURN_NOT_OK(pages_->RewriteRdl(legacy->rdl_text));
    WFRM_RETURN_NOT_OK(pages_->RewriteLeases(legacy->leases));
    PageStoreMeta meta;
    meta.last_seq = legacy->last_seq;
    meta.next_lease_id = legacy->next_lease_id;
    meta.next_pid = legacy->policy_image.next_pid;
    meta.next_group = legacy->policy_image.next_group;
    meta.epoch = legacy->policy_image.epoch;
    WFRM_RETURN_NOT_OK(pages_->Commit(meta));
    std::error_code ec;
    std::filesystem::remove(SnapshotPath(), ec);
    recovery_.migrated_legacy = true;
  } else if (legacy.status().code() != StatusCode::kNotFound) {
    return legacy.status();
  }

  WFRM_RETURN_NOT_OK(LoadWorldFromPagesLocked());
  // A pre-existing pages.db that never saw a checkpoint and holds no
  // data contributed no state — the WAL rebuilds everything, same as a
  // home with no snapshot, so it does not count as a loaded base. A
  // migrated SaveWorld capture (real state at seq 0) does.
  recovery_.snapshot_loaded = pages_->meta().last_seq > 0 ||
                              pages_->has_state() ||
                              recovery_.migrated_legacy;
  recovery_.snapshot_seq = pages_->meta().last_seq;
  recovery_.lazy_policy_base = true;
  recovery_.lazy_org_base = true;
  return Status::OK();
}

Status DurableResourceManager::LoadWorldFromPagesLocked() {
  const PageStoreMeta meta = pages_->meta();
  // Nothing bulky loads eagerly: the policy base stays on disk behind
  // the bloom filter, and the org model + lease table hydrate together
  // on first use (EnsureOrgHydratedLocked). Open() pays only for the
  // meta slot and the WAL tail — O(dirty pages), not O(dataset).
  store_->AttachLazySource(pages_, meta.next_pid, meta.next_group, meta.epoch);
  // Track per-row deltas from here on: the WAL tail replayed by the
  // caller and every live mutation feed the next incremental checkpoint.
  store_->set_delta_tracking(true);
  rm_->AdvanceLeaseId(meta.next_lease_id);
  seq_ = meta.last_seq;
  org_hydrated_ = false;
  pending_org_rdl_.clear();
  org_dirty_ = false;
  dirty_lease_ids_.clear();
  return Status::OK();
}

Status DurableResourceManager::EnsureOrgHydrated() const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return EnsureOrgHydratedLocked();
}

Status DurableResourceManager::EnsureOrgHydratedLocked() const {
  if (org_hydrated_) return Status::OK();
  // Replay order is preserved: the checkpointed base first (RDL text,
  // then the lease table, each lease re-based onto the live clock), then
  // the buffered WAL-tail RDL records in journal order. Tail statements
  // replay with ignored status, exactly as ApplyRecord would have — a
  // script that failed live fails identically here.
  WFRM_ASSIGN_OR_RETURN(std::string rdl, pages_->LoadRdl());
  if (!rdl.empty()) {
    WFRM_RETURN_NOT_OK(org::ExecuteRdl(rdl, org_.get()));
  }
  WFRM_ASSIGN_OR_RETURN(std::vector<core::Lease> leases, pages_->LoadLeases());
  const int64_t now = rm_->clock().NowMicros();
  for (const core::Lease& lease : leases) {
    WFRM_RETURN_NOT_OK(rm_->RestoreLease(FromDurableLease(lease, now)));
  }
  for (const std::string& text : pending_org_rdl_) {
    (void)org::ExecuteRdl(text, org_.get());
  }
  pending_org_rdl_.clear();
  org_hydrated_ = true;
  return Status::OK();
}

Status DurableResourceManager::RestoreSnapshotLocked(const SnapshotData& data) {
  // The snapshot's RDL dump always re-executes cleanly against a
  // fresh org; failure means the snapshot lies about its own state.
  WFRM_RETURN_NOT_OK(org::ExecuteRdl(data.rdl_text, org_.get()));
  WFRM_RETURN_NOT_OK(store_->ImportImage(data.policy_image));
  const int64_t now = rm_->clock().NowMicros();
  for (const core::Lease& lease : data.leases) {
    WFRM_RETURN_NOT_OK(rm_->RestoreLease(FromDurableLease(lease, now)));
  }
  rm_->AdvanceLeaseId(data.next_lease_id);
  seq_ = data.last_seq;
  return Status::OK();
}

void DurableResourceManager::ApplyRecord(const Record& record) {
  // Replay reruns history faithfully: an operation that failed (or
  // partially applied — RDL scripts abort at the first bad statement)
  // when first journaled fails identically here, so its status is
  // deliberately ignored. The parsers return clean errors on any
  // malformed text, so a damaged record degrades to a no-op rather
  // than poisoning recovery.
  switch (record.type) {
    case RecordType::kRdl:
      if (org_hydrated_) {
        (void)org::ExecuteRdl(record.text, org_.get());
      } else {
        // Unhydrated paged base: buffer the tail record; hydration
        // replays it in journal order on top of the checkpointed base.
        pending_org_rdl_.emplace_back(record.text);
      }
      org_dirty_ = true;
      break;
    case RecordType::kPl:
      (void)store_->AddPolicyText(record.text);
      break;
    case RecordType::kRemoveQualification:
      (void)store_->RemoveQualification(record.id);
      break;
    case RecordType::kRemoveRequirementGroup:
      (void)store_->RemoveRequirementGroup(record.id);
      break;
    case RecordType::kRemoveSubstitutionGroup:
      (void)store_->RemoveSubstitutionGroup(record.id);
      break;
    case RecordType::kLeaseAcquire:
    case RecordType::kLeaseRenew:
      (void)rm_->RestoreLease(
          FromDurableLease(record.lease, rm_->clock().NowMicros()));
      if (record.lease.id != 0) dirty_lease_ids_.insert(record.lease.id);
      break;
    case RecordType::kLeaseRelease:
      // Matched by resource + id; the lifetime field is irrelevant.
      (void)rm_->Release(record.lease);
      if (record.lease.id != 0) dirty_lease_ids_.insert(record.lease.id);
      break;
  }
}

// ---- Journaling -------------------------------------------------------------

void DurableResourceManager::ReportSyncsLocked() {
  uint64_t total = wal_.syncs();
  if (metrics_.wal_syncs != nullptr && total > syncs_reported_) {
    metrics_.wal_syncs->Increment(total - syncs_reported_);
  }
  syncs_reported_ = total;
}

Status DurableResourceManager::JournalLocked(Record record) {
  record.seq = seq_ + 1;
  std::string payload = EncodeRecord(record);
  // seq_ advances only on success: a failed append (rolled back by the
  // writer) must leave the counter matching what the log holds.
  Status appended = wal_.Append(payload);
  if (!appended.ok()) {
    // The writer may have latched broken; surface it on the gauges now
    // rather than on the next mutation attempt.
    UpdateHealthGaugesLocked();
    return appended;
  }
  seq_ = record.seq;
  if (metrics_.wal_appends != nullptr) metrics_.wal_appends->Increment();
  if (metrics_.wal_bytes != nullptr) {
    metrics_.wal_bytes->Increment(payload.size() + 8);
  }
  ReportSyncsLocked();
  ++records_since_checkpoint_;
  return Status::OK();
}

Status DurableResourceManager::MaybeCheckpointLocked() {
  // Runs only after the journaled mutation has been applied — a
  // checkpoint taken between journal and apply would stamp the record's
  // seq on a snapshot that lacks its effect, then truncate the record.
  if (options_.snapshot_every_records == 0 ||
      records_since_checkpoint_ < options_.snapshot_every_records) {
    return Status::OK();
  }
  return CheckpointLocked();
}

Status DurableResourceManager::ExecuteRdl(std::string_view rdl_text) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  // Journal before apply: an RDL script that aborts mid-way still
  // mutated the org, and replay must reproduce exactly that partial
  // effect (redo-logging, DESIGN.md §10).
  Record record;
  record.type = RecordType::kRdl;
  record.text = std::string(rdl_text);
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  Status applied = org::ExecuteRdl(rdl_text, org_.get());
  // Even a script that aborted mid-way mutated the org.
  org_dirty_ = true;
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Status DurableResourceManager::AddPolicyText(std::string_view pl_text) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  Record record;
  record.type = RecordType::kPl;
  record.text = std::string(pl_text);
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  Status applied = store_->AddPolicyText(pl_text);
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Status DurableResourceManager::RemoveQualification(int64_t pid) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  Record record;
  record.type = RecordType::kRemoveQualification;
  record.id = pid;
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  Status applied = store_->RemoveQualification(pid);
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Status DurableResourceManager::RemoveRequirementGroup(int64_t group) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  Record record;
  record.type = RecordType::kRemoveRequirementGroup;
  record.id = group;
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  Status applied = store_->RemoveRequirementGroup(group);
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Status DurableResourceManager::RemoveSubstitutionGroup(int64_t group) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  Record record;
  record.type = RecordType::kRemoveSubstitutionGroup;
  record.id = group;
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  Status applied = store_->RemoveSubstitutionGroup(group);
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Result<core::Lease> DurableResourceManager::Acquire(std::string_view rql_text) {
  return AcquireImpl(rql_text, nullptr);
}

Result<core::Lease> DurableResourceManager::Acquire(std::string_view rql_text,
                                                    const RequestContext& ctx) {
  return AcquireImpl(rql_text, &ctx);
}

Result<core::Lease> DurableResourceManager::AcquireImpl(
    std::string_view rql_text, const RequestContext* ctx) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Checked after the lock: the wait for mutate_mu_ may itself have
  // eaten the budget, and starting enforcement now would be pure waste.
  WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  // Grants journal after apply: the record carries the *outcome* (which
  // resource, which id), which does not exist beforehand. The crash
  // window loses only unacknowledged grants. Once the claim landed the
  // lease is journaled and returned even if the deadline passed during
  // the claim — a typed failure here would leak the allocation.
  WFRM_ASSIGN_OR_RETURN(core::Lease lease,
                        ctx != nullptr ? rm_->Acquire(rql_text, *ctx)
                                       : rm_->Acquire(rql_text));
  Record record;
  record.type = RecordType::kLeaseAcquire;
  record.lease = ToDurableLease(lease, rm_->clock().NowMicros());
  Status journaled = JournalLocked(std::move(record));
  if (!journaled.ok()) {
    (void)rm_->Release(lease);  // Keep state ⊆ journal.
    return journaled;
  }
  dirty_lease_ids_.insert(lease.id);
  (void)MaybeCheckpointLocked();
  return lease;
}

Result<core::Lease> DurableResourceManager::AllocateLease(
    const org::ResourceRef& ref) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  WFRM_ASSIGN_OR_RETURN(core::Lease lease, rm_->AllocateLease(ref));
  Record record;
  record.type = RecordType::kLeaseAcquire;
  record.lease = ToDurableLease(lease, rm_->clock().NowMicros());
  Status journaled = JournalLocked(std::move(record));
  if (!journaled.ok()) {
    (void)rm_->Release(lease);
    return journaled;
  }
  dirty_lease_ids_.insert(lease.id);
  (void)MaybeCheckpointLocked();
  return lease;
}

Status DurableResourceManager::Release(const core::Lease& lease) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  // Journal before apply, unlike the grant paths: releasing a concrete
  // lease replays deterministically, and journaling second would let a
  // failed append leave a release applied in memory that replay undoes
  // — the resource held again by a lease its owner believes released.
  // If the apply below fails (stale lease), replay fails identically:
  // the record degrades to a no-op.
  Record record;
  record.type = RecordType::kLeaseRelease;
  record.lease = ToDurableLease(lease, rm_->clock().NowMicros());
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  if (lease.id != 0) dirty_lease_ids_.insert(lease.id);
  Status applied = rm_->Release(lease);
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Status DurableResourceManager::Release(const org::ResourceRef& ref) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  // Journal before apply (see Release(Lease)); the record pins whatever
  // lease currently holds `ref`, so replay releases exactly that grant.
  std::optional<core::Lease> lease = rm_->FindLease(ref);
  Record record;
  record.type = RecordType::kLeaseRelease;
  record.lease = lease
                     ? ToDurableLease(*lease, rm_->clock().NowMicros())
                     : core::Lease{ref, 0, core::Lease::kNoExpiry};
  WFRM_RETURN_NOT_OK(JournalLocked(std::move(record)));
  if (lease) dirty_lease_ids_.insert(lease->id);
  Status applied = rm_->Release(ref);
  Status checkpointed = MaybeCheckpointLocked();
  return applied.ok() ? checkpointed : applied;
}

Result<core::Lease> DurableResourceManager::RenewLease(
    const core::Lease& lease) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  WFRM_RETURN_NOT_OK(WritableLocked());
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  WFRM_ASSIGN_OR_RETURN(core::Lease renewed, rm_->RenewLease(lease));
  Record record;
  record.type = RecordType::kLeaseRenew;
  record.lease = ToDurableLease(renewed, rm_->clock().NowMicros());
  Status journaled = JournalLocked(std::move(record));
  if (!journaled.ok()) {
    // Roll the extension back: the caller sees a failure, so the grant
    // must stay at the deadline the journal's last record covers.
    (void)rm_->RestoreLease(lease);
    return journaled;
  }
  dirty_lease_ids_.insert(renewed.id);
  (void)MaybeCheckpointLocked();
  return renewed;
}

size_t DurableResourceManager::ReapExpired() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Reaping journals releases, i.e. mutates; a degraded or standby
  // store skips the pass (expired leases stay until it heals). An
  // unhydrated lease table has nothing visible to reap either.
  if (!WritableLocked().ok()) return 0;
  if (!EnsureOrgHydratedLocked().ok()) return 0;
  const int64_t now = rm_->clock().NowMicros();
  const size_t batch = options_.reap_batch_limit > 0
                           ? options_.reap_batch_limit
                           : std::numeric_limits<size_t>::max();
  // Journal before apply, like Release(): collect the expired set,
  // journal one release per lease, then reap exactly that set. Journal-
  // after could leave a reap applied in memory whose lease replay
  // resurrects — with its remaining lifetime re-based, i.e. live again.
  //
  // The pass runs in batches of `reap_batch_limit`, releasing and
  // re-taking the lease-table lock between batches: a mass expiry (say
  // 10k leases at one deadline) never pins the table — and with it every
  // concurrent Acquire/Release — for one O(all-leases) critical section.
  // Per batch, ExpiredLeasesBefore and the bounded reap walk the same
  // deterministic map order under the same mutate_mu_ hold, so the
  // journaled set and the reaped set are exactly equal.
  size_t reaped = 0;
  for (;;) {
    std::vector<core::Lease> expired = rm_->ExpiredLeasesBefore(now, batch);
    if (expired.empty()) break;
    size_t journaled = 0;
    for (const core::Lease& lease : expired) {
      Record record;
      record.type = RecordType::kLeaseRelease;
      record.lease = ToDurableLease(lease, now);
      if (!JournalLocked(std::move(record)).ok()) break;
      dirty_lease_ids_.insert(lease.id);
      ++journaled;
    }
    if (journaled == expired.size()) {
      reaped += rm_->ReapExpiredLeasesBefore(now, expired.size()).size();
    } else {
      // Journal failed mid-batch: reap only the journaled prefix. The
      // rest stay held (and expired), and the next pass retries them.
      for (size_t i = 0; i < journaled; ++i) {
        if (rm_->Release(expired[i]).ok()) ++reaped;
      }
      break;
    }
    if (expired.size() < batch) break;
  }
  (void)MaybeCheckpointLocked();
  return reaped;
}

// ---- Checkpointing ----------------------------------------------------------

SnapshotData DurableResourceManager::CaptureLocked() const {
  SnapshotData data;
  data.last_seq = seq_;
  data.policy_image = store_->ExportImage();
  const int64_t now = rm_->clock().NowMicros();
  for (const core::Lease& lease : rm_->ListLeases()) {
    data.leases.push_back(ToDurableLease(lease, now));
  }
  data.next_lease_id = rm_->next_lease_id();
  return data;
}

Status DurableResourceManager::CheckpointPagedLocked() {
  // A buffered (unhydrated) org cannot be dumped, so anything org-dirty
  // hydrates first. A checkpoint with no org changes leaves the lazy
  // base untouched on disk — and stays O(dirty pages).
  if (org_dirty_) {
    WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  }

  // 1. Policy base: per-row deltas since the last checkpoint, or a full
  // image rewrite when the buffer overflowed (bulk load, ImportImage)
  // or the delta stream diverged from the trees.
  policy::PendingPolicyDeltas pending = store_->TakePendingDeltas();
  bool full_rewrite = pending.overflowed;
  if (!full_rewrite && !pending.deltas.empty()) {
    Status applied = pages_->ApplyPolicyDeltas(pending.deltas);
    if (!applied.ok()) full_rewrite = true;
  }
  if (full_rewrite) {
    WFRM_RETURN_NOT_OK(store_->EnsureHydrated());
    WFRM_RETURN_NOT_OK(pages_->RewritePolicyImage(store_->ExportImage()));
  }

  // 2. Org model: RDL text rewrite only when something ran RDL.
  if (org_dirty_) {
    WFRM_ASSIGN_OR_RETURN(std::string rdl, org::DumpRdl(*org_));
    WFRM_RETURN_NOT_OK(pages_->RewriteRdl(rdl));
  }

  // 3. Leases: each id touched since the last checkpoint re-resolves
  // against the live table — present means upsert with its remaining
  // lifetime as of now, gone means delete. Untouched leases keep the
  // lifetime persisted when they were last journaled, which is the same
  // guarantee a WAL replay gives them.
  if (!dirty_lease_ids_.empty()) {
    const int64_t now = rm_->clock().NowMicros();
    std::unordered_set<uint64_t> live_dirty;
    for (const core::Lease& lease : rm_->ListLeases()) {
      if (dirty_lease_ids_.count(lease.id) > 0) {
        WFRM_RETURN_NOT_OK(pages_->PutLease(ToDurableLease(lease, now)));
        live_dirty.insert(lease.id);
      }
    }
    for (uint64_t id : dirty_lease_ids_) {
      if (live_dirty.count(id) == 0) {
        WFRM_RETURN_NOT_OK(pages_->DeleteLease(id));
      }
    }
  }

  // 4. One generation flip carrying the counters.
  PageStoreMeta meta;
  meta.last_seq = seq_;
  meta.next_lease_id = rm_->next_lease_id();
  meta.next_pid = store_->next_pid();
  meta.next_group = store_->next_group();
  meta.epoch = store_->local_epoch();
  if (options_.crash_point == CheckpointCrashPoint::kAfterTmpWrite) {
    // Simulated crash inside the page flush: data pages durable, meta
    // slot not — the paged analogue of "tmp written, not renamed".
    return pages_->Commit(meta, CommitCrashPoint::kBeforeMeta);
  }
  WFRM_RETURN_NOT_OK(pages_->Commit(meta));
  org_dirty_ = false;
  dirty_lease_ids_.clear();
  if (metrics_.snapshots != nullptr) metrics_.snapshots->Increment();
  if (options_.crash_point == CheckpointCrashPoint::kAfterRename) {
    return Status::OK();  // Simulated crash: meta live, WAL untruncated.
  }
  WFRM_RETURN_NOT_OK(wal_.Truncate());
  if (metrics_.wal_truncations != nullptr) {
    metrics_.wal_truncations->Increment();
  }
  ReportSyncsLocked();
  records_since_checkpoint_ = 0;
  UpdateHealthGaugesLocked();
  return Status::OK();
}

Status DurableResourceManager::CheckpointLocked() {
  if (options_.backend == StorageBackend::kPaged) {
    return CheckpointPagedLocked();
  }
  SnapshotData data = CaptureLocked();
  WFRM_ASSIGN_OR_RETURN(data.rdl_text, org::DumpRdl(*org_));

  const std::string tmp = SnapshotPath() + ".tmp";
  WFRM_RETURN_NOT_OK(WriteSnapshotFile(tmp, data));
  if (options_.crash_point == CheckpointCrashPoint::kAfterTmpWrite) {
    return Status::OK();  // Simulated crash: tmp written, not committed.
  }
  WFRM_RETURN_NOT_OK(CommitSnapshot(tmp, SnapshotPath()));
  if (metrics_.snapshots != nullptr) metrics_.snapshots->Increment();
  if (options_.crash_point == CheckpointCrashPoint::kAfterRename) {
    return Status::OK();  // Simulated crash: snapshot live, WAL untruncated.
  }
  WFRM_RETURN_NOT_OK(wal_.Truncate());
  if (metrics_.wal_truncations != nullptr) {
    metrics_.wal_truncations->Increment();
  }
  ReportSyncsLocked();
  records_since_checkpoint_ = 0;
  // Truncation reset the writer's broken latch (if any) — a successful
  // checkpoint is the repair path out of WAL-degraded mode.
  UpdateHealthGaugesLocked();
  return Status::OK();
}

Status DurableResourceManager::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return CheckpointLocked();
}

// ---- Health / degraded mode -------------------------------------------------

Status DurableResourceManager::WritableLocked() const {
  if (standby_) {
    return Status::Degraded("store " + dir_ +
                            " is a standby replica (read-only); promote it "
                            "to accept mutations");
  }
  if (!wal_.healthy()) {
    return Status::Degraded("store " + dir_ +
                            " is degraded: WAL latched broken after a failed "
                            "append (a successful checkpoint repairs it)");
  }
  if (!external_degraded_reason_.empty()) {
    return Status::Degraded("store " + dir_ +
                            " is degraded: " + external_degraded_reason_);
  }
  return Status::OK();
}

void DurableResourceManager::UpdateHealthGaugesLocked() {
  if (metrics_.wal_broken != nullptr) {
    metrics_.wal_broken->Set(wal_.healthy() ? 0 : 1);
  }
  if (metrics_.degraded != nullptr) {
    metrics_.degraded->Set(WritableLocked().ok() ? 0 : 1);
  }
}

bool DurableResourceManager::degraded() const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return !WritableLocked().ok();
}

std::string DurableResourceManager::degraded_reason() const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  if (standby_) return "standby replica (read-only until promoted)";
  if (!wal_.healthy()) return "WAL latched broken (checkpoint to repair)";
  return external_degraded_reason_;
}

bool DurableResourceManager::wal_healthy() const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return wal_.healthy();
}

void DurableResourceManager::EnterDegraded(std::string reason) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  external_degraded_reason_ = std::move(reason);
  UpdateHealthGaugesLocked();
}

void DurableResourceManager::ExitDegraded() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  external_degraded_reason_.clear();
  UpdateHealthGaugesLocked();
}

void DurableResourceManager::EnterStandby() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  standby_ = true;
  UpdateHealthGaugesLocked();
}

void DurableResourceManager::ExitStandby() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  standby_ = false;
  UpdateHealthGaugesLocked();
}

bool DurableResourceManager::standby() const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return standby_;
}

// ---- Replication hooks ------------------------------------------------------

Result<SnapshotData> DurableResourceManager::CaptureSnapshot() const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // The capture walks the live lease table and dumps the org; a lazy
  // paged base must be resident first.
  WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  SnapshotData data = CaptureLocked();
  WFRM_ASSIGN_OR_RETURN(data.rdl_text, org::DumpRdl(*org_));
  return data;
}

Status DurableResourceManager::InstallSnapshot(const SnapshotData& data) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Persist before apply: the durable image committed and WAL emptied
  // first, so a crash anywhere mid-install recovers to exactly `data`.
  if (options_.backend == StorageBackend::kPaged) {
    WFRM_RETURN_NOT_OK(pages_->RewritePolicyImage(data.policy_image));
    WFRM_RETURN_NOT_OK(pages_->RewriteRdl(data.rdl_text));
    WFRM_RETURN_NOT_OK(pages_->RewriteLeases(data.leases));
    PageStoreMeta meta;
    meta.last_seq = data.last_seq;
    meta.next_lease_id = data.next_lease_id;
    meta.next_pid = data.policy_image.next_pid;
    meta.next_group = data.policy_image.next_group;
    meta.epoch = data.policy_image.epoch;
    WFRM_RETURN_NOT_OK(pages_->Commit(meta));
  } else {
    WFRM_RETURN_NOT_OK(WriteSnapshot(SnapshotPath(), data));
  }
  WFRM_RETURN_NOT_OK(wal_.Truncate());
  if (metrics_.snapshots != nullptr) metrics_.snapshots->Increment();
  if (metrics_.wal_truncations != nullptr) {
    metrics_.wal_truncations->Increment();
  }
  ResetWorldLocked();
  WFRM_RETURN_NOT_OK(RestoreSnapshotLocked(data));
  if (options_.backend == StorageBackend::kPaged) {
    // The trees were just rewritten to mirror memory exactly: start
    // delta tracking from a clean slate (ImportImage latched overflow).
    store_->set_delta_tracking(false);
    store_->set_delta_tracking(true);
    org_dirty_ = false;
    dirty_lease_ids_.clear();
  }
  records_since_checkpoint_ = 0;
  UpdateHealthGaugesLocked();
  return Status::OK();
}

Result<DurableResourceManager::CatchupImage>
DurableResourceManager::CaptureCatchupImage() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  CatchupImage image;
  if (options_.backend == StorageBackend::kPaged) {
    // Checkpoint so pages.db embodies everything through seq_, then
    // ship the raw file: the follower installs pages instead of
    // re-importing a decoded image.
    WFRM_RETURN_NOT_OK(CheckpointPagedLocked());
    WFRM_ASSIGN_OR_RETURN(image.bytes, ReadFileBytes(PagesPath()));
    image.last_seq = seq_;
    return image;
  }
  SnapshotData data = CaptureLocked();
  WFRM_ASSIGN_OR_RETURN(data.rdl_text, org::DumpRdl(*org_));
  image.bytes = EncodeSnapshot(data);
  image.last_seq = data.last_seq;
  return image;
}

Status DurableResourceManager::InstallPagedImage(std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  if (options_.backend != StorageBackend::kPaged) {
    return Status::InvalidArgument(
        "store " + dir_ +
        " uses the snapshot backend; cannot install a pages.db image");
  }
  if (!LooksLikePagesFile(bytes)) {
    return Status::ExecutionError("shipped catch-up image is not a pages.db");
  }
  // Close our engine before replacing its file, then commit the new
  // bytes with the usual tmp + rename + dir-fsync dance.
  pages_.reset();
  WFRM_RETURN_NOT_OK(WriteFileDurable(PagesPath(), bytes));
  WFRM_RETURN_NOT_OK(wal_.Truncate());
  if (metrics_.snapshots != nullptr) metrics_.snapshots->Increment();
  if (metrics_.wal_truncations != nullptr) {
    metrics_.wal_truncations->Increment();
  }
  WFRM_ASSIGN_OR_RETURN(std::shared_ptr<PageStore> pages,
                        PageStore::Open(PagesPath(), options_.pager));
  pages_ = std::move(pages);
  ResetWorldLocked();
  WFRM_RETURN_NOT_OK(LoadWorldFromPagesLocked());
  records_since_checkpoint_ = 0;
  UpdateHealthGaugesLocked();
  return Status::OK();
}

Status DurableResourceManager::ApplyReplicated(const Record& record) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  if (!wal_.healthy()) {
    return Status::Degraded("store " + dir_ +
                            " cannot journal replicated records: WAL latched "
                            "broken");
  }
  if (record.seq != seq_ + 1) {
    return Status::InvalidArgument(
        "replication gap: record has seq " + std::to_string(record.seq) +
        ", store expects " + std::to_string(seq_ + 1));
  }
  // Hydrate before journaling: a non-RDL record applies against the
  // org/lease world, and a hydration failure must reject the record
  // outright rather than journal an effect memory lacks.
  if (record.type != RecordType::kRdl) {
    WFRM_RETURN_NOT_OK(EnsureOrgHydratedLocked());
  }
  // Journal under the primary's own seq (not a locally assigned one):
  // the follower's log stays byte-compatible with the primary's history,
  // so recovery and further catch-up use the same sequence space.
  std::string payload = EncodeRecord(record);
  Status appended = wal_.Append(payload);
  if (!appended.ok()) {
    UpdateHealthGaugesLocked();
    return appended;
  }
  seq_ = record.seq;
  if (metrics_.wal_appends != nullptr) metrics_.wal_appends->Increment();
  if (metrics_.wal_bytes != nullptr) {
    metrics_.wal_bytes->Increment(payload.size() + 8);
  }
  ReportSyncsLocked();
  ++records_since_checkpoint_;
  ApplyRecord(record);
  return MaybeCheckpointLocked();
}

std::string DurableResourceManager::StateFingerprint(
    bool include_deadlines) const {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Best effort: the signature cannot report a hydration I/O failure,
  // so a failed load fingerprints whatever is resident.
  (void)EnsureOrgHydratedLocked();
  FingerprintOptions options;
  options.include_deadlines = include_deadlines;
  return FingerprintWorld(*org_, *store_, *rm_, options);
}

}  // namespace wfrm::store
