#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "store/record.h"
#include "store/wal.h"

namespace wfrm::store {

namespace {

/// Section tags: the snapshot is a short log of sections, each one
/// framed record. Unknown sections fail the read — the format is
/// versioned by the magic string.
// v2: lease deadlines are remaining lifetimes, not clock timestamps
// (monotonic epochs do not survive a restart; see durable_rm.cc).
constexpr char kMagic[] = "wfrm-snapshot-v2";
constexpr uint8_t kSectionHeader = 1;
constexpr uint8_t kSectionRdl = 2;
constexpr uint8_t kSectionTable = 3;
constexpr uint8_t kSectionLeases = 4;
constexpr uint8_t kSectionEnd = 5;

void AppendTableSection(std::string* out, std::string_view name,
                        const std::vector<rel::Row>& rows) {
  out->push_back(static_cast<char>(kSectionTable));
  AppendString(out, name);
  AppendU32(out, static_cast<uint32_t>(rows.size()));
  for (const rel::Row& row : rows) AppendRow(out, row);
}

Status Corrupt(const std::string& path, const char* what) {
  return Status::ExecutionError("snapshot " + path + " is corrupt: " + what);
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const SnapshotData& data) {
  {
    WalWriter writer;
    // Sync decisions are made explicitly below; per-record fsync would
    // only slow the burst down.
    WFRM_RETURN_NOT_OK(
        writer.Open(path, FsyncMode::kOff, 0, /*valid_bytes=*/0));

    std::string header;
    header.push_back(static_cast<char>(kSectionHeader));
    AppendString(&header, kMagic);
    AppendU64(&header, data.last_seq);
    AppendU64(&header, data.next_lease_id);
    AppendI64(&header, data.policy_image.next_pid);
    AppendI64(&header, data.policy_image.next_group);
    AppendU64(&header, data.policy_image.epoch);
    WFRM_RETURN_NOT_OK(writer.Append(header));

    std::string rdl;
    rdl.push_back(static_cast<char>(kSectionRdl));
    AppendString(&rdl, data.rdl_text);
    WFRM_RETURN_NOT_OK(writer.Append(rdl));

    const auto& img = data.policy_image;
    std::string tables;
    AppendTableSection(&tables, "Qualifications", img.qualifications);
    WFRM_RETURN_NOT_OK(writer.Append(tables));
    tables.clear();
    AppendTableSection(&tables, "Policies", img.policies);
    WFRM_RETURN_NOT_OK(writer.Append(tables));
    tables.clear();
    AppendTableSection(&tables, "Filter", img.filter);
    WFRM_RETURN_NOT_OK(writer.Append(tables));
    tables.clear();
    AppendTableSection(&tables, "SubstPolicies", img.subst_policies);
    WFRM_RETURN_NOT_OK(writer.Append(tables));
    tables.clear();
    AppendTableSection(&tables, "SubstFilter", img.subst_filter);
    WFRM_RETURN_NOT_OK(writer.Append(tables));

    std::string leases;
    leases.push_back(static_cast<char>(kSectionLeases));
    AppendU32(&leases, static_cast<uint32_t>(data.leases.size()));
    for (const core::Lease& lease : data.leases) {
      AppendString(&leases, lease.resource.type);
      AppendString(&leases, lease.resource.id);
      AppendU64(&leases, lease.id);
      AppendI64(&leases, lease.deadline_micros);
    }
    WFRM_RETURN_NOT_OK(writer.Append(leases));

    std::string end(1, static_cast<char>(kSectionEnd));
    WFRM_RETURN_NOT_OK(writer.Append(end));
    // The contents must be durable before a rename commits them.
    WFRM_RETURN_NOT_OK(writer.Sync());
  }
  return Status::OK();
}

Status CommitSnapshot(const std::string& tmp_path,
                      const std::string& final_path) {
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::ExecutionError("cannot commit snapshot " + final_path +
                                  ": " + std::strerror(errno));
  }
  // Make the rename itself durable (directory entry update). A failure
  // here must propagate: the caller truncates the WAL on success, and
  // truncating while the rename might not survive a crash loses history.
  std::string dir = final_path;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::ExecutionError("cannot open snapshot directory " + dir +
                                  " to sync the commit: " +
                                  std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    Status st = Status::ExecutionError("cannot sync snapshot directory " +
                                       dir + ": " + std::strerror(errno));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::OK();
}

Status WriteSnapshot(const std::string& path, const SnapshotData& data) {
  WFRM_RETURN_NOT_OK(WriteSnapshotFile(path + ".tmp", data));
  return CommitSnapshot(path + ".tmp", path);
}

Result<SnapshotData> ReadSnapshot(const std::string& path) {
  {
    // Distinguish "no snapshot yet" from "snapshot unreadable".
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0 && errno == ENOENT) {
      return Status::NotFound("no snapshot at " + path);
    }
    if (fd >= 0) ::close(fd);
  }
  WFRM_ASSIGN_OR_RETURN(WalScan scan, ReadWal(path));
  if (scan.torn_tail) return Corrupt(path, "torn record");

  SnapshotData data;
  bool saw_header = false;
  bool saw_end = false;
  for (const std::string& payload : scan.payloads) {
    std::string_view in = payload;
    if (in.empty()) return Corrupt(path, "empty section");
    uint8_t section = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);
    switch (section) {
      case kSectionHeader: {
        std::string magic;
        if (!ReadString(&in, &magic) || magic != kMagic) {
          return Corrupt(path, "bad magic");
        }
        if (!ReadU64(&in, &data.last_seq) ||
            !ReadU64(&in, &data.next_lease_id) ||
            !ReadI64(&in, &data.policy_image.next_pid) ||
            !ReadI64(&in, &data.policy_image.next_group) ||
            !ReadU64(&in, &data.policy_image.epoch)) {
          return Corrupt(path, "short header");
        }
        saw_header = true;
        break;
      }
      case kSectionRdl:
        if (!ReadString(&in, &data.rdl_text)) {
          return Corrupt(path, "short RDL section");
        }
        break;
      case kSectionTable: {
        std::string name;
        uint32_t count = 0;
        if (!ReadString(&in, &name) || !ReadU32(&in, &count)) {
          return Corrupt(path, "short table section");
        }
        std::vector<rel::Row>* rows = nullptr;
        auto& img = data.policy_image;
        if (name == "Qualifications") rows = &img.qualifications;
        else if (name == "Policies") rows = &img.policies;
        else if (name == "Filter") rows = &img.filter;
        else if (name == "SubstPolicies") rows = &img.subst_policies;
        else if (name == "SubstFilter") rows = &img.subst_filter;
        else return Corrupt(path, "unknown table section");
        rows->reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          rel::Row row;
          if (!ReadRow(&in, &row)) return Corrupt(path, "short table row");
          rows->push_back(std::move(row));
        }
        break;
      }
      case kSectionLeases: {
        uint32_t count = 0;
        if (!ReadU32(&in, &count)) return Corrupt(path, "short lease section");
        data.leases.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          core::Lease lease;
          if (!ReadString(&in, &lease.resource.type) ||
              !ReadString(&in, &lease.resource.id) ||
              !ReadU64(&in, &lease.id) ||
              !ReadI64(&in, &lease.deadline_micros)) {
            return Corrupt(path, "short lease row");
          }
          data.leases.push_back(std::move(lease));
        }
        break;
      }
      case kSectionEnd:
        saw_end = true;
        break;
      default:
        return Corrupt(path, "unknown section");
    }
  }
  if (!saw_header || !saw_end) return Corrupt(path, "incomplete");
  return data;
}

}  // namespace wfrm::store
