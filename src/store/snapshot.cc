#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "store/record.h"
#include "store/wal.h"

namespace wfrm::store {

namespace {

/// Section tags: the snapshot is a short log of sections, each one
/// framed record. Unknown sections fail the read — the format is
/// versioned by the magic string.
// v2: lease deadlines are remaining lifetimes, not clock timestamps
// (monotonic epochs do not survive a restart; see durable_rm.cc).
constexpr char kMagic[] = "wfrm-snapshot-v2";
constexpr uint8_t kSectionHeader = 1;
constexpr uint8_t kSectionRdl = 2;
constexpr uint8_t kSectionTable = 3;
constexpr uint8_t kSectionLeases = 4;
constexpr uint8_t kSectionEnd = 5;

void AppendTableSection(std::string* out, std::string_view name,
                        const std::vector<rel::Row>& rows) {
  out->push_back(static_cast<char>(kSectionTable));
  AppendString(out, name);
  AppendU32(out, static_cast<uint32_t>(rows.size()));
  for (const rel::Row& row : rows) AppendRow(out, row);
}

Status Corrupt(const std::string& path, const char* what) {
  return Status::ExecutionError("snapshot " + path + " is corrupt: " + what);
}

}  // namespace

std::string EncodeSnapshot(const SnapshotData& data) {
  std::string out;

  std::string header;
  header.push_back(static_cast<char>(kSectionHeader));
  AppendString(&header, kMagic);
  AppendU64(&header, data.last_seq);
  AppendU64(&header, data.next_lease_id);
  AppendI64(&header, data.policy_image.next_pid);
  AppendI64(&header, data.policy_image.next_group);
  AppendU64(&header, data.policy_image.epoch);
  AppendWalFrame(&out, header);

  std::string rdl;
  rdl.push_back(static_cast<char>(kSectionRdl));
  AppendString(&rdl, data.rdl_text);
  AppendWalFrame(&out, rdl);

  const auto& img = data.policy_image;
  std::string tables;
  AppendTableSection(&tables, "Qualifications", img.qualifications);
  AppendWalFrame(&out, tables);
  tables.clear();
  AppendTableSection(&tables, "Policies", img.policies);
  AppendWalFrame(&out, tables);
  tables.clear();
  AppendTableSection(&tables, "Filter", img.filter);
  AppendWalFrame(&out, tables);
  tables.clear();
  AppendTableSection(&tables, "SubstPolicies", img.subst_policies);
  AppendWalFrame(&out, tables);
  tables.clear();
  AppendTableSection(&tables, "SubstFilter", img.subst_filter);
  AppendWalFrame(&out, tables);

  std::string leases;
  leases.push_back(static_cast<char>(kSectionLeases));
  AppendU32(&leases, static_cast<uint32_t>(data.leases.size()));
  for (const core::Lease& lease : data.leases) {
    AppendString(&leases, lease.resource.type);
    AppendString(&leases, lease.resource.id);
    AppendU64(&leases, lease.id);
    AppendI64(&leases, lease.deadline_micros);
  }
  AppendWalFrame(&out, leases);

  std::string end(1, static_cast<char>(kSectionEnd));
  AppendWalFrame(&out, end);
  return out;
}

namespace {

Status WriteFileRaw(const std::string& path, std::string_view bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    return Status::ExecutionError("cannot write " + path + ": " +
                                  std::strerror(errno));
  }
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Status st = Status::ExecutionError(
          "cannot write " + path + ": " +
          (n < 0 ? std::strerror(errno) : "short write"));
      ::close(fd);
      return st;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  // The contents must be durable before a rename commits them.
  if (::fsync(fd) != 0) {
    Status st = Status::ExecutionError("cannot sync " + path + ": " +
                                       std::strerror(errno));
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status WriteSnapshotFile(const std::string& path, const SnapshotData& data) {
  return WriteFileRaw(path, EncodeSnapshot(data));
}

Status WriteFileDurable(const std::string& path, std::string_view bytes) {
  WFRM_RETURN_NOT_OK(WriteFileRaw(path + ".tmp", bytes));
  return CommitSnapshot(path + ".tmp", path);
}

namespace {

std::function<bool(std::string_view)>& CommitFaultHook() {
  static std::function<bool(std::string_view)> hook;
  return hook;
}

bool InjectCommitFault(std::string_view op) {
  const auto& hook = CommitFaultHook();
  return hook && hook(op);
}

}  // namespace

void SetCommitSnapshotFaultHook(std::function<bool(std::string_view)> hook) {
  CommitFaultHook() = std::move(hook);
}

Status CommitSnapshot(const std::string& tmp_path,
                      const std::string& final_path) {
  if (InjectCommitFault("rename") ||
      std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status st = Status::ExecutionError("cannot commit snapshot " +
                                       final_path + ": " +
                                       std::strerror(errno));
    // The tmp file is ours and was never committed — remove it so a
    // failed checkpoint does not strand half-written files in the home
    // (best effort: open-time reaping catches anything left behind).
    std::remove(tmp_path.c_str());
    return st;
  }
  // Make the rename itself durable (directory entry update). A failure
  // here must propagate: the caller truncates the WAL on success, and
  // truncating while the rename might not survive a crash loses history.
  std::string dir = final_path;
  size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::ExecutionError("cannot open snapshot directory " + dir +
                                  " to sync the commit: " +
                                  std::strerror(errno));
  }
  if (InjectCommitFault("dirsync") || ::fsync(dfd) != 0) {
    // The rename already consumed the tmp file; nothing to clean up —
    // only the error must propagate so the caller skips WAL truncation.
    Status st = Status::ExecutionError("cannot sync snapshot directory " +
                                       dir + ": " + std::strerror(errno));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::OK();
}

Status WriteSnapshot(const std::string& path, const SnapshotData& data) {
  WFRM_RETURN_NOT_OK(WriteSnapshotFile(path + ".tmp", data));
  return CommitSnapshot(path + ".tmp", path);
}

Result<SnapshotData> DecodeSnapshot(std::string_view bytes,
                                    const std::string& origin) {
  WalScan scan = ScanWalBuffer(bytes);
  if (scan.torn_tail) return Corrupt(origin, "torn record");

  SnapshotData data;
  bool saw_header = false;
  bool saw_end = false;
  for (const std::string& payload : scan.payloads) {
    std::string_view in = payload;
    if (in.empty()) return Corrupt(origin, "empty section");
    uint8_t section = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);
    switch (section) {
      case kSectionHeader: {
        std::string magic;
        if (!ReadString(&in, &magic) || magic != kMagic) {
          return Corrupt(origin, "bad magic");
        }
        if (!ReadU64(&in, &data.last_seq) ||
            !ReadU64(&in, &data.next_lease_id) ||
            !ReadI64(&in, &data.policy_image.next_pid) ||
            !ReadI64(&in, &data.policy_image.next_group) ||
            !ReadU64(&in, &data.policy_image.epoch)) {
          return Corrupt(origin, "short header");
        }
        saw_header = true;
        break;
      }
      case kSectionRdl:
        if (!ReadString(&in, &data.rdl_text)) {
          return Corrupt(origin, "short RDL section");
        }
        break;
      case kSectionTable: {
        std::string name;
        uint32_t count = 0;
        if (!ReadString(&in, &name) || !ReadU32(&in, &count)) {
          return Corrupt(origin, "short table section");
        }
        std::vector<rel::Row>* rows = nullptr;
        auto& img = data.policy_image;
        if (name == "Qualifications") rows = &img.qualifications;
        else if (name == "Policies") rows = &img.policies;
        else if (name == "Filter") rows = &img.filter;
        else if (name == "SubstPolicies") rows = &img.subst_policies;
        else if (name == "SubstFilter") rows = &img.subst_filter;
        else return Corrupt(origin, "unknown table section");
        rows->reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          rel::Row row;
          if (!ReadRow(&in, &row)) return Corrupt(origin, "short table row");
          rows->push_back(std::move(row));
        }
        break;
      }
      case kSectionLeases: {
        uint32_t count = 0;
        if (!ReadU32(&in, &count)) {
          return Corrupt(origin, "short lease section");
        }
        data.leases.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          core::Lease lease;
          if (!ReadString(&in, &lease.resource.type) ||
              !ReadString(&in, &lease.resource.id) ||
              !ReadU64(&in, &lease.id) ||
              !ReadI64(&in, &lease.deadline_micros)) {
            return Corrupt(origin, "short lease row");
          }
          data.leases.push_back(std::move(lease));
        }
        break;
      }
      case kSectionEnd:
        saw_end = true;
        break;
      default:
        return Corrupt(origin, "unknown section");
    }
  }
  if (!saw_header || !saw_end) return Corrupt(origin, "incomplete");
  return data;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file at " + path);
    return Status::ExecutionError("cannot read " + path + ": " +
                                  std::strerror(errno));
  }
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::ExecutionError("cannot read " + path + ": " +
                                         std::strerror(errno));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Result<SnapshotData> ReadSnapshot(const std::string& path) {
  Result<std::string> contents = ReadFileBytes(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      return Status::NotFound("no snapshot at " + path);
    }
    return contents.status();
  }
  return DecodeSnapshot(*contents, path);
}

}  // namespace wfrm::store
