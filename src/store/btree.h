#ifndef WFRM_STORE_BTREE_H_
#define WFRM_STORE_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "store/pager.h"

namespace wfrm::store {

/// B+tree over the copy-on-write pager: variable-length byte-string
/// keys and values in slotted pages, values above a quarter page
/// spilled to overflow chains, memcmp key order (the composite
/// key_encoding keys sort correctly under it).
///
/// There are deliberately no leaf sibling links: under copy-on-write a
/// shadowed leaf would invalidate its neighbors' links, so ordered
/// scans descend from the root with a parent stack instead. Mutations
/// shadow the root-to-leaf path (pages not allocated in the current
/// generation are copied to fresh pages and the originals freed), which
/// is what makes a torn write never damage the last committed tree.
///
/// Nodes split when their serialized form outgrows a page; a leaf that
/// shrinks below a quarter page merges with a sibling when the pair
/// fits in one page, and nodes that empty out are collapsed away (a
/// one-child root is replaced by that child).
class BTree {
 public:
  /// Attaches to an existing tree; `root == 0` is the empty tree.
  BTree(Pager* pager, uint64_t root) : pager_(pager), root_(root) {}

  /// Root page id after mutations; 0 when empty. The owner persists
  /// this in the pager's app meta at commit time.
  uint64_t root() const { return root_; }

  /// Inserts or replaces.
  Status Put(std::string_view key, std::string_view value);
  /// Removes `key`; returns false when it was absent.
  Result<bool> Erase(std::string_view key);
  Result<std::optional<std::string>> Get(std::string_view key) const;

  /// In-order visit of every entry. The visitor's non-OK status aborts
  /// the scan and is returned.
  Status Scan(
      const std::function<Status(std::string_view key,
                                 std::string_view value)>& visit) const;

  /// Frees every page of the tree (overflow chains included) and
  /// resets to empty.
  Status Clear();

  Result<uint64_t> CountEntries() const;

  // Node layout types; public so the serializer helpers in btree.cc
  // (file-local free functions) can name them.
  struct Cell;
  struct Node;

 private:

  Result<Node> LoadNode(uint64_t pid) const;
  Status ScanNode(uint64_t pid, int depth,
                  const std::function<Status(std::string_view,
                                             std::string_view)>& visit) const;
  Status ClearNode(uint64_t pid, int depth);

  Result<uint64_t> WriteOverflow(std::string_view value);
  Status FreeOverflow(uint64_t head);
  Result<std::string> ReadOverflow(uint64_t head, uint64_t total_len) const;
  void FreeCellOverflow(const Cell& cell);

  /// Writes `node` back (shadowing or splitting as needed) and reports
  /// the replacement entries for the parent: one (min_key, pid) pair
  /// per page the node became, or none when the node emptied out.
  struct WrittenEntry {
    std::string min_key;
    uint64_t pid = 0;
    size_t serialized_size = 0;
  };
  Result<std::vector<WrittenEntry>> StoreNode(Node* node);

  enum class MutateOp { kPut, kErase };
  /// Recursive mutation: returns parent-replacement entries for the
  /// subtree at `pid`. Sets *erased for kErase.
  Result<std::vector<WrittenEntry>> Mutate(uint64_t pid, int depth,
                                           MutateOp op, std::string_view key,
                                           std::string_view value,
                                           bool* erased);

  Pager* pager_;
  uint64_t root_;
};

}  // namespace wfrm::store

#endif  // WFRM_STORE_BTREE_H_
