#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace wfrm::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound encloses the value ("le" semantics:
  // a value equal to a bound lands in that bound's bucket).
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::LatencyBucketsMicros() {
  static const std::vector<double>* kBuckets = new std::vector<double>{
      1,     2,     5,     10,     20,     50,     100,     200,     500,
      1'000, 2'000, 5'000, 10'000, 20'000, 50'000, 100'000, 200'000, 500'000,
      1'000'000, 2'000'000, 5'000'000, 10'000'000};
  return *kBuckets;
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  uint64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeHelp(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string FormatBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  // Integral bounds print without a trailing ".0" — matches what
  // Prometheus client libraries emit for le="10".
  if (bound == std::floor(bound) && std::abs(bound) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(bound));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", bound);
  return buf;
}

namespace {

std::string FormatValue(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Renders `{k="v",...}` (empty string for no labels), with an optional
/// extra label appended (the histogram "le").
std::string RenderLabels(const LabelMap& labels, const std::string& extra_key,
                         const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string RenderLabelsJson(const LabelMap& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(k) + "\":\"" + EscapeJson(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::Key(const std::string& name,
                                 const LabelMap& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key += k;
    key.push_back('\x1e');
    key += v;
  }
  return key;
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    Kind kind, const std::string& name, const LabelMap& labels,
    const std::string& help, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!help.empty() && family_help_[name].empty()) family_help_[name] = help;
  std::string key = Key(name, labels);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) return it->second.get();
  auto inst = std::make_unique<Instrument>();
  inst->kind = kind;
  inst->name = name;
  inst->labels = labels;
  inst->help = help;
  switch (kind) {
    case Kind::kCounter:
      inst->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      inst->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      inst->histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  Instrument* raw = inst.get();
  instruments_[key] = std::move(inst);
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelMap& labels,
                                     const std::string& help) {
  return FindOrCreate(Kind::kCounter, name, labels, help, {})->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelMap& labels,
                                 const std::string& help) {
  return FindOrCreate(Kind::kGauge, name, labels, help, {})->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const LabelMap& labels,
                                         const std::string& help) {
  return FindOrCreate(Kind::kHistogram, name, labels, help, std::move(bounds))
      ->histogram.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // The map is keyed by name + labels, so instruments of one metric
  // family are adjacent; emit HELP/TYPE once per family.
  std::string last_family;
  for (const auto& [key, inst] : instruments_) {
    if (inst->name != last_family) {
      last_family = inst->name;
      auto help_it = family_help_.find(inst->name);
      if (help_it != family_help_.end() && !help_it->second.empty()) {
        out += "# HELP " + inst->name + " " + EscapeHelp(help_it->second) +
               "\n";
      }
      const char* type = inst->kind == Kind::kCounter ? "counter"
                         : inst->kind == Kind::kGauge ? "gauge"
                                                      : "histogram";
      out += "# TYPE " + inst->name + " " + type + "\n";
    }
    switch (inst->kind) {
      case Kind::kCounter:
        out += inst->name + RenderLabels(inst->labels, "", "") + " " +
               std::to_string(inst->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += inst->name + RenderLabels(inst->labels, "", "") + " " +
               std::to_string(inst->gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        std::vector<uint64_t> cum = h.CumulativeCounts();
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          out += inst->name + "_bucket" +
                 RenderLabels(inst->labels, "le", FormatBound(h.bounds()[i])) +
                 " " + std::to_string(cum[i]) + "\n";
        }
        out += inst->name + "_bucket" +
               RenderLabels(inst->labels, "le", "+Inf") + " " +
               std::to_string(cum.back()) + "\n";
        out += inst->name + "_sum" + RenderLabels(inst->labels, "", "") + " " +
               FormatValue(h.Sum()) + "\n";
        out += inst->name + "_count" + RenderLabels(inst->labels, "", "") +
               " " + std::to_string(h.Count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [key, inst] : instruments_) {
    switch (inst->kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += "{\"name\":\"" + EscapeJson(inst->name) +
                    "\",\"labels\":" + RenderLabelsJson(inst->labels) +
                    ",\"value\":" + std::to_string(inst->counter->Value()) +
                    "}";
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += "{\"name\":\"" + EscapeJson(inst->name) +
                  "\",\"labels\":" + RenderLabelsJson(inst->labels) +
                  ",\"value\":" + std::to_string(inst->gauge->Value()) + "}";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *inst->histogram;
        if (!histograms.empty()) histograms += ",";
        histograms += "{\"name\":\"" + EscapeJson(inst->name) +
                      "\",\"labels\":" + RenderLabelsJson(inst->labels) +
                      ",\"count\":" + std::to_string(h.Count()) +
                      ",\"sum\":" + FormatValue(h.Sum()) + ",\"buckets\":[";
        std::vector<uint64_t> cum = h.CumulativeCounts();
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          if (i > 0) histograms += ",";
          const std::string le =
              i < h.bounds().size() ? FormatBound(h.bounds()[i]) : "+Inf";
          histograms += "{\"le\":\"" + le +
                        "\",\"count\":" + std::to_string(cum[i]) + "}";
        }
        histograms += "]}";
        break;
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

}  // namespace wfrm::obs
