#include "obs/trace.h"

#include "obs/metrics.h"

namespace wfrm::obs {

TraceSpan::TraceSpan(EnforcementTrace* trace, std::string name)
    : trace_(trace), name_(std::move(name)),
      start_micros_(trace->NowMicros()) {}

TraceSpan* TraceSpan::Child(std::string name) {
  children_.push_back(
      std::unique_ptr<TraceSpan>(new TraceSpan(trace_, std::move(name))));
  return children_.back().get();
}

void TraceSpan::AddAttr(std::string key, std::string value) {
  attrs_.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::AddAttr(std::string key, int64_t value) {
  attrs_.emplace_back(std::move(key), std::to_string(value));
}

void TraceSpan::End() {
  if (!ended_) {
    end_micros_ = trace_->NowMicros();
    ended_ = true;
  }
}

std::string TraceSpan::Attr(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return "";
}

std::vector<std::string> TraceSpan::AttrAll(const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : attrs_) {
    if (k == key) out.push_back(v);
  }
  return out;
}

const TraceSpan* TraceSpan::Find(const std::string& name) const {
  if (name_ == name) return this;
  for (const auto& child : children_) {
    if (const TraceSpan* hit = child->Find(name)) return hit;
  }
  return nullptr;
}

EnforcementTrace::EnforcementTrace(std::string query_text, Clock* clock)
    : query_text_(std::move(query_text)),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      root_(new TraceSpan(this, "submit")) {}

namespace {

void FinishRecursive(TraceSpan* span) {
  for (const auto& child : span->children()) FinishRecursive(child.get());
  span->End();
}

void RenderText(const TraceSpan& span, size_t depth, std::string* out) {
  out->append(depth * 2, ' ');
  *out += span.name() + " (" + std::to_string(span.duration_micros()) + "us)";
  for (const auto& [k, v] : span.attrs()) {
    *out += " " + k + "=" + v;
  }
  *out += "\n";
  for (const auto& child : span.children()) {
    RenderText(*child, depth + 1, out);
  }
}

void RenderJson(const TraceSpan& span, std::string* out) {
  *out += "{\"name\":\"" + EscapeJson(span.name()) +
          "\",\"start_us\":" + std::to_string(span.start_micros()) +
          ",\"end_us\":" + std::to_string(span.end_micros()) + ",\"attrs\":[";
  bool first = true;
  for (const auto& [k, v] : span.attrs()) {
    if (!first) *out += ",";
    first = false;
    *out += "[\"" + EscapeJson(k) + "\",\"" + EscapeJson(v) + "\"]";
  }
  *out += "],\"children\":[";
  first = true;
  for (const auto& child : span.children()) {
    if (!first) *out += ",";
    first = false;
    RenderJson(*child, out);
  }
  *out += "]}";
}

}  // namespace

void EnforcementTrace::Finish() { FinishRecursive(root_.get()); }

std::string EnforcementTrace::ToString() const {
  std::string out;
  if (!query_text_.empty()) out += "query: " + query_text_ + "\n";
  RenderText(*root_, 0, &out);
  return out;
}

std::string EnforcementTrace::ToJson() const {
  std::string out = "{\"query\":\"" + EscapeJson(query_text_) + "\",\"root\":";
  RenderJson(*root_, &out);
  out += "}";
  return out;
}

void TraceSink::Add(std::shared_ptr<const EnforcementTrace> trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() >= capacity_) {
    traces_.pop_front();
    ++dropped_;
  }
  traces_.push_back(std::move(trace));
}

std::vector<std::shared_ptr<const EnforcementTrace>> TraceSink::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const EnforcementTrace>> out(traces_.begin(),
                                                           traces_.end());
  traces_.clear();
  return out;
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace wfrm::obs
