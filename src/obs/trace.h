#ifndef WFRM_OBS_TRACE_H_
#define WFRM_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace wfrm::obs {

class EnforcementTrace;

/// One stage of the enforcement pipeline for one query: a named, timed
/// span with ordered key/value attributes and child spans. Spans are
/// created through EnforcementTrace / TraceSpan::Child and owned by
/// their parent; pointers stay valid for the lifetime of the trace.
///
/// A trace belongs to a single Submit call and is mutated from that one
/// thread only; cross-thread safety is provided at the TraceSink level
/// (each concurrent query gets its own trace).
class TraceSpan {
 public:
  /// Starts a child span (clocked from the owning trace). Never null.
  TraceSpan* Child(std::string name);

  /// Appends an attribute. Keys may repeat; insertion order is
  /// preserved (Explain renders repeated "policy" rows in match order).
  void AddAttr(std::string key, std::string value);
  void AddAttr(std::string key, int64_t value);

  /// Closes the span (records end time). Idempotent: the first call
  /// wins. An unclosed span is closed by EnforcementTrace::Finish().
  void End();

  const std::string& name() const { return name_; }
  int64_t start_micros() const { return start_micros_; }
  bool ended() const { return ended_; }
  /// Meaningful only after End() (see ended()).
  int64_t end_micros() const { return end_micros_; }
  int64_t duration_micros() const {
    return ended_ ? end_micros_ - start_micros_ : 0;
  }
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }
  const std::vector<std::unique_ptr<TraceSpan>>& children() const {
    return children_;
  }

  /// First value recorded under `key`, or "" when absent.
  std::string Attr(const std::string& key) const;
  /// Every value recorded under `key`, in insertion order.
  std::vector<std::string> AttrAll(const std::string& key) const;
  /// First descendant span (pre-order) named `name`, or nullptr.
  const TraceSpan* Find(const std::string& name) const;

 private:
  friend class EnforcementTrace;
  TraceSpan(EnforcementTrace* trace, std::string name);

  EnforcementTrace* trace_;
  std::string name_;
  int64_t start_micros_ = 0;
  int64_t end_micros_ = 0;
  bool ended_ = false;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

/// The decision log of one RQL query through the Figure 1 pipeline: a
/// span tree rooted at "submit" recording each rewrite stage (policies
/// matched by PID, cache outcomes, candidate-set sizes) and the final
/// outcome. Rendered as an indented tree (ToString) or JSON (ToJson);
/// ResourceManager::Explain turns it into a prose report.
class EnforcementTrace {
 public:
  /// `clock` drives span timestamps; nullptr = SystemClock::Default()
  /// (inject a SimulatedClock for deterministic timings in tests).
  explicit EnforcementTrace(std::string query_text, Clock* clock = nullptr);

  TraceSpan* root() { return root_.get(); }
  const TraceSpan* root() const { return root_.get(); }
  const std::string& query_text() const { return query_text_; }

  /// Ends every span still open (children before parents, so child
  /// end times never exceed the parent's).
  void Finish();

  int64_t NowMicros() const { return clock_->NowMicros(); }

  /// Indented human-readable tree:
  ///   submit (142us) status=kOk candidates=2
  ///     enforce_primary (66us) rewrite_cache=miss
  ///       qualification (31us) fanout=1 ...
  std::string ToString() const;

  /// One JSON object: {"query":..,"root":{"name":..,"start_us":..,
  /// "end_us":..,"attrs":[[k,v],...],"children":[...]}}
  std::string ToJson() const;

 private:
  std::string query_text_;
  Clock* clock_;
  std::unique_ptr<TraceSpan> root_;
};

/// Thread-safe collector of finished traces, bounded to `capacity`
/// (oldest dropped first). Attach one to ResourceManagerOptions to
/// capture the decision log of every Submit — including each worker's
/// queries under SubmitBatch/EnforceBatch.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 1024) : capacity_(capacity) {}

  void Add(std::shared_ptr<const EnforcementTrace> trace);

  /// Removes and returns everything collected so far, oldest first.
  std::vector<std::shared_ptr<const EnforcementTrace>> Drain();

  size_t size() const;
  /// Traces dropped because the sink was full.
  uint64_t dropped() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const EnforcementTrace>> traces_;
  uint64_t dropped_ = 0;
};

// ---- Null-safe helpers ----------------------------------------------------
//
// The enforcement pipeline threads an optional TraceSpan* through every
// stage; these helpers make the disabled path (span == nullptr) a single
// predicted branch with no allocation.

inline TraceSpan* Child(TraceSpan* parent, const char* name) {
  return parent == nullptr ? nullptr : parent->Child(name);
}

/// By const reference so the disabled path never copies the value; the
/// copy happens inside the branch. Callers composing a value string
/// should still guard the composition with `if (span != nullptr)`.
inline void Attr(TraceSpan* span, const char* key, const std::string& value) {
  if (span != nullptr) span->AddAttr(key, value);
}

inline void Attr(TraceSpan* span, const char* key, const char* value) {
  if (span != nullptr) span->AddAttr(key, std::string(value));
}

inline void Attr(TraceSpan* span, const char* key, int64_t value) {
  if (span != nullptr) span->AddAttr(key, value);
}

inline void End(TraceSpan* span) {
  if (span != nullptr) span->End();
}

/// RAII span guard for scoped stages; tolerates a null parent.
class ScopedSpan {
 public:
  ScopedSpan(TraceSpan* parent, const char* name)
      : span_(Child(parent, name)) {}
  ~ScopedSpan() { End(span_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceSpan* get() const { return span_; }
  operator TraceSpan*() const { return span_; }

 private:
  TraceSpan* span_;
};

}  // namespace wfrm::obs

#endif  // WFRM_OBS_TRACE_H_
