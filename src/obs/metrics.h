#ifndef WFRM_OBS_METRICS_H_
#define WFRM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wfrm::obs {

/// Label set of one instrument instance. Kept sorted by key so that two
/// semantically equal label sets always map to the same instrument.
using LabelMap = std::map<std::string, std::string>;

/// Monotonically increasing event count. Updates are single relaxed
/// atomic adds — safe to call from any thread, cheap enough for hot
/// enforcement paths.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (allocated resources, cache sizes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are the
/// inclusive upper bounds of the finite buckets ("le"), with an implicit
/// +Inf bucket at the end. Observations are two relaxed atomic adds plus
/// an atomic sum update; bucket counts are stored per bucket and
/// cumulated only at exposition time.
class Histogram {
 public:
  /// Buckets must be strictly increasing; an empty list leaves only the
  /// +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Default latency buckets in microseconds: 1 µs .. 10 s in a 1-2-5
  /// progression — wide enough for a cache hit and a cold SQL retrieval
  /// on the same scale.
  static const std::vector<double>& LatencyBucketsMicros();

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Cumulative counts per bound plus the +Inf total, exposition-style.
  std::vector<uint64_t> CumulativeCounts() const;

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 slots; the last one is the +Inf overflow bucket.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Thread-safe instrument registry with Prometheus text exposition and a
/// JSON dump. Get* registers on first use and returns a stable pointer —
/// callers resolve their instruments once and then update them with
/// plain atomic ops, so a disabled registry (null pointer at the call
/// site) costs a single branch.
///
/// Naming convention: `wfrm_<layer>_<what>[_total|_micros]`, e.g.
/// `wfrm_enforce_cache_lookups_total{cache="rewrite",outcome="hit"}`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. `help` is recorded on creation and ignored afterwards.
  Counter* GetCounter(const std::string& name, const LabelMap& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const LabelMap& labels = {},
                  const std::string& help = "");
  /// The bucket layout is fixed by the first registration of `name`;
  /// later calls with different bounds get the existing instrument.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds,
                          const LabelMap& labels = {},
                          const std::string& help = "");

  /// Prometheus text exposition format (# HELP / # TYPE / samples),
  /// deterministically ordered by metric name then labels. Label values
  /// are escaped per the format spec (backslash, double-quote, newline).
  std::string RenderPrometheus() const;

  /// The same data as one JSON object:
  ///   {"counters":[{"name":..,"labels":{..},"value":..},...],
  ///    "gauges":[...],
  ///    "histograms":[{"name":..,"labels":{..},"count":..,"sum":..,
  ///                   "buckets":[{"le":..,"count":..},...]},...]}
  std::string RenderJson() const;

  /// Number of registered instruments (tests).
  size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind;
    std::string name;
    LabelMap labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  /// Composite map key: name + serialized labels.
  static std::string Key(const std::string& name, const LabelMap& labels);

  Instrument* FindOrCreate(Kind kind, const std::string& name,
                           const LabelMap& labels, const std::string& help,
                           std::vector<double> bounds);

  mutable std::mutex mu_;
  /// Stable instrument storage: the map owns the nodes, pointers into
  /// them never move.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
  /// HELP text per metric family: the first non-empty help registered
  /// for a name wins, whatever label set carried it.
  std::map<std::string, std::string> family_help_;
};

/// Escapes a Prometheus label value: `\` -> `\\`, `"` -> `\"`, newline ->
/// `\n` (exposed for tests).
std::string EscapeLabelValue(const std::string& value);

/// Escapes HELP text: `\` -> `\\`, newline -> `\n`.
std::string EscapeHelp(const std::string& value);

/// Escapes a JSON string body (quotes, backslashes, control chars).
std::string EscapeJson(const std::string& value);

/// Formats a histogram bound the way exposition expects ("+Inf" for the
/// overflow bucket, shortest round-trip decimal otherwise).
std::string FormatBound(double bound);

}  // namespace wfrm::obs

#endif  // WFRM_OBS_METRICS_H_
