#include "rql/rql.h"

#include "org/org_model.h"
#include "rel/parser.h"
#include "rel/token.h"

namespace wfrm::rql {

const rel::Value* ActivitySpec::Find(const std::string& attribute) const {
  for (const ActivityBinding& b : bindings) {
    if (EqualsIgnoreCase(b.attribute, attribute)) return &b.value;
  }
  return nullptr;
}

rel::ParamMap ActivitySpec::AsParams() const {
  rel::ParamMap params;
  for (const ActivityBinding& b : bindings) params[b.attribute] = b.value;
  return params;
}

std::string ActivitySpec::ToString() const {
  std::string out = "For " + activity;
  if (!bindings.empty()) {
    out += " With ";
    for (size_t i = 0; i < bindings.size(); ++i) {
      if (i > 0) out += " And ";
      out += bindings[i].attribute + " = " + bindings[i].value.ToString();
    }
  }
  return out;
}

RqlQuery RqlQuery::Clone() const {
  RqlQuery out;
  out.select = select->Clone();
  out.spec = spec;
  return out;
}

std::string RqlQuery::ToString() const {
  return select->ToString() + " " + spec.ToString();
}

Result<RqlQuery> ParseRql(std::string_view text) {
  WFRM_ASSIGN_OR_RETURN(rel::TokenStream ts, rel::TokenStream::Open(text));
  RqlQuery query;
  WFRM_ASSIGN_OR_RETURN(query.select, rel::SqlParser::ParseSelectFrom(ts));
  WFRM_RETURN_NOT_OK(ts.ExpectKeyword("for"));
  WFRM_ASSIGN_OR_RETURN(query.spec.activity,
                        ts.ExpectIdentifier("activity type"));
  // `With` is mandatory in the grammar when the activity has attributes;
  // we accept its absence for attribute-free activities.
  if (ts.TryKeyword("with")) {
    do {
      ActivityBinding binding;
      WFRM_ASSIGN_OR_RETURN(binding.attribute,
                            ts.ExpectIdentifier("activity attribute"));
      WFRM_RETURN_NOT_OK(ts.ExpectSymbol("="));
      const rel::Token& t = ts.Peek();
      switch (t.kind) {
        case rel::Token::Kind::kNumber:
        case rel::Token::Kind::kString:
          binding.value = t.value;
          ts.Next();
          break;
        case rel::Token::Kind::kIdentifier:
          if (t.IsKeyword("true")) {
            binding.value = rel::Value::Bool(true);
            ts.Next();
            break;
          }
          if (t.IsKeyword("false")) {
            binding.value = rel::Value::Bool(false);
            ts.Next();
            break;
          }
          [[fallthrough]];
        default:
          return ts.Error("expected a constant in the With clause");
      }
      query.spec.bindings.push_back(std::move(binding));
    } while (ts.TryKeyword("and"));
  }
  if (!ts.AtEnd() && !ts.Peek().IsSymbol(";")) {
    return ts.Error("unexpected trailing input after RQL query");
  }
  return query;
}

namespace {

/// Checks that every plain column reference in a Where clause resolves
/// against the resource schema. Subqueries are skipped — they resolve
/// against their own FROM lists at execution time.
Status ValidateWhere(const rel::Expr& e, const rel::Schema& schema,
                     const std::string& binding_name) {
  using rel::Expr;
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
      return Status::OK();
    case Expr::Kind::kParameter:
      return Status::InvalidArgument(
          "activity-attribute parameters ([...]) are only allowed in "
          "policies, not in RQL queries");
    case Expr::Kind::kColumnRef: {
      const auto& ref = static_cast<const rel::ColumnRefExpr&>(e);
      if (!ref.qualifier().empty() &&
          !EqualsIgnoreCase(ref.qualifier(), binding_name)) {
        return Status::NotFound("unknown qualifier '" + ref.qualifier() +
                                "' in RQL Where clause");
      }
      if (!schema.FindColumn(ref.name())) {
        return Status::NotFound("attribute '" + ref.name() +
                                "' not defined on the requested resource");
      }
      return Status::OK();
    }
    case Expr::Kind::kUnary:
      return ValidateWhere(static_cast<const rel::UnaryExpr&>(e).operand(),
                           schema, binding_name);
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const rel::BinaryExpr&>(e);
      WFRM_RETURN_NOT_OK(ValidateWhere(b.left(), schema, binding_name));
      return ValidateWhere(b.right(), schema, binding_name);
    }
    case Expr::Kind::kInList: {
      const auto& in = static_cast<const rel::InListExpr&>(e);
      WFRM_RETURN_NOT_OK(ValidateWhere(in.needle(), schema, binding_name));
      for (const auto& item : in.haystack()) {
        WFRM_RETURN_NOT_OK(ValidateWhere(*item, schema, binding_name));
      }
      return Status::OK();
    }
    case Expr::Kind::kSubquery:
      return Status::OK();
    case Expr::Kind::kInSubquery:
      return ValidateWhere(
          static_cast<const rel::InSubqueryExpr&>(e).needle(), schema,
          binding_name);
    case Expr::Kind::kFunction: {
      const auto& fn = static_cast<const rel::FunctionExpr&>(e);
      for (const auto& arg : fn.args()) {
        WFRM_RETURN_NOT_OK(ValidateWhere(*arg, schema, binding_name));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<RqlQuery> BindRql(RqlQuery query, const org::OrgModel& org) {
  if (query.select == nullptr) {
    return Status::InvalidArgument("RQL query has no select statement");
  }
  if (query.select->from.size() != 1) {
    return Status::InvalidArgument(
        "an RQL query requests exactly one resource type");
  }
  if (query.select->union_next != nullptr || query.select->connect_by ||
      !query.select->group_by.empty()) {
    return Status::InvalidArgument(
        "RQL supports plain Select-From-Where only");
  }

  // Canonicalize the resource type.
  WFRM_ASSIGN_OR_RETURN(std::string resource,
                        org.resources().Canonical(query.resource()));
  query.select->from[0].name = resource;

  // Canonicalize the activity type.
  WFRM_ASSIGN_OR_RETURN(std::string activity,
                        org.activities().Canonical(query.spec.activity));
  query.spec.activity = activity;

  // Activity must be fully described (§2.3): each declared attribute of
  // the activity type bound exactly once, with a compatible constant.
  WFRM_ASSIGN_OR_RETURN(std::vector<org::AttributeDef> attrs,
                        org.activities().AttributesOf(activity));
  for (const org::AttributeDef& attr : attrs) {
    size_t bound = 0;
    for (const ActivityBinding& b : query.spec.bindings) {
      if (EqualsIgnoreCase(b.attribute, attr.name)) {
        ++bound;
        if (!b.value.CompatibleWith(attr.type)) {
          return Status::TypeError(
              "activity attribute '" + attr.name + "' expects " +
              rel::DataTypeToString(attr.type) + " but got " +
              b.value.ToString());
        }
      }
    }
    if (bound == 0) {
      return Status::InvalidArgument(
          "activity '" + activity + "' is not fully specified: attribute '" +
          attr.name + "' is unbound (the paper requires every activity "
          "attribute to be specified)");
    }
    if (bound > 1) {
      return Status::InvalidArgument("activity attribute '" + attr.name +
                                     "' bound more than once");
    }
  }
  for (const ActivityBinding& b : query.spec.bindings) {
    bool known = false;
    for (const org::AttributeDef& attr : attrs) {
      if (EqualsIgnoreCase(b.attribute, attr.name)) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::NotFound("attribute '" + b.attribute +
                              "' not defined on activity '" + activity + "'");
    }
  }

  // Validate the Where clause against the resource schema.
  if (query.select->where != nullptr) {
    WFRM_ASSIGN_OR_RETURN(rel::Schema schema, org.ResourceSchema(resource));
    WFRM_RETURN_NOT_OK(ValidateWhere(*query.select->where, schema,
                                     query.select->from[0].BindingName()));
  }
  return query;
}

Result<RqlQuery> ParseAndBindRql(std::string_view text,
                                 const org::OrgModel& org) {
  WFRM_ASSIGN_OR_RETURN(RqlQuery query, ParseRql(text));
  return BindRql(std::move(query), org);
}

}  // namespace wfrm::rql
