#ifndef WFRM_RQL_RQL_H_
#define WFRM_RQL_RQL_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "rel/executor.h"
#include "rel/sql_ast.h"

namespace wfrm::org {
class OrgModel;
}

namespace wfrm::rql {

/// One `attribute = value` binding of the activity specification.
struct ActivityBinding {
  std::string attribute;
  rel::Value value;
};

/// The activity part of a resource request: `For <activity> With a1 = v1
/// And a2 = v2 ...`. Per §2.3 the activity "can and should be fully
/// described" — every attribute bound to a constant.
struct ActivitySpec {
  std::string activity;
  std::vector<ActivityBinding> bindings;

  /// Value bound to `attribute` (case-insensitive), if any.
  const rel::Value* Find(const std::string& attribute) const;

  /// The bindings as an executor parameter map, used both to evaluate
  /// activity ranges and to substitute `[Attr]` references in policies.
  rel::ParamMap AsParams() const;

  std::string ToString() const;
};

/// A parsed RQL query (paper Figure 4):
///
///   Select <attrs> From <resource> [Where <cond>]
///   For <activity> With <attribute_value_list>
///
/// `select` holds the SQL part; `spec` the activity part. The FROM
/// clause names exactly one resource type.
struct RqlQuery {
  rel::SelectPtr select;
  ActivitySpec spec;

  RqlQuery() = default;
  RqlQuery(rel::SelectPtr s, ActivitySpec a)
      : select(std::move(s)), spec(std::move(a)) {}
  RqlQuery(const RqlQuery&) = delete;
  RqlQuery& operator=(const RqlQuery&) = delete;
  RqlQuery(RqlQuery&&) = default;
  RqlQuery& operator=(RqlQuery&&) = default;

  RqlQuery Clone() const;

  /// The requested resource type (the single FROM entry).
  const std::string& resource() const { return select->from[0].name; }
  const std::string& activity() const { return spec.activity; }

  std::string ToString() const;
};

/// Parses RQL text into an RqlQuery (no semantic checks).
Result<RqlQuery> ParseRql(std::string_view text);

/// Validates a parsed query against the organization model: the resource
/// and activity types exist, the activity is fully specified (every
/// attribute of the activity type bound exactly once, with a type-
/// compatible constant), and the Where clause mentions only attributes
/// of the resource type. Returns the query with canonical type
/// spellings.
Result<RqlQuery> BindRql(RqlQuery query, const org::OrgModel& org);

/// ParseRql + BindRql.
Result<RqlQuery> ParseAndBindRql(std::string_view text,
                                 const org::OrgModel& org);

}  // namespace wfrm::rql

#endif  // WFRM_RQL_RQL_H_
