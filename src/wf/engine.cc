#include "wf/engine.h"

namespace wfrm::wf {

Result<std::string> InstantiateTemplate(const std::string& rql_template,
                                        const CaseData& data) {
  std::string out;
  out.reserve(rql_template.size());
  size_t i = 0;
  while (i < rql_template.size()) {
    if (rql_template[i] == '$' && i + 1 < rql_template.size() &&
        rql_template[i + 1] == '{') {
      size_t end = rql_template.find('}', i + 2);
      if (end == std::string::npos) {
        return Status::InvalidArgument(
            "unterminated ${...} placeholder in RQL template");
      }
      std::string name = rql_template.substr(i + 2, end - i - 2);
      auto it = data.find(name);
      if (it == data.end()) {
        return Status::NotFound("case data does not bind placeholder '" +
                                name + "'");
      }
      out += it->second;
      i = end + 1;
    } else {
      out.push_back(rql_template[i]);
      ++i;
    }
  }
  return out;
}

size_t WorkflowEngine::StartCase(const ProcessDefinition& process,
                                 CaseData data) {
  cases_.push_back(Case{&process, std::move(data), 0, CaseState::kRunning,
                        std::nullopt});
  return cases_.size() - 1;
}

Result<WorkflowEngine::Case*> WorkflowEngine::FindCase(size_t case_id) {
  if (case_id >= cases_.size()) {
    return Status::NotFound("unknown case " + std::to_string(case_id));
  }
  return &cases_[case_id];
}

Result<WorkItem> WorkflowEngine::Advance(size_t case_id) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (c->state != CaseState::kRunning) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " is not running");
  }
  if (c->open_item) {
    return Status::InvalidArgument(
        "case " + std::to_string(case_id) +
        " has an open work item; complete it before advancing");
  }
  if (c->next_step >= c->process->steps.size()) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " has no steps left");
  }
  const ActivityStep& step = c->process->steps[c->next_step];
  auto rql = InstantiateTemplate(step.rql_template, c->data);
  if (!rql.ok()) {
    c->state = CaseState::kFailed;
    return rql.status();
  }
  auto acquired = rm_->Acquire(*rql);
  if (!acquired.ok()) {
    c->state = CaseState::kFailed;
    return acquired.status();
  }
  WorkItem item;
  item.case_id = case_id;
  item.step_index = c->next_step;
  item.step_name = step.name;
  item.resource = *acquired;
  c->open_item = item;
  return item;
}

Status WorkflowEngine::Complete(size_t case_id) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (!c->open_item) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " has no open work item");
  }
  WFRM_RETURN_NOT_OK(rm_->Release(c->open_item->resource));
  c->open_item->completed = true;
  history_.push_back(*c->open_item);
  c->open_item.reset();
  ++c->next_step;
  if (c->next_step >= c->process->steps.size()) {
    c->state = CaseState::kCompleted;
  }
  return Status::OK();
}

Result<CaseState> WorkflowEngine::GetState(size_t case_id) const {
  if (case_id >= cases_.size()) {
    return Status::NotFound("unknown case " + std::to_string(case_id));
  }
  return cases_[case_id].state;
}

}  // namespace wfrm::wf
