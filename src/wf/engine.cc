#include "wf/engine.h"

namespace wfrm::wf {

void WorkflowEngine::ResolveMetrics() {
  obs::MetricsRegistry* reg = rm_->options().metrics;
  if (reg == nullptr) return;
  const std::string advances_help = "Advance() outcomes by result.";
  metrics_.advance_ok = reg->GetCounter("wfrm_engine_advances_total",
                                        {{"result", "ok"}}, advances_help);
  metrics_.advance_failed = reg->GetCounter(
      "wfrm_engine_advances_total", {{"result", "failed"}}, advances_help);
  metrics_.retries = reg->GetCounter(
      "wfrm_engine_retries_total", {},
      "Backoff retries after transient resource unavailability.");
  metrics_.reassignments = reg->GetCounter(
      "wfrm_engine_reassignments_total", {},
      "Work items whose failed holder was replaced via Reassign().");
  metrics_.completions = reg->GetCounter(
      "wfrm_engine_completions_total", {},
      "Work items completed (resource released, step advanced).");
}

Result<std::string> InstantiateTemplate(const std::string& rql_template,
                                        const CaseData& data) {
  std::string out;
  out.reserve(rql_template.size());
  size_t i = 0;
  while (i < rql_template.size()) {
    if (rql_template[i] == '$' && i + 1 < rql_template.size() &&
        rql_template[i + 1] == '{') {
      size_t end = rql_template.find('}', i + 2);
      if (end == std::string::npos) {
        return Status::InvalidArgument(
            "unterminated ${...} placeholder in RQL template");
      }
      std::string name = rql_template.substr(i + 2, end - i - 2);
      auto it = data.find(name);
      if (it == data.end()) {
        return Status::NotFound("case data does not bind placeholder '" +
                                name + "'");
      }
      out += it->second;
      i = end + 1;
    } else {
      out.push_back(rql_template[i]);
      ++i;
    }
  }
  return out;
}

size_t WorkflowEngine::StartCase(const ProcessDefinition& process,
                                 CaseData data) {
  cases_.push_back(Case{&process, std::move(data), 0, CaseState::kRunning,
                        std::nullopt});
  return cases_.size() - 1;
}

Result<WorkflowEngine::Case*> WorkflowEngine::FindCase(size_t case_id) {
  if (case_id >= cases_.size()) {
    return Status::NotFound("unknown case " + std::to_string(case_id));
  }
  return &cases_[case_id];
}

Result<core::Lease> WorkflowEngine::AcquireWithRetry(
    Case* c, const std::string& rql, const org::ResourceRef& excluded) {
  // Each acquisition gets its own deterministic backoff series (the
  // sequence number decorrelates jitter across acquisitions while
  // keeping whole-run replay exact).
  Backoff backoff(options_.retry_policy,
                  options_.retry_jitter_seed + retry_sequence_++);
  Status last;
  for (int attempt = 0;; ++attempt) {
    auto acquired = excluded.id.empty()
                        ? rm_->Acquire(rql)
                        : rm_->AcquireExcluding(rql, excluded);
    if (acquired.ok()) return acquired;
    last = acquired.status();
    if (!last.IsResourceUnavailable()) {
      // Terminal: CWA rejection (kNoQualifiedResource), malformed RQL,
      // execution errors. The case cannot ever make progress here.
      c->state = CaseState::kFailed;
      return last;
    }
    if (!backoff.ShouldRetry(attempt)) break;
    if (metrics_.retries != nullptr) metrics_.retries->Increment();
    clock().SleepForMicros(backoff.NextDelayMicros());
  }
  // Transient exhaustion: report it, but the case stays kRunning — a
  // later call may find capacity restored.
  return last;
}

Result<WorkItem> WorkflowEngine::Advance(size_t case_id) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (c->state != CaseState::kRunning) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " is not running");
  }
  if (c->open_item) {
    return Status::InvalidArgument(
        "case " + std::to_string(case_id) +
        " has an open work item; complete it before advancing");
  }
  if (c->next_step >= c->process->steps.size()) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " has no steps left");
  }
  const ActivityStep& step = c->process->steps[c->next_step];
  auto rql = InstantiateTemplate(step.rql_template, c->data);
  if (!rql.ok()) {
    c->state = CaseState::kFailed;
    if (metrics_.advance_failed != nullptr) {
      metrics_.advance_failed->Increment();
    }
    return rql.status();
  }
  auto acquired = AcquireWithRetry(c, *rql, org::ResourceRef{});
  if (!acquired.ok()) {
    if (metrics_.advance_failed != nullptr) {
      metrics_.advance_failed->Increment();
    }
    return acquired.status();
  }
  core::Lease lease = *std::move(acquired);
  WorkItem item;
  item.case_id = case_id;
  item.step_index = c->next_step;
  item.step_name = step.name;
  item.resource = lease.resource;
  item.lease = lease;
  c->open_item = item;
  if (metrics_.advance_ok != nullptr) metrics_.advance_ok->Increment();
  return item;
}

Result<WorkItem> WorkflowEngine::Reassign(size_t case_id) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (c->state != CaseState::kRunning) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " is not running");
  }
  if (!c->open_item) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " has no open work item to reassign");
  }
  const org::ResourceRef failed = c->open_item->resource;
  // Reclaim the dead holder's allocation. kNotAllocated is fine — the
  // lease may already have expired and been reaped (or overwritten by a
  // newer grant, which Release-by-lease never touches).
  Status released = rm_->Release(c->open_item->lease);
  if (!released.ok() && !released.IsNotAllocated()) return released;

  const ActivityStep& step = c->process->steps[c->open_item->step_index];
  WFRM_ASSIGN_OR_RETURN(std::string rql,
                        InstantiateTemplate(step.rql_template, c->data));
  auto lease = AcquireWithRetry(c, rql, failed);
  if (!lease.ok()) {
    // The old holder is gone either way; drop the orphaned item so the
    // case can re-enter this step through a later Advance().
    c->open_item.reset();
    return lease.status();
  }
  WorkItem item;
  item.case_id = case_id;
  item.step_index = c->open_item->step_index;
  item.step_name = step.name;
  item.resource = lease->resource;
  item.lease = *lease;
  item.reassigned = true;
  c->open_item = item;
  ++num_reassignments_;
  if (metrics_.reassignments != nullptr) metrics_.reassignments->Increment();
  return item;
}

Status WorkflowEngine::RenewLease(size_t case_id) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (!c->open_item) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " has no open work item");
  }
  WFRM_ASSIGN_OR_RETURN(core::Lease renewed,
                        rm_->RenewLease(c->open_item->lease));
  c->open_item->lease = renewed;
  return Status::OK();
}

Status WorkflowEngine::Complete(size_t case_id) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (!c->open_item) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " has no open work item");
  }
  // Release by lease receipt: if the lease lapsed and the resource was
  // reclaimed (possibly re-granted elsewhere), the completion is
  // rejected instead of silently freeing someone else's allocation.
  WFRM_RETURN_NOT_OK(rm_->Release(c->open_item->lease));
  c->open_item->completed = true;
  history_.push_back(*c->open_item);
  c->open_item.reset();
  if (metrics_.completions != nullptr) metrics_.completions->Increment();
  ++c->next_step;
  if (c->next_step >= c->process->steps.size()) {
    c->state = CaseState::kCompleted;
  }
  return Status::OK();
}

Result<CaseState> WorkflowEngine::GetState(size_t case_id) const {
  if (case_id >= cases_.size()) {
    return Status::NotFound("unknown case " + std::to_string(case_id));
  }
  return cases_[case_id].state;
}

}  // namespace wfrm::wf
