#ifndef WFRM_WF_ENGINE_H_
#define WFRM_WF_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/resource_manager.h"

namespace wfrm::wf {

/// One activity node of a process definition. `rql_template` is an RQL
/// request whose `${name}` placeholders are filled from the case data at
/// run time — the workflow engine handles the "when", the resource
/// manager the "who" (paper §1).
struct ActivityStep {
  std::string name;
  std::string rql_template;
};

/// A linear process definition (sufficient context for the RM under
/// study; branching/looping control flow is orthogonal to resource
/// policy enforcement).
struct ProcessDefinition {
  std::string name;
  std::vector<ActivityStep> steps;
};

/// Case data: placeholder name → literal text substituted into the RQL
/// template (values must be valid RQL literals, e.g. "'ana'" or "1200").
using CaseData = std::map<std::string, std::string>;

enum class CaseState { kRunning, kCompleted, kFailed };

/// A work item: one step of one case assigned to one resource.
struct WorkItem {
  size_t case_id = 0;
  size_t step_index = 0;
  std::string step_name;
  org::ResourceRef resource;
  bool completed = false;
};

/// Replaces `${name}` placeholders in an RQL template with case data.
/// Fails on unbound placeholders.
Result<std::string> InstantiateTemplate(const std::string& rql_template,
                                        const CaseData& data);

/// A minimal workflow engine driving the resource manager: it steps each
/// case through its process definition, asking the RM for a qualified,
/// policy-compliant, available resource at every activity, holding the
/// allocation until the work item completes.
class WorkflowEngine {
 public:
  explicit WorkflowEngine(core::ResourceManager* rm) : rm_(rm) {}

  /// Starts a case; returns its id. The case sits before its first step
  /// until Advance() is called.
  size_t StartCase(const ProcessDefinition& process, CaseData data);

  /// Assigns the case's next step to a resource (via the RM). On
  /// success the case carries an open work item; complete it with
  /// Complete(). Fails — and marks the case kFailed — when no resource
  /// can be found.
  Result<WorkItem> Advance(size_t case_id);

  /// Completes the case's open work item, releasing its resource and
  /// moving to the next step (or completing the case).
  Status Complete(size_t case_id);

  Result<CaseState> GetState(size_t case_id) const;

  /// Work items processed so far (completed), across all cases.
  const std::vector<WorkItem>& history() const { return history_; }

 private:
  struct Case {
    const ProcessDefinition* process;
    CaseData data;
    size_t next_step = 0;
    CaseState state = CaseState::kRunning;
    std::optional<WorkItem> open_item;
  };

  Result<Case*> FindCase(size_t case_id);

  core::ResourceManager* rm_;
  std::vector<Case> cases_;
  std::vector<WorkItem> history_;
};

}  // namespace wfrm::wf

#endif  // WFRM_WF_ENGINE_H_
