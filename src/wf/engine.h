#ifndef WFRM_WF_ENGINE_H_
#define WFRM_WF_ENGINE_H_

#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/retry.h"
#include "core/resource_manager.h"

namespace wfrm::wf {

/// One activity node of a process definition. `rql_template` is an RQL
/// request whose `${name}` placeholders are filled from the case data at
/// run time — the workflow engine handles the "when", the resource
/// manager the "who" (paper §1).
struct ActivityStep {
  std::string name;
  std::string rql_template;
};

/// A linear process definition (sufficient context for the RM under
/// study; branching/looping control flow is orthogonal to resource
/// policy enforcement).
struct ProcessDefinition {
  std::string name;
  std::vector<ActivityStep> steps;
};

/// Case data: placeholder name → literal text substituted into the RQL
/// template (values must be valid RQL literals, e.g. "'ana'" or "1200").
using CaseData = std::map<std::string, std::string>;

enum class CaseState { kRunning, kCompleted, kFailed };

/// A work item: one step of one case assigned to one resource.
struct WorkItem {
  size_t case_id = 0;
  size_t step_index = 0;
  std::string step_name;
  org::ResourceRef resource;
  /// The allocation receipt backing `resource`.
  core::Lease lease;
  bool completed = false;
  /// True when this assignment replaced a failed holder via Reassign()
  /// (the resource still came from a fresh enforced-query outcome).
  bool reassigned = false;
};

struct WorkflowEngineOptions {
  /// Retry schedule for transient kResourceUnavailable in Advance() and
  /// Reassign(). RetryPolicy::None() restores the seed's
  /// fail-on-first-error behaviour (but the case still stays kRunning).
  RetryPolicy retry_policy;
  /// Backoff delays are spent against this clock. nullptr = the
  /// resource manager's clock (so a SimulatedClock wired into the RM
  /// automatically drives engine backoff too).
  Clock* clock = nullptr;
  /// Seed for backoff jitter (deterministic retry schedules in tests).
  uint64_t retry_jitter_seed = 42;
};

/// Replaces `${name}` placeholders in an RQL template with case data.
/// Fails on unbound placeholders.
Result<std::string> InstantiateTemplate(const std::string& rql_template,
                                        const CaseData& data);

/// A minimal workflow engine driving the resource manager: it steps each
/// case through its process definition, asking the RM for a qualified,
/// policy-compliant, available resource at every activity, holding the
/// allocation until the work item completes.
///
/// Failure handling: transient resource exhaustion is retried (with
/// backoff) and never kills a case — the case stays kRunning so a later
/// Advance() can succeed once capacity or health returns. Only terminal
/// conditions fail a case: kNoQualifiedResource (the CWA rejected every
/// resource type, §3.1) and semantic errors (unbound template
/// placeholders, malformed RQL). A holder that dies mid work item is
/// replaced via Reassign(), which re-runs the full §4 enforcement
/// pipeline rather than reusing the stale candidate set.
class WorkflowEngine {
 public:
  explicit WorkflowEngine(core::ResourceManager* rm,
                          WorkflowEngineOptions options = {})
      : rm_(rm), options_(options) {
    ResolveMetrics();
  }

  /// Starts a case; returns its id. The case sits before its first step
  /// until Advance() is called.
  size_t StartCase(const ProcessDefinition& process, CaseData data);

  /// Assigns the case's next step to a resource (via the RM). On
  /// success the case carries an open work item; complete it with
  /// Complete(). Transient unavailability is retried per the retry
  /// policy; when retries are exhausted the call fails but the case
  /// stays kRunning (call Advance() again later). The case is marked
  /// kFailed only on terminal errors (no qualified resource, bad
  /// template/RQL).
  Result<WorkItem> Advance(size_t case_id);

  /// Replaces the holder of the case's open work item after it failed
  /// (died, lease lost): releases the old allocation and re-runs the
  /// full enforcement pipeline — qualification, requirement, one
  /// substitution round — excluding the failed resource, so the
  /// substitute is policy-compliant by construction. On transient
  /// exhaustion the open item is abandoned (the case stays kRunning at
  /// the same step; a later Advance() re-assigns it).
  Result<WorkItem> Reassign(size_t case_id);

  /// Renews the lease of the case's open work item (long-running work
  /// under short leases).
  Status RenewLease(size_t case_id);

  /// Completes the case's open work item, releasing its resource and
  /// moving to the next step (or completing the case). Fails with
  /// kNotAllocated when the item's lease already lapsed and was
  /// reclaimed — the work item is no longer this holder's to complete;
  /// Reassign() or Advance() it instead.
  Status Complete(size_t case_id);

  Result<CaseState> GetState(size_t case_id) const;

  /// Enforces and executes a batch of independent RQL requests through
  /// the resource manager's worker pool (e.g. the assignment queries of
  /// every ready case in a scheduling tick). Element i is the outcome of
  /// rql_texts[i]; no allocation is performed — callers Advance() the
  /// cases they decide to schedule. num_workers == 0 auto-sizes.
  std::vector<Result<core::QueryOutcome>> EnforceBatch(
      const std::vector<std::string>& rql_texts,
      size_t num_workers = 0) const {
    return rm_->SubmitBatch(rql_texts, num_workers);
  }

  /// Work items processed so far (completed), across all cases.
  const std::vector<WorkItem>& history() const { return history_; }

  /// Reassignments performed so far (successful Reassign calls).
  size_t num_reassignments() const { return num_reassignments_; }

 private:
  struct Case {
    const ProcessDefinition* process;
    CaseData data;
    size_t next_step = 0;
    CaseState state = CaseState::kRunning;
    std::optional<WorkItem> open_item;
  };

  /// Engine counters, registered on the resource manager's metrics
  /// registry (rm->options().metrics); all null when it is detached.
  struct Instruments {
    obs::Counter* advance_ok = nullptr;
    obs::Counter* advance_failed = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* reassignments = nullptr;
    obs::Counter* completions = nullptr;
  };

  void ResolveMetrics();

  Result<Case*> FindCase(size_t case_id);
  Clock& clock() const {
    return options_.clock ? *options_.clock : rm_->clock();
  }
  /// Acquire with retry/backoff; `excluded` may be empty. Terminal
  /// failures mark the case; transient exhaustion leaves it kRunning.
  Result<core::Lease> AcquireWithRetry(Case* c, const std::string& rql,
                                       const org::ResourceRef& excluded);

  core::ResourceManager* rm_;
  WorkflowEngineOptions options_;
  Instruments metrics_;
  std::vector<Case> cases_;
  std::vector<WorkItem> history_;
  size_t num_reassignments_ = 0;
  uint64_t retry_sequence_ = 0;
};

}  // namespace wfrm::wf

#endif  // WFRM_WF_ENGINE_H_
