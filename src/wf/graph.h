#ifndef WFRM_WF_GRAPH_H_
#define WFRM_WF_GRAPH_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/resource_manager.h"
#include "wf/engine.h"

namespace wfrm::wf {

/// A structured process graph: activities plus the classic workflow
/// control nodes — XOR-split (conditional routing on case data),
/// AND-split (parallel branches) and AND-join (synchronization). This is
/// the "when" machinery of a WFMS (paper §1); every activity node asks
/// the resource manager for its "who".
///
/// Execution is token-based: a case starts with one token at the start
/// node; control nodes move/duplicate/merge tokens immediately, activity
/// nodes hold their token until the work item completes. The case
/// finishes when no tokens remain.
class ProcessGraph {
 public:
  explicit ProcessGraph(std::string name) : name_(std::move(name)) {}

  /// An activity node: performs `rql_template` (with `${...}` case-data
  /// placeholders) and moves its token to `next` ("" = case boundary).
  Status AddActivity(const std::string& name, std::string rql_template,
                     std::string next);

  /// An XOR-split: the first branch whose condition evaluates to TRUE
  /// receives the token. Conditions are boolean SQL expressions over
  /// `${...}` placeholders (e.g. "${amount} > 1000"); an empty condition
  /// is the else-branch.
  struct Branch {
    std::string condition_template;  // Empty = else.
    std::string target;
  };
  Status AddXorSplit(const std::string& name, std::vector<Branch> branches);

  /// An AND-split: duplicates the token onto every target.
  Status AddAndSplit(const std::string& name,
                     std::vector<std::string> targets);

  /// An AND-join: waits for one token per incoming edge, then emits a
  /// single token to `next`.
  Status AddAndJoin(const std::string& name, std::string next);

  /// Node the initial token starts on; defaults to the first added node.
  Status SetStart(const std::string& name);

  /// Structural checks: every referenced target exists, XOR splits have
  /// branches, joins have at least one incoming edge.
  Status Validate() const;

  const std::string& name() const { return name_; }

 private:
  friend class GraphEngine;

  enum class Kind { kActivity, kXorSplit, kAndSplit, kAndJoin };

  struct Node {
    std::string name;
    Kind kind;
    std::string rql_template;      // kActivity.
    std::vector<Branch> branches;  // kXorSplit.
    std::vector<std::string> targets;  // kAndSplit; kActivity/kAndJoin
                                       // use targets[0] ("" = end).
  };

  Status AddNode(Node node);
  const Node* Find(const std::string& name) const;
  /// Incoming-edge count per node (for AND-join thresholds). Node names
  /// are case-sensitive identifiers.
  std::map<std::string, size_t> IncomingCounts() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::string start_;
};

/// Executes process graphs against a resource manager.
class GraphEngine {
 public:
  explicit GraphEngine(core::ResourceManager* rm) : rm_(rm) {}

  /// Starts a case; control nodes run immediately, so PendingActivities
  /// is ready right after. Fails if the graph does not validate.
  Result<size_t> StartCase(const ProcessGraph& graph, CaseData data);

  /// Activity nodes currently holding an idle token (work that can be
  /// started). Parallel branches surface simultaneously.
  Result<std::vector<std::string>> PendingActivities(size_t case_id) const;

  /// Starts the named pending activity: asks the RM for a resource and
  /// opens a work item. On kResourceUnavailable the token stays pending
  /// (retry after a Release elsewhere); the case only fails on semantic
  /// errors.
  Result<WorkItem> StartActivity(size_t case_id, const std::string& node);

  /// Completes the open work item of `node`: releases the resource,
  /// moves the token onward and runs control nodes (joins may fire).
  Status CompleteActivity(size_t case_id, const std::string& node);

  Result<CaseState> GetState(size_t case_id) const;

  const std::vector<WorkItem>& history() const { return history_; }

 private:
  struct Token {
    std::string node;              // Always an activity node when idle.
    std::optional<WorkItem> open;  // Set while the activity runs.
  };

  struct Case {
    const ProcessGraph* graph;
    CaseData data;
    std::vector<Token> tokens;
    std::map<std::string, size_t> join_arrivals;  // Tokens waiting at joins.
    CaseState state = CaseState::kRunning;
  };

  /// Advances every token sitting on a control node until all rest on
  /// activity nodes (or leave the graph). `node` may be "" for the case
  /// boundary.
  Status Flow(Case* c, std::string node);

  Result<Case*> FindCase(size_t case_id);
  Result<const Case*> FindCase(size_t case_id) const;

  core::ResourceManager* rm_;
  std::vector<Case> cases_;
  std::vector<WorkItem> history_;
};

}  // namespace wfrm::wf

#endif  // WFRM_WF_GRAPH_H_
