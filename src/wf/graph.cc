#include "wf/graph.h"

#include "rel/executor.h"
#include "rel/parser.h"

namespace wfrm::wf {

// ---- ProcessGraph -----------------------------------------------------------

Status ProcessGraph::AddNode(Node node) {
  if (node.name.empty()) {
    return Status::InvalidArgument("node name must not be empty");
  }
  if (Find(node.name) != nullptr) {
    return Status::AlreadyExists("node '" + node.name + "' already exists in "
                                 "process '" + name_ + "'");
  }
  if (start_.empty()) start_ = node.name;
  nodes_.push_back(std::move(node));
  return Status::OK();
}

Status ProcessGraph::AddActivity(const std::string& name,
                                 std::string rql_template, std::string next) {
  Node node;
  node.name = name;
  node.kind = Kind::kActivity;
  node.rql_template = std::move(rql_template);
  node.targets = {std::move(next)};
  return AddNode(std::move(node));
}

Status ProcessGraph::AddXorSplit(const std::string& name,
                                 std::vector<Branch> branches) {
  if (branches.empty()) {
    return Status::InvalidArgument("XOR split '" + name +
                                   "' needs at least one branch");
  }
  Node node;
  node.name = name;
  node.kind = Kind::kXorSplit;
  node.branches = std::move(branches);
  return AddNode(std::move(node));
}

Status ProcessGraph::AddAndSplit(const std::string& name,
                                 std::vector<std::string> targets) {
  if (targets.empty()) {
    return Status::InvalidArgument("AND split '" + name +
                                   "' needs at least one target");
  }
  Node node;
  node.name = name;
  node.kind = Kind::kAndSplit;
  node.targets = std::move(targets);
  return AddNode(std::move(node));
}

Status ProcessGraph::AddAndJoin(const std::string& name, std::string next) {
  Node node;
  node.name = name;
  node.kind = Kind::kAndJoin;
  node.targets = {std::move(next)};
  return AddNode(std::move(node));
}

Status ProcessGraph::SetStart(const std::string& name) {
  if (Find(name) == nullptr) {
    return Status::NotFound("unknown start node '" + name + "'");
  }
  start_ = name;
  return Status::OK();
}

const ProcessGraph::Node* ProcessGraph::Find(const std::string& name) const {
  for (const Node& node : nodes_) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

std::map<std::string, size_t> ProcessGraph::IncomingCounts() const {
  std::map<std::string, size_t> counts;
  auto count = [&](const std::string& target) {
    if (!target.empty()) ++counts[target];
  };
  for (const Node& node : nodes_) {
    if (node.kind == Kind::kXorSplit) {
      for (const Branch& b : node.branches) count(b.target);
    } else {
      for (const std::string& t : node.targets) count(t);
    }
  }
  return counts;
}

Status ProcessGraph::Validate() const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("process '" + name_ + "' has no nodes");
  }
  auto check_target = [&](const std::string& from,
                          const std::string& target) -> Status {
    if (!target.empty() && Find(target) == nullptr) {
      return Status::NotFound("node '" + from + "' targets unknown node '" +
                              target + "'");
    }
    return Status::OK();
  };
  for (const Node& node : nodes_) {
    if (node.kind == Kind::kXorSplit) {
      for (const Branch& b : node.branches) {
        WFRM_RETURN_NOT_OK(check_target(node.name, b.target));
      }
    } else {
      for (const std::string& t : node.targets) {
        WFRM_RETURN_NOT_OK(check_target(node.name, t));
      }
    }
  }
  std::map<std::string, size_t> incoming = IncomingCounts();
  for (const Node& node : nodes_) {
    if (node.kind == Kind::kAndJoin && incoming[node.name] == 0) {
      return Status::InvalidArgument("AND join '" + node.name +
                                     "' has no incoming edges");
    }
  }
  return Status::OK();
}

// ---- GraphEngine ------------------------------------------------------------

Result<GraphEngine::Case*> GraphEngine::FindCase(size_t case_id) {
  if (case_id >= cases_.size()) {
    return Status::NotFound("unknown case " + std::to_string(case_id));
  }
  return &cases_[case_id];
}

Result<const GraphEngine::Case*> GraphEngine::FindCase(size_t case_id) const {
  if (case_id >= cases_.size()) {
    return Status::NotFound("unknown case " + std::to_string(case_id));
  }
  return &cases_[case_id];
}

Result<size_t> GraphEngine::StartCase(const ProcessGraph& graph,
                                      CaseData data) {
  WFRM_RETURN_NOT_OK(graph.Validate());
  Case c;
  c.graph = &graph;
  c.data = std::move(data);
  cases_.push_back(std::move(c));
  Case* stored = &cases_.back();
  Status st = Flow(stored, graph.start_);
  if (!st.ok()) {
    stored->state = CaseState::kFailed;
    return st;
  }
  if (stored->tokens.empty()) stored->state = CaseState::kCompleted;
  return cases_.size() - 1;
}

Status GraphEngine::Flow(Case* c, std::string node_name) {
  // Depth-first propagation of one token; activity nodes terminate the
  // walk by parking a token.
  if (node_name.empty()) return Status::OK();  // Token leaves the case.
  const ProcessGraph::Node* node = c->graph->Find(node_name);
  if (node == nullptr) {
    return Status::Internal("token reached unknown node '" + node_name + "'");
  }
  switch (node->kind) {
    case ProcessGraph::Kind::kActivity:
      c->tokens.push_back(Token{node->name, std::nullopt});
      return Status::OK();
    case ProcessGraph::Kind::kXorSplit: {
      for (const ProcessGraph::Branch& branch : node->branches) {
        if (branch.condition_template.empty()) {
          return Flow(c, branch.target);  // Else-branch.
        }
        WFRM_ASSIGN_OR_RETURN(
            std::string text,
            InstantiateTemplate(branch.condition_template, c->data));
        WFRM_ASSIGN_OR_RETURN(rel::ExprPtr expr,
                              rel::SqlParser::ParseExpr(text));
        rel::Database empty;
        rel::Executor exec(&empty);
        WFRM_ASSIGN_OR_RETURN(rel::Value v, exec.EvalConst(*expr));
        if (v.is_bool() && v.bool_value()) {
          return Flow(c, branch.target);
        }
      }
      return Status::ExecutionError(
          "no branch of XOR split '" + node->name +
          "' matched the case data and no else-branch exists");
    }
    case ProcessGraph::Kind::kAndSplit:
      for (const std::string& target : node->targets) {
        WFRM_RETURN_NOT_OK(Flow(c, target));
      }
      return Status::OK();
    case ProcessGraph::Kind::kAndJoin: {
      size_t needed = c->graph->IncomingCounts()[node->name];
      size_t arrived = ++c->join_arrivals[node->name];
      if (arrived < needed) return Status::OK();  // Wait for siblings.
      c->join_arrivals[node->name] = 0;
      return Flow(c, node->targets[0]);
    }
  }
  return Status::Internal("unknown node kind");
}

Result<std::vector<std::string>> GraphEngine::PendingActivities(
    size_t case_id) const {
  WFRM_ASSIGN_OR_RETURN(const Case* c, FindCase(case_id));
  std::vector<std::string> out;
  for (const Token& t : c->tokens) {
    if (!t.open) out.push_back(t.node);
  }
  return out;
}

Result<WorkItem> GraphEngine::StartActivity(size_t case_id,
                                            const std::string& node_name) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  if (c->state != CaseState::kRunning) {
    return Status::InvalidArgument("case " + std::to_string(case_id) +
                                   " is not running");
  }
  Token* token = nullptr;
  for (Token& t : c->tokens) {
    if (t.node == node_name && !t.open) {
      token = &t;
      break;
    }
  }
  if (token == nullptr) {
    return Status::NotFound("case " + std::to_string(case_id) +
                            " has no idle token at activity '" + node_name +
                            "'");
  }
  const ProcessGraph::Node* node = c->graph->Find(node_name);
  WFRM_ASSIGN_OR_RETURN(std::string rql,
                        InstantiateTemplate(node->rql_template, c->data));
  // Resource exhaustion is transient: the token stays pending.
  WFRM_ASSIGN_OR_RETURN(core::Lease lease, rm_->Acquire(rql));
  WorkItem item;
  item.case_id = case_id;
  item.step_name = node_name;
  item.resource = lease.resource;
  item.lease = lease;
  token->open = item;
  return item;
}

Status GraphEngine::CompleteActivity(size_t case_id,
                                     const std::string& node_name) {
  WFRM_ASSIGN_OR_RETURN(Case * c, FindCase(case_id));
  size_t index = c->tokens.size();
  for (size_t i = 0; i < c->tokens.size(); ++i) {
    if (c->tokens[i].node == node_name && c->tokens[i].open) {
      index = i;
      break;
    }
  }
  if (index == c->tokens.size()) {
    return Status::NotFound("case " + std::to_string(case_id) +
                            " has no running work item at '" + node_name +
                            "'");
  }
  WorkItem item = *c->tokens[index].open;
  WFRM_RETURN_NOT_OK(rm_->Release(item.lease));
  item.completed = true;
  history_.push_back(item);

  const ProcessGraph::Node* node = c->graph->Find(node_name);
  std::string next = node->targets[0];
  c->tokens.erase(c->tokens.begin() + static_cast<ptrdiff_t>(index));
  Status st = Flow(c, next);
  if (!st.ok()) {
    c->state = CaseState::kFailed;
    return st;
  }
  bool any_open = false;
  for (const Token& t : c->tokens) {
    if (t.open) any_open = true;
  }
  (void)any_open;
  if (c->tokens.empty()) c->state = CaseState::kCompleted;
  return Status::OK();
}

Result<CaseState> GraphEngine::GetState(size_t case_id) const {
  WFRM_ASSIGN_OR_RETURN(const Case* c, FindCase(case_id));
  return c->state;
}

}  // namespace wfrm::wf
