#include "wf/worklist.h"

#include <algorithm>

namespace wfrm::wf {

Result<size_t> WorkList::CreateOffer(std::string_view rql) {
  WFRM_ASSIGN_OR_RETURN(core::QueryOutcome outcome, rm_->Submit(rql));
  if (!outcome.ok()) return outcome.status;
  struct Offer offer;
  offer.id = offers_.size();
  offer.rql = std::string(rql);
  offer.candidates = std::move(outcome.candidates);
  if (options_.offer_ttl_micros > 0) {
    offer.expires_at_micros = clock().NowMicros() + options_.offer_ttl_micros;
  }
  offers_.push_back(std::move(offer));
  return offers_.back().id;
}

std::vector<size_t> WorkList::WorkListFor(
    const org::ResourceRef& resource) const {
  std::vector<size_t> out;
  for (const Offer& offer : offers_) {
    if (offer.state != OfferState::kOpen) continue;
    for (const org::ResourceRef& c : offer.candidates) {
      if (c == resource) {
        out.push_back(offer.id);
        break;
      }
    }
  }
  return out;
}

Result<WorkList::Offer*> WorkList::FindOpen(size_t offer_id) {
  if (offer_id >= offers_.size()) {
    return Status::NotFound("unknown offer " + std::to_string(offer_id));
  }
  return &offers_[offer_id];
}

Status WorkList::Claim(size_t offer_id, const org::ResourceRef& resource) {
  WFRM_ASSIGN_OR_RETURN(Offer * offer, FindOpen(offer_id));
  if (offer->state != OfferState::kOpen) {
    return Status::InvalidArgument("offer " + std::to_string(offer_id) +
                                   " is not open");
  }
  if (offer->expires_at_micros <= clock().NowMicros()) {
    offer->state = OfferState::kExpired;
    return Status::InvalidArgument("offer " + std::to_string(offer_id) +
                                   " has expired");
  }
  bool candidate = std::any_of(
      offer->candidates.begin(), offer->candidates.end(),
      [&](const org::ResourceRef& c) { return c == resource; });
  if (!candidate) {
    return Status::PolicyViolation(
        resource.ToString() + " is not in the policy-compliant candidate "
        "set of offer " + std::to_string(offer_id));
  }
  // Allocation is the atomic claim arbiter: under contention exactly one
  // claimant wins. The lease is the claim's liveness receipt.
  WFRM_ASSIGN_OR_RETURN(core::Lease lease, rm_->AllocateLease(resource));
  offer->state = OfferState::kClaimed;
  offer->claimant = resource;
  offer->claim_lease = lease;
  return Status::OK();
}

Status WorkList::Complete(size_t offer_id) {
  WFRM_ASSIGN_OR_RETURN(Offer * offer, FindOpen(offer_id));
  if (offer->state != OfferState::kClaimed) {
    return Status::InvalidArgument("offer " + std::to_string(offer_id) +
                                   " is not claimed");
  }
  // Release by lease: a lapsed claim must not free a newer grant.
  WFRM_RETURN_NOT_OK(rm_->Release(offer->claim_lease));
  offer->state = OfferState::kCompleted;
  return Status::OK();
}

Status WorkList::Cancel(size_t offer_id) {
  WFRM_ASSIGN_OR_RETURN(Offer * offer, FindOpen(offer_id));
  if (offer->state == OfferState::kCompleted ||
      offer->state == OfferState::kCancelled ||
      offer->state == OfferState::kExpired) {
    return Status::InvalidArgument("offer " + std::to_string(offer_id) +
                                   " already finished");
  }
  if (offer->state == OfferState::kClaimed) {
    // A lapsed lease means nothing is held any more — that is fine for
    // a cancellation.
    Status released = rm_->Release(offer->claim_lease);
    if (!released.ok() && !released.IsNotAllocated()) return released;
  }
  offer->state = OfferState::kCancelled;
  return Status::OK();
}

Status WorkList::Refresh(size_t offer_id) {
  WFRM_ASSIGN_OR_RETURN(Offer * offer, FindOpen(offer_id));
  if (offer->state != OfferState::kOpen) {
    return Status::InvalidArgument("only open offers can be refreshed");
  }
  WFRM_ASSIGN_OR_RETURN(core::QueryOutcome outcome, rm_->Submit(offer->rql));
  if (!outcome.ok()) {
    // Nothing available right now: the offer stays open with an empty
    // candidate set rather than failing.
    offer->candidates.clear();
    return Status::OK();
  }
  offer->candidates = std::move(outcome.candidates);
  return Status::OK();
}

size_t WorkList::RecoverLapsedClaims() {
  size_t recovered = 0;
  for (Offer& offer : offers_) {
    if (offer.state != OfferState::kClaimed) continue;
    bool claimant_down = rm_->IsFailed(*offer.claimant);
    bool lease_lapsed = !rm_->IsLeaseActive(offer.claim_lease);
    if (!claimant_down && !lease_lapsed) continue;
    // Reclaim whatever the lapsed claim still holds; kNotAllocated just
    // means a reap (or a newer grant) got there first.
    Status released = rm_->Release(offer.claim_lease);
    (void)released;
    offer.state = OfferState::kOpen;
    offer.claimant.reset();
    offer.claim_lease = core::Lease{};
    ++offer.times_recovered;
    // Auto-refresh: the re-offered candidate set must reflect current
    // availability and health (a down ex-claimant never reappears).
    (void)Refresh(offer.id);
    ++recovered;
  }
  return recovered;
}

size_t WorkList::ExpireOffers() {
  const int64_t now = clock().NowMicros();
  size_t expired = 0;
  for (Offer& offer : offers_) {
    if (offer.state != OfferState::kOpen) continue;
    if (offer.expires_at_micros <= now) {
      offer.state = OfferState::kExpired;
      ++expired;
    }
  }
  return expired;
}

const WorkList::Offer* WorkList::Get(size_t offer_id) const {
  return offer_id < offers_.size() ? &offers_[offer_id] : nullptr;
}

size_t WorkList::num_open() const {
  size_t n = 0;
  for (const Offer& offer : offers_) {
    if (offer.state == OfferState::kOpen) ++n;
  }
  return n;
}

}  // namespace wfrm::wf
