#ifndef WFRM_WF_WORKLIST_H_
#define WFRM_WF_WORKLIST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/resource_manager.h"

namespace wfrm::wf {

struct WorkListOptions {
  /// Time source for offer expiry. nullptr = the resource manager's
  /// clock.
  Clock* clock = nullptr;
  /// Offers older than this are expired by ExpireOffers(). 0 = offers
  /// never expire.
  int64_t offer_ttl_micros = 0;
};

/// Pull-model work distribution, the way the WFMS products of the
/// paper's era (FlowMark, Staffware) assigned activities: instead of the
/// engine picking one resource, a work item is *offered* to every
/// qualified, policy-compliant, available candidate the resource
/// manager's pipeline returns; one of them then *claims* it, which
/// allocates that resource (under a lease) until completion.
///
/// The policy guarantee is preserved: the candidate set of an offer is
/// exactly a ResourceManager::Submit outcome, and claims are restricted
/// to that set.
///
/// Failure handling: a claimant whose lease lapses (expired and
/// reaped/superseded) or who is marked failed loses the claim —
/// RecoverLapsedClaims() reopens the offer and auto-Refresh()es its
/// candidate set against current availability and health, so the work
/// is re-offered to live, policy-compliant resources. ExpireOffers()
/// cancels open offers past their TTL.
class WorkList {
 public:
  explicit WorkList(core::ResourceManager* rm, WorkListOptions options = {})
      : rm_(rm), options_(options) {}

  enum class OfferState { kOpen, kClaimed, kCompleted, kCancelled,
                          kExpired };

  struct Offer {
    size_t id = 0;
    std::string rql;
    std::vector<org::ResourceRef> candidates;
    OfferState state = OfferState::kOpen;
    std::optional<org::ResourceRef> claimant;
    /// The claimant's allocation receipt (valid while kClaimed).
    core::Lease claim_lease;
    /// Absolute deadline for the *offer* (kNoExpiry = none).
    int64_t expires_at_micros = core::Lease::kNoExpiry;
    /// How many times this offer lost a claimant and was re-opened.
    size_t times_recovered = 0;
  };

  /// Runs the request through the RM pipeline and opens an offer to all
  /// candidates; returns the offer id. Fails (and opens nothing) when
  /// the pipeline finds no available resource at all.
  Result<size_t> CreateOffer(std::string_view rql);

  /// Open offers on which `resource` is a candidate — its work list.
  std::vector<size_t> WorkListFor(const org::ResourceRef& resource) const;

  /// Claims an open offer for `resource`: it must be in the candidate
  /// set and still be available (allocation happens here, atomically).
  /// A stale candidate (allocated elsewhere since the offer was cut)
  /// gets kResourceUnavailable and the offer stays open. Claiming an
  /// offer past its TTL expires it instead.
  Status Claim(size_t offer_id, const org::ResourceRef& resource);

  /// Completes a claimed offer, releasing the claimant. Fails with
  /// kNotAllocated when the claim lease already lapsed (the claim is no
  /// longer the claimant's to complete — RecoverLapsedClaims() will
  /// re-offer it).
  Status Complete(size_t offer_id);

  /// Cancels an offer; a claimed offer's claimant is released.
  Status Cancel(size_t offer_id);

  /// Re-runs the pipeline of an *open* offer, refreshing its candidate
  /// set against current availability (e.g. after all candidates went
  /// busy and some were released again — or substitution opened up).
  Status Refresh(size_t offer_id);

  /// Reopens every claimed offer whose claimant died (IsFailed) or
  /// whose claim lease is no longer active, releasing any leftover
  /// allocation and auto-refreshing the candidate set. Returns how many
  /// offers were recovered.
  size_t RecoverLapsedClaims();

  /// Expires open offers past their TTL; returns how many.
  size_t ExpireOffers();

  /// Offer lookup; nullptr when the id is unknown.
  const Offer* Get(size_t offer_id) const;

  size_t num_open() const;

 private:
  Result<Offer*> FindOpen(size_t offer_id);
  Clock& clock() const {
    return options_.clock ? *options_.clock : rm_->clock();
  }

  core::ResourceManager* rm_;
  WorkListOptions options_;
  std::vector<Offer> offers_;
};

}  // namespace wfrm::wf

#endif  // WFRM_WF_WORKLIST_H_
