#ifndef WFRM_WF_WORKLIST_H_
#define WFRM_WF_WORKLIST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/resource_manager.h"

namespace wfrm::wf {

/// Pull-model work distribution, the way the WFMS products of the
/// paper's era (FlowMark, Staffware) assigned activities: instead of the
/// engine picking one resource, a work item is *offered* to every
/// qualified, policy-compliant, available candidate the resource
/// manager's pipeline returns; one of them then *claims* it, which
/// allocates that resource until completion.
///
/// The policy guarantee is preserved: the candidate set of an offer is
/// exactly a ResourceManager::Submit outcome, and claims are restricted
/// to that set.
class WorkList {
 public:
  explicit WorkList(core::ResourceManager* rm) : rm_(rm) {}

  enum class OfferState { kOpen, kClaimed, kCompleted, kCancelled };

  struct Offer {
    size_t id = 0;
    std::string rql;
    std::vector<org::ResourceRef> candidates;
    OfferState state = OfferState::kOpen;
    std::optional<org::ResourceRef> claimant;
  };

  /// Runs the request through the RM pipeline and opens an offer to all
  /// candidates; returns the offer id. Fails (and opens nothing) when
  /// the pipeline finds no available resource at all.
  Result<size_t> CreateOffer(std::string_view rql);

  /// Open offers on which `resource` is a candidate — its work list.
  std::vector<size_t> WorkListFor(const org::ResourceRef& resource) const;

  /// Claims an open offer for `resource`: it must be in the candidate
  /// set and still be available (allocation happens here, atomically).
  /// A stale candidate (allocated elsewhere since the offer was cut)
  /// gets kResourceUnavailable and the offer stays open.
  Status Claim(size_t offer_id, const org::ResourceRef& resource);

  /// Completes a claimed offer, releasing the claimant.
  Status Complete(size_t offer_id);

  /// Cancels an offer; a claimed offer's claimant is released.
  Status Cancel(size_t offer_id);

  /// Re-runs the pipeline of an *open* offer, refreshing its candidate
  /// set against current availability (e.g. after all candidates went
  /// busy and some were released again — or substitution opened up).
  Status Refresh(size_t offer_id);

  /// Offer lookup; nullptr when the id is unknown.
  const Offer* Get(size_t offer_id) const;

  size_t num_open() const;

 private:
  Result<Offer*> FindOpen(size_t offer_id);

  core::ResourceManager* rm_;
  std::vector<Offer> offers_;
};

}  // namespace wfrm::wf

#endif  // WFRM_WF_WORKLIST_H_
