#ifndef WFRM_COMMON_RESULT_H_
#define WFRM_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace wfrm {

/// Value-or-Status, in the style of arrow::Result.
///
/// A Result<T> holds either a T or a non-OK Status. Construction from a
/// Status with code kOk is a programming error (asserted).
template <typename T>
class Result {
 public:
  using ValueType = T;

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok());
  }

  /// Constructs a successful result.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Accesses the held value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }

  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` on failure.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

/// Evaluates an expression producing a Result; on failure returns the
/// status from the enclosing function, otherwise assigns the value to
/// `lhs` (which must be a declaration or assignable lvalue).
#define WFRM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#define WFRM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define WFRM_ASSIGN_OR_RETURN_NAME(a, b) WFRM_ASSIGN_OR_RETURN_CONCAT(a, b)

#define WFRM_ASSIGN_OR_RETURN(lhs, expr) \
  WFRM_ASSIGN_OR_RETURN_IMPL(            \
      WFRM_ASSIGN_OR_RETURN_NAME(_wfrm_result_, __LINE__), lhs, expr)

}  // namespace wfrm

#endif  // WFRM_COMMON_RESULT_H_
