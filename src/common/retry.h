#ifndef WFRM_COMMON_RETRY_H_
#define WFRM_COMMON_RETRY_H_

#include <cstdint>
#include <random>

namespace wfrm {

/// How a computed backoff delay is randomized to decorrelate concurrent
/// retriers.
enum class JitterMode {
  /// Scale the exponential series by a uniform factor in
  /// [1-jitter, 1+jitter]. Concurrent retriers stay loosely in phase:
  /// after a shared failure their k-th delays still cluster around the
  /// same exponential term.
  kMultiplicative,
  /// Decorrelated jitter (AWS style): each delay is drawn uniformly
  /// from [initial_backoff, min(3 * previous_delay, max_backoff)], so
  /// consecutive draws wander apart instead of clustering. N routers
  /// retrying against a freshly promoted shard spread their probes
  /// across the whole window instead of thundering in lockstep. Every
  /// delay is bounded by [initial_backoff, max_backoff]; the `jitter`
  /// field is ignored.
  kDecorrelated,
};

/// Retry behaviour for transient failures (kResourceUnavailable):
/// exponential backoff with multiplicative jitter, capped. Delays are
/// *computed* here and *spent* against an injected Clock, so a
/// SimulatedClock replays a retry schedule instantly and
/// deterministically.
struct RetryPolicy {
  /// Total tries including the first. 1 disables retrying; 0 is
  /// normalized to 1.
  int max_attempts = 3;
  /// Delay before the second try.
  int64_t initial_backoff_micros = 1000;
  /// Growth factor between consecutive delays.
  double backoff_multiplier = 2.0;
  /// Upper bound on any single delay.
  int64_t max_backoff_micros = 1'000'000;
  /// Each delay is scaled by a uniform factor in [1-jitter, 1+jitter]
  /// to decorrelate concurrent retriers. 0 = fully deterministic
  /// schedule. Only used by JitterMode::kMultiplicative.
  double jitter = 0.1;
  /// Delay randomization scheme; see JitterMode.
  JitterMode jitter_mode = JitterMode::kMultiplicative;

  /// Decorrelated-jitter policy for a fleet of retriers hitting one
  /// recovering backend (the shard router's default).
  static RetryPolicy Decorrelated(int max_attempts = 4,
                                  int64_t initial_micros = 1000,
                                  int64_t max_micros = 1'000'000) {
    RetryPolicy p;
    p.max_attempts = max_attempts;
    p.initial_backoff_micros = initial_micros;
    p.max_backoff_micros = max_micros;
    p.jitter_mode = JitterMode::kDecorrelated;
    return p;
  }

  /// No retrying at all: fail on the first transient error (the seed's
  /// behaviour).
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Stateful backoff series for one logical operation. Seeded, so two
/// Backoff instances with the same policy and seed produce identical
/// delay sequences.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy, uint64_t seed = 42);

  /// True while tries remain; `attempt` is 0-based (0 = the first try).
  bool ShouldRetry(int attempt) const;

  /// Deadline-aware variant: additionally false when even the shortest
  /// possible next delay would land at or past `deadline_micros` (an
  /// absolute time on the caller's clock, compared against
  /// `now_micros`). A retry that cannot start before the caller's
  /// deadline only burns backoff sleep on a result nobody will read.
  bool ShouldRetry(int attempt, int64_t now_micros,
                   int64_t deadline_micros) const;

  /// The delay to spend before the next try. Advances the series.
  int64_t NextDelayMicros();

  /// Lower bound on what the next NextDelayMicros() could return,
  /// without advancing the series. Used by the deadline-aware
  /// ShouldRetry: jittered draws are random, but never below this.
  int64_t MinNextDelayMicros() const;

 private:
  RetryPolicy policy_;
  int64_t next_backoff_micros_;
  /// Last delay handed out (decorrelated mode draws from a window that
  /// tracks it); starts at the initial backoff.
  int64_t prev_delay_micros_;
  std::mt19937_64 rng_;
};

}  // namespace wfrm

#endif  // WFRM_COMMON_RETRY_H_
