#include "common/circuit_breaker.h"

#include <algorithm>

namespace wfrm {

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()) {
  if (options_.probe_timeout_micros <= 0) {
    options_.probe_timeout_micros = options_.open_micros;
  }
  options_.success_threshold = std::max(options_.success_threshold, 1);
}

void CircuitBreaker::TripLocked(int64_t now) {
  state_ = BreakerState::kOpen;
  opened_at_micros_ = now;
  probe_in_flight_ = false;
  probe_successes_ = 0;
  failures_in_window_ = 0;
  ++opens_;
}

bool CircuitBreaker::Allow() {
  if (options_.failure_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMicros();
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_micros_ < options_.open_micros) {
        ++fast_failures_;
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      probe_in_flight_ = true;
      probe_started_micros_ = now;
      probe_successes_ = 0;
      return true;
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_ ||
          now - probe_started_micros_ >= options_.probe_timeout_micros) {
        // Either the last probe reported (and more successes are still
        // needed) or it vanished (shed before reaching the backend);
        // admit another.
        probe_in_flight_ = true;
        probe_started_micros_ = now;
        return true;
      }
      ++fast_failures_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      failures_in_window_ = 0;
      break;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++probe_successes_ >= options_.success_threshold) {
        state_ = BreakerState::kClosed;
        failures_in_window_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A straggler from before the trip; ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  if (options_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t now = clock_->NowMicros();
  switch (state_) {
    case BreakerState::kClosed:
      if (failures_in_window_ == 0 ||
          now - window_start_micros_ > options_.window_micros) {
        window_start_micros_ = now;
        failures_in_window_ = 0;
      }
      if (++failures_in_window_ >= options_.failure_threshold) {
        TripLocked(now);
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: the backend is still sick.
      TripLocked(now);
      break;
    case BreakerState::kOpen:
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::retry_after_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != BreakerState::kOpen) return 0;
  const int64_t elapsed = clock_->NowMicros() - opened_at_micros_;
  return std::max<int64_t>(options_.open_micros - elapsed, 0);
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

uint64_t CircuitBreaker::fast_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_failures_;
}

}  // namespace wfrm
