#ifndef WFRM_COMMON_STRINGS_H_
#define WFRM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wfrm {

/// Lower-cases ASCII characters; used for keyword-insensitive parsing.
std::string AsciiToLower(std::string_view s);

/// Upper-cases ASCII characters.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality (RQL/PL keywords and identifiers).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on a delimiter character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// True if `s` begins with `prefix` (case sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// Case-insensitive hash/equality functors for keyword tables and
/// identifier-keyed maps.
struct CaseInsensitiveHash {
  size_t operator()(std::string_view s) const;
};
struct CaseInsensitiveEq {
  bool operator()(std::string_view a, std::string_view b) const {
    return EqualsIgnoreCase(a, b);
  }
};

}  // namespace wfrm

#endif  // WFRM_COMMON_STRINGS_H_
