#include "common/strings.h"

#include <cctype>

namespace wfrm {

std::string AsciiToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(s.substr(start));
      break;
    }
    pieces.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

size_t CaseInsensitiveHash::operator()(std::string_view s) const {
  // FNV-1a over lower-cased bytes.
  size_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<size_t>(
        std::tolower(static_cast<unsigned char>(c)));
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace wfrm
