#ifndef WFRM_COMMON_CLOCK_H_
#define WFRM_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace wfrm {

/// Time source for lease deadlines, retry backoff and fault schedules.
///
/// All timestamps are microseconds on an arbitrary monotonic epoch —
/// they order events and measure durations, they are not wall-clock
/// dates. Production code uses SystemClock; tests and benches inject a
/// SimulatedClock so failure scenarios replay deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time, microseconds, monotonic.
  virtual int64_t NowMicros() const = 0;

  /// Blocks (or, for a simulated clock, advances time) for `micros`.
  /// Negative durations are a no-op.
  virtual void SleepForMicros(int64_t micros) = 0;
};

/// std::chrono::steady_clock — monotonic, unaffected by wall-clock
/// adjustments. SleepForMicros really sleeps the calling thread.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepForMicros(int64_t micros) override;

  /// Process-wide shared instance (the default when no clock is
  /// injected).
  static SystemClock* Default();
};

/// A clock that only moves when told to. SleepForMicros advances the
/// clock instead of blocking, so retry backoff and lease expiry run at
/// full speed in tests. Thread-safe: concurrent readers and advancers
/// see a monotonically non-decreasing time.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_micros = 0)
      : now_micros_(start_micros) {}

  int64_t NowMicros() const override {
    return now_micros_.load(std::memory_order_acquire);
  }
  void SleepForMicros(int64_t micros) override { AdvanceMicros(micros); }

  /// Moves time forward by `micros` (negative: no-op — time never goes
  /// backwards).
  void AdvanceMicros(int64_t micros) {
    if (micros <= 0) return;
    now_micros_.fetch_add(micros, std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> now_micros_;
};

}  // namespace wfrm

#endif  // WFRM_COMMON_CLOCK_H_
