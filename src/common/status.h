#ifndef WFRM_COMMON_STATUS_H_
#define WFRM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace wfrm {

/// Machine-readable classification of an error.
///
/// The codes mirror the failure surfaces of the system: parsing of the
/// resource query / policy languages, catalog and schema resolution,
/// execution of relational plans, policy-base consistency, and resource
/// allocation outcomes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kTypeError,
  kExecutionError,
  kPolicyViolation,
  kNoQualifiedResource,
  kResourceUnavailable,
  /// Release/renew of a resource that is not currently allocated, or
  /// through a lease that is no longer current (expired+reaped, or the
  /// resource was re-acquired under a newer lease). Distinct from
  /// kNotFound so callers can tell a bookkeeping misuse from a missing
  /// entity.
  kNotAllocated,
  /// The store is serving reads but refusing mutations: the local WAL
  /// latched broken, the node is a standby replica, or the operator
  /// forced read-only mode. Distinct from kResourceUnavailable (a
  /// per-resource outcome) — this is a whole-store health state; callers
  /// should surface it rather than retry blindly.
  kDegraded,
  /// The durable home directory is already open in another process (or
  /// a stale lockfile from a dead owner could not be reclaimed). The
  /// caller should retry against a different home or after the other
  /// owner exits — retrying blindly will keep failing.
  kHomeLocked,
  /// The request's absolute deadline passed before the work completed —
  /// at admission, mid-pipeline, or while queued. The work performed so
  /// far was abandoned; nothing was granted. Retrying only helps with a
  /// fresh (later) deadline.
  kDeadlineExceeded,
  /// The request's cancellation token fired; the pipeline stopped at the
  /// next stage boundary. Nothing was granted.
  kCancelled,
  /// Load shedding: an admission queue was full, the router is
  /// draining, or a circuit breaker is open. The request was never
  /// admitted — retry after the hint in the message (the server is
  /// protecting itself, not reporting a per-resource outcome like
  /// kResourceUnavailable).
  kOverloaded,
  kUnimplemented,
  kInternal,
};

/// Returns the canonical lower-case name of a status code ("parse error").
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object: cheap to pass by value when OK
/// (single pointer), carries a code and message otherwise.
///
/// Public APIs in this library report failure through Status/Result rather
/// than exceptions.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status PolicyViolation(std::string msg) {
    return Status(StatusCode::kPolicyViolation, std::move(msg));
  }
  static Status NoQualifiedResource(std::string msg) {
    return Status(StatusCode::kNoQualifiedResource, std::move(msg));
  }
  static Status ResourceUnavailable(std::string msg) {
    return Status(StatusCode::kResourceUnavailable, std::move(msg));
  }
  static Status NotAllocated(std::string msg) {
    return Status(StatusCode::kNotAllocated, std::move(msg));
  }
  static Status Degraded(std::string msg) {
    return Status(StatusCode::kDegraded, std::move(msg));
  }
  static Status HomeLocked(std::string msg) {
    return Status(StatusCode::kHomeLocked, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsPolicyViolation() const {
    return code() == StatusCode::kPolicyViolation;
  }
  bool IsNoQualifiedResource() const {
    return code() == StatusCode::kNoQualifiedResource;
  }
  bool IsResourceUnavailable() const {
    return code() == StatusCode::kResourceUnavailable;
  }
  bool IsNotAllocated() const { return code() == StatusCode::kNotAllocated; }
  bool IsDegraded() const { return code() == StatusCode::kDegraded; }
  bool IsHomeLocked() const { return code() == StatusCode::kHomeLocked; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  /// Renders "<code>: <message>" (or "OK").
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null means OK; shared so Status copies are cheap and value-like.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates an expression producing a Status and returns it from the
/// enclosing function if it is not OK.
#define WFRM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::wfrm::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace wfrm

#endif  // WFRM_COMMON_STATUS_H_
