#include "common/status.h"

namespace wfrm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kExecutionError:
      return "execution error";
    case StatusCode::kPolicyViolation:
      return "policy violation";
    case StatusCode::kNoQualifiedResource:
      return "no qualified resource";
    case StatusCode::kResourceUnavailable:
      return "resource unavailable";
    case StatusCode::kNotAllocated:
      return "not allocated";
    case StatusCode::kDegraded:
      return "degraded";
    case StatusCode::kHomeLocked:
      return "home locked";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace wfrm
