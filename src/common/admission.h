#ifndef WFRM_COMMON_ADMISSION_H_
#define WFRM_COMMON_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/request_context.h"
#include "common/status.h"

namespace wfrm {

struct AdmissionOptions {
  /// Maximum queued (not yet running) tasks across all classes; pushes
  /// beyond it fail typed kOverloaded. 0 = unbounded (the seed's
  /// behaviour).
  size_t max_depth = 0;
  /// Smoothing for the service-time EWMA behind the retry-after hint.
  double service_ewma_alpha = 0.2;
  /// Floor for the retry-after hint, so an idle queue never suggests
  /// "retry in 0us".
  int64_t min_retry_after_micros = 1000;
  /// Deadlines of queued tasks are judged against this clock; null =
  /// SystemClock.
  Clock* clock = nullptr;
};

/// One admitted unit of work. Exactly one of `run` / `shed` is invoked:
/// `run` when the task is dequeued alive, `shed` (with the typed
/// reason) when it expired while queued. `shed` must be cheap and
/// non-blocking — it runs on the consumer thread.
struct AdmissionTask {
  std::function<void()> run;
  std::function<void(const Status&)> shed;
  int64_t deadline_micros = RequestContext::kNoDeadline;
  PriorityClass priority = PriorityClass::kInteractive;
};

/// Bounded two-class admission queue for one executor (DESIGN.md §16).
///
/// Admission: TryPush rejects with typed kOverloaded (carrying a
/// retry-after hint derived from queue depth x service-time EWMA) when
/// the queue is full or closed. Before rejecting, already-expired
/// entries are shed to make room — a backlog of dead work never keeps
/// live work out.
///
/// Dequeue order is highest class first, LIFO within class: under
/// overload the newest request is the one whose caller is most likely
/// still waiting, so serving it first maximizes goodput (adaptive
/// LIFO). Expired entries encountered at dequeue are shed — their
/// `shed` callback fires with kDeadlineExceeded — instead of run, so a
/// queue that fell behind stops burning service time on guaranteed
/// misses.
///
/// Close() stops admissions; consumers drain what was already admitted
/// and then Pop() returns nullopt. Thread-safe throughout.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionOptions options = {});

  /// Admits `task` or rejects it typed. On rejection the task's
  /// callbacks are NOT invoked — the rejection status is the caller's
  /// to deliver.
  Status TryPush(AdmissionTask task);

  /// Blocks for the next live task; sheds expired ones on the way.
  /// Returns nullopt once the queue is closed and drained.
  std::optional<AdmissionTask> Pop();

  /// Stops admissions (TryPush fails typed "draining"); queued tasks
  /// still drain through Pop.
  void Close();

  /// Feeds the retry-after hint: how long one dequeued task took to
  /// serve.
  void RecordServiceMicros(int64_t micros);

  /// What an overloaded rejection would suggest right now.
  int64_t RetryAfterHintMicros() const;

  size_t depth() const;
  bool closed() const;
  uint64_t pushed() const;
  uint64_t rejected_full() const;
  uint64_t rejected_closed() const;
  uint64_t shed_expired() const;

 private:
  /// Oldest-first scan of both classes for expired entries; sheds up to
  /// `limit` of them. Returns how many were shed. Caller holds mu_;
  /// shed callbacks run under the lock (they only fill reply slots).
  size_t ShedExpiredLocked(int64_t now, size_t limit);
  int64_t RetryAfterHintLocked() const;

  AdmissionOptions options_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Index = PriorityClass value; back = newest.
  std::deque<AdmissionTask> classes_[2];
  bool closed_ = false;
  double ewma_service_micros_ = 0.0;
  uint64_t pushed_ = 0;
  uint64_t rejected_full_ = 0;
  uint64_t rejected_closed_ = 0;
  uint64_t shed_expired_ = 0;
};

}  // namespace wfrm

#endif  // WFRM_COMMON_ADMISSION_H_
