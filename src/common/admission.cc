#include "common/admission.h"

#include <algorithm>
#include <utility>

namespace wfrm {

namespace {
constexpr size_t kNumClasses = 2;
}  // namespace

AdmissionQueue::AdmissionQueue(AdmissionOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()) {
  options_.service_ewma_alpha =
      std::clamp(options_.service_ewma_alpha, 0.01, 1.0);
}

size_t AdmissionQueue::ShedExpiredLocked(int64_t now, size_t limit) {
  size_t shed = 0;
  // Lowest class first, oldest first: the work least likely to still
  // have a waiting caller goes first.
  for (size_t c = kNumClasses; c-- > 0 && shed < limit;) {
    std::deque<AdmissionTask>& q = classes_[c];
    for (auto it = q.begin(); it != q.end() && shed < limit;) {
      if (it->deadline_micros <= now) {
        if (it->shed) {
          it->shed(Status::DeadlineExceeded(
              "request expired while queued for admission"));
        }
        it = q.erase(it);
        ++shed;
      } else {
        ++it;
      }
    }
  }
  shed_expired_ += shed;
  return shed;
}

int64_t AdmissionQueue::RetryAfterHintLocked() const {
  const size_t depth = classes_[0].size() + classes_[1].size();
  const auto backlog = static_cast<int64_t>(
      ewma_service_micros_ * static_cast<double>(depth + 1));
  return std::max(backlog, options_.min_retry_after_micros);
}

Status AdmissionQueue::TryPush(AdmissionTask task) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    ++rejected_closed_;
    return Status::Overloaded("queue draining; not accepting new work");
  }
  if (options_.max_depth > 0) {
    size_t depth = classes_[0].size() + classes_[1].size();
    if (depth >= options_.max_depth) {
      // A full queue may be full of corpses: shed expired entries
      // before refusing live work.
      depth -= ShedExpiredLocked(clock_->NowMicros(),
                                 depth - options_.max_depth + 1);
    }
    if (depth >= options_.max_depth) {
      ++rejected_full_;
      return Status::Overloaded(
          "admission queue full (" + std::to_string(depth) + "/" +
          std::to_string(options_.max_depth) + " deep); retry after ~" +
          std::to_string(RetryAfterHintLocked()) + "us");
    }
  }
  classes_[static_cast<size_t>(task.priority)].push_back(std::move(task));
  ++pushed_;
  lock.unlock();
  cv_.notify_one();
  return Status::OK();
}

std::optional<AdmissionTask> AdmissionQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] {
      return closed_ || !classes_[0].empty() || !classes_[1].empty();
    });
    const int64_t now = clock_->NowMicros();
    // Highest class first, newest (back) first within it.
    for (auto& q : classes_) {
      while (!q.empty()) {
        AdmissionTask task = std::move(q.back());
        q.pop_back();
        if (task.deadline_micros <= now) {
          ++shed_expired_;
          if (task.shed) {
            task.shed(Status::DeadlineExceeded(
                "request expired while queued for admission"));
          }
          continue;
        }
        return task;
      }
    }
    if (closed_) return std::nullopt;
    // Everything present was expired and shed; wait for more work.
  }
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void AdmissionQueue::RecordServiceMicros(int64_t micros) {
  if (micros < 0) micros = 0;
  std::lock_guard<std::mutex> lock(mu_);
  ewma_service_micros_ =
      ewma_service_micros_ == 0.0
          ? static_cast<double>(micros)
          : options_.service_ewma_alpha * static_cast<double>(micros) +
                (1.0 - options_.service_ewma_alpha) * ewma_service_micros_;
}

int64_t AdmissionQueue::RetryAfterHintMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RetryAfterHintLocked();
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return classes_[0].size() + classes_[1].size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t AdmissionQueue::pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

uint64_t AdmissionQueue::rejected_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_full_;
}

uint64_t AdmissionQueue::rejected_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_closed_;
}

uint64_t AdmissionQueue::shed_expired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_expired_;
}

}  // namespace wfrm
