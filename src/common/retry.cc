#include "common/retry.h"

#include <algorithm>

namespace wfrm {

Backoff::Backoff(const RetryPolicy& policy, uint64_t seed)
    : policy_(policy),
      next_backoff_micros_(policy.initial_backoff_micros),
      prev_delay_micros_(policy.initial_backoff_micros),
      rng_(seed) {
  policy_.max_attempts = std::max(policy_.max_attempts, 1);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  if (policy_.backoff_multiplier < 1.0) policy_.backoff_multiplier = 1.0;
}

bool Backoff::ShouldRetry(int attempt) const {
  return attempt + 1 < policy_.max_attempts;
}

bool Backoff::ShouldRetry(int attempt, int64_t now_micros,
                          int64_t deadline_micros) const {
  if (!ShouldRetry(attempt)) return false;
  return now_micros + MinNextDelayMicros() < deadline_micros;
}

int64_t Backoff::MinNextDelayMicros() const {
  if (policy_.jitter_mode == JitterMode::kDecorrelated) {
    // Every decorrelated draw comes from [initial, ...].
    return std::max<int64_t>(policy_.initial_backoff_micros, 0);
  }
  const int64_t base =
      std::min(next_backoff_micros_, policy_.max_backoff_micros);
  if (base <= 0) return 0;
  return static_cast<int64_t>(static_cast<double>(base) *
                              (1.0 - policy_.jitter));
}

int64_t Backoff::NextDelayMicros() {
  if (policy_.jitter_mode == JitterMode::kDecorrelated) {
    // Window [initial, min(3 * previous, cap)]: grows geometrically like
    // exponential backoff in expectation, but each draw is independent
    // of the retrier's attempt number, so a fleet that failed together
    // does not probe together.
    const int64_t lo = std::max<int64_t>(policy_.initial_backoff_micros, 0);
    const int64_t cap = std::max(policy_.max_backoff_micros, lo);
    int64_t hi = prev_delay_micros_ > cap / 3 ? cap : prev_delay_micros_ * 3;
    hi = std::clamp(hi, lo, cap);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    prev_delay_micros_ = dist(rng_);
    return prev_delay_micros_;
  }
  int64_t base = std::min(next_backoff_micros_, policy_.max_backoff_micros);
  // Grow the series for the following call, saturating at the cap to
  // avoid overflow on long retry chains.
  double grown = static_cast<double>(next_backoff_micros_) *
                 policy_.backoff_multiplier;
  next_backoff_micros_ =
      grown >= static_cast<double>(policy_.max_backoff_micros)
          ? policy_.max_backoff_micros
          : static_cast<int64_t>(grown);
  if (base <= 0) return 0;
  if (policy_.jitter == 0.0) return base;
  std::uniform_real_distribution<double> dist(1.0 - policy_.jitter,
                                              1.0 + policy_.jitter);
  return static_cast<int64_t>(static_cast<double>(base) * dist(rng_));
}

}  // namespace wfrm
