#include "common/clock.h"

#include <chrono>
#include <thread>

namespace wfrm {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepForMicros(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

SystemClock* SystemClock::Default() {
  static SystemClock clock;
  return &clock;
}

}  // namespace wfrm
