#ifndef WFRM_COMMON_REQUEST_CONTEXT_H_
#define WFRM_COMMON_REQUEST_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/clock.h"
#include "common/status.h"

namespace wfrm {

/// Admission class of a request. Under overload the admission queues
/// serve interactive work before batch work, and shed within each class
/// newest-first (adaptive LIFO: when a queue is backed up, the oldest
/// entries are the ones whose callers have most likely already given
/// up).
enum class PriorityClass : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

inline const char* PriorityClassName(PriorityClass c) {
  return c == PriorityClass::kInteractive ? "interactive" : "batch";
}

/// Read side of a cancellation flag. Default-constructed tokens can
/// never fire — a RequestContext without a CancelSource behaves exactly
/// like the pre-context API. Copies share the flag; checking is one
/// acquire load.
class CancelToken {
 public:
  CancelToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag: the caller that may abandon a
/// request keeps the source and hands tokens into RequestContexts.
/// Cancel() is sticky and thread-safe; in-flight pipelines notice at
/// their next stage boundary.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Per-request overload-robustness envelope, threaded from the shard
/// router down through the durable store, the resource manager and the
/// policy rewrite pipeline: an absolute deadline (on the injected
/// clock), a cancellation token, and a priority class for admission.
///
/// The pipeline checks CheckAlive() at stage boundaries — admission,
/// after qualification fan-out, between enforced-query executions,
/// between substitution rounds, at queue dequeue — so an expired or
/// cancelled request stops burning CPU instead of completing uselessly.
/// A grant that was journaled before the deadline passed is still
/// returned: deadlines bound waiting, they never undo side effects.
///
/// Value type; cheap to copy. The default context has no deadline, no
/// token and interactive priority, and makes every CheckAlive() free.
struct RequestContext {
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  /// Absolute deadline on `clock` (not a duration).
  int64_t deadline_micros = kNoDeadline;
  CancelToken cancel;
  PriorityClass priority = PriorityClass::kInteractive;
  /// Clock the deadline is measured against; null = SystemClock. Inject
  /// the same SimulatedClock as the rest of the stack for deterministic
  /// expiry tests.
  Clock* clock = nullptr;

  /// A context expiring `budget_micros` from now on `clk`.
  static RequestContext WithDeadlineIn(
      Clock* clk, int64_t budget_micros,
      PriorityClass pc = PriorityClass::kInteractive) {
    RequestContext ctx;
    ctx.clock = clk;
    ctx.deadline_micros = NowOn(clk) + budget_micros;
    ctx.priority = pc;
    return ctx;
  }

  bool has_deadline() const { return deadline_micros != kNoDeadline; }
  bool cancelled() const { return cancel.cancelled(); }

  int64_t now_micros() const { return NowOn(clock); }

  bool expired() const {
    return has_deadline() && now_micros() >= deadline_micros;
  }
  bool expired_at(int64_t now) const {
    return has_deadline() && now >= deadline_micros;
  }

  /// Budget left, clamped at 0; kNoDeadline when none was set.
  int64_t remaining_micros() const {
    if (!has_deadline()) return kNoDeadline;
    const int64_t left = deadline_micros - now_micros();
    return left > 0 ? left : 0;
  }

  /// The stage-boundary check: OK while the request is worth working
  /// on, typed kCancelled / kDeadlineExceeded once it is not.
  /// Cancellation wins ties — it is the caller explicitly walking away.
  Status CheckAlive() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("request cancelled by caller");
    }
    if (expired()) {
      return Status::DeadlineExceeded("request deadline passed");
    }
    return Status::OK();
  }

 private:
  static int64_t NowOn(Clock* clk) {
    return (clk != nullptr ? clk : SystemClock::Default())->NowMicros();
  }
};

/// Null-tolerant stage-boundary check: pipelines take `const
/// RequestContext*` (null = no context, zero cost) and call this
/// between stages.
inline Status CheckRequestAlive(const RequestContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->CheckAlive();
}

}  // namespace wfrm

#endif  // WFRM_COMMON_REQUEST_CONTEXT_H_
