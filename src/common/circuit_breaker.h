#ifndef WFRM_COMMON_CIRCUIT_BREAKER_H_
#define WFRM_COMMON_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace wfrm {

enum class BreakerState : uint8_t {
  /// Healthy: requests flow, failures are counted within a sliding
  /// window.
  kClosed = 0,
  /// Tripped: requests fail fast until the cooldown elapses.
  kOpen = 1,
  /// Cooldown elapsed: one probe request is let through; its outcome
  /// decides between kClosed and kOpen.
  kHalfOpen = 2,
};

const char* BreakerStateName(BreakerState s);

struct CircuitBreakerOptions {
  /// Failures within `window_micros` that trip the breaker. 0 disables
  /// the breaker entirely (Allow always true).
  int failure_threshold = 5;
  /// Failure-counting window; a failure older than this no longer
  /// counts toward the threshold.
  int64_t window_micros = 1'000'000;
  /// Open-state cooldown before the first half-open probe.
  int64_t open_micros = 250'000;
  /// Consecutive half-open probe successes required to close.
  int success_threshold = 1;
  /// If a half-open probe neither succeeds nor fails within this long
  /// (e.g. it was shed before reaching the backend), another probe is
  /// admitted rather than wedging half-open forever. 0 = reuse
  /// open_micros.
  int64_t probe_timeout_micros = 0;
};

/// Per-backend circuit breaker (DESIGN.md §16): closed / open /
/// half-open, driven by the caller's own success/failure signals — in
/// the shard router those are group deadline misses and
/// degraded/offline refusals. A sick shard therefore costs a fast
/// typed refusal instead of its full deadline on every request.
///
/// Clock-injected and fully deterministic under SimulatedClock.
/// Thread-safe; Allow() in the open state is a mutex acquire plus a
/// clock read.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {},
                          Clock* clock = nullptr);

  /// True when a request may proceed. In the open state, flips to
  /// half-open once the cooldown elapsed and admits exactly one probe;
  /// callers that got `false` should fail fast with
  /// Status::Overloaded + retry_after_micros().
  bool Allow();

  /// Report the outcome of an allowed request.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  /// How long until the breaker would admit a probe; 0 when requests
  /// flow now.
  int64_t retry_after_micros() const;

  uint64_t opens() const;
  uint64_t fast_failures() const;

 private:
  void TripLocked(int64_t now);

  CircuitBreakerOptions options_;
  Clock* clock_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_in_window_ = 0;
  int64_t window_start_micros_ = 0;
  int64_t opened_at_micros_ = 0;
  bool probe_in_flight_ = false;
  int64_t probe_started_micros_ = 0;
  int probe_successes_ = 0;
  uint64_t opens_ = 0;
  uint64_t fast_failures_ = 0;
};

}  // namespace wfrm

#endif  // WFRM_COMMON_CIRCUIT_BREAKER_H_
