#ifndef WFRM_COMMON_CRC32_H_
#define WFRM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wfrm {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`,
/// continuing from `seed` (pass the previous result to checksum data in
/// pieces). Table-driven, no hardware assumptions — the WAL record
/// checksum (src/store) and nothing performance-critical.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace wfrm

#endif  // WFRM_COMMON_CRC32_H_
