#ifndef WFRM_ORG_RDL_PARSER_H_
#define WFRM_ORG_RDL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "org/org_model.h"

namespace wfrm::org {

/// The Resource Definition Language — the second of the three interfaces
/// of Figure 1 ("users can manipulate both meta and instance resource
/// data"). Statements are ';'-separated:
///
///   Define Resource Type <name> [Under <parent>]
///       [(attr Type {, attr Type})]
///   Define Activity Type <name> [Under <parent>]
///       [(attr Type {, attr Type})]
///   Define Relationship <name> (col Type {, col Type})
///   Define View <name> (col {, col}) As <select>
///   Insert Resource <type> <'id'> [(attr = const {, attr = const})]
///   Insert Into <relationship> (const {, const})
///
/// Attribute types: String | Int | Double | Bool (case-insensitive).
///
/// Statements execute against `org` in order; the first failure aborts
/// with its position context.
Status ExecuteRdl(std::string_view rdl_text, OrgModel* org);

}  // namespace wfrm::org

#endif  // WFRM_ORG_RDL_PARSER_H_
