#ifndef WFRM_ORG_ORG_MODEL_H_
#define WFRM_ORG_ORG_MODEL_H_

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "org/hierarchy.h"
#include "rel/database.h"
#include "rel/executor.h"

namespace wfrm::org {

/// Identifies a resource instance: its exact (most specific) type plus
/// its unique Id value.
struct ResourceRef {
  std::string type;
  std::string id;

  bool operator==(const ResourceRef& other) const {
    return EqualsIgnoreCase(type, other.type) && id == other.id;
  }
  bool operator<(const ResourceRef& other) const {
    std::string a = AsciiToLower(type), b = AsciiToLower(other.type);
    return a != b ? a < b : id < other.id;
  }
  std::string ToString() const { return type + ":" + id; }
};

/// The organization model of the resource manager (paper §2.2–2.3):
///
/// * a resource hierarchy whose types ("roles") each own a table of
///   resource instances (exact-type membership — a Programmer row lives
///   in Programmer, not in Engineer; super-type queries reach it through
///   the qualification rewriting, per §4.1);
/// * an activity hierarchy (no instances — activities are described in
///   RQL queries);
/// * relationship tables (Figure 3: BelongsTo, Manages, ...), plus views
///   over them (ReportsTo = BelongsTo ⋈ Manages).
///
/// Every resource table implicitly starts with an `Id STRING` column.
///
/// Thread safety: instance reads (GetResource, CountResources,
/// ResourceSchema) take a shared lock; definition and instance writers
/// take an exclusive one. Callers running ad-hoc queries against `db()`
/// concurrently with writers must hold `ReadLock()` for the duration
/// (the resource manager's query executor does).
class OrgModel {
 public:
  OrgModel();

  TypeHierarchy& resources() { return resources_; }
  const TypeHierarchy& resources() const { return resources_; }
  TypeHierarchy& activities() { return activities_; }
  const TypeHierarchy& activities() const { return activities_; }

  rel::Database& db() { return db_; }
  const rel::Database& db() const { return db_; }

  /// Declares a resource type and creates its instance table.
  Status DefineResourceType(const std::string& name, const std::string& parent,
                            std::vector<AttributeDef> attributes = {});

  /// Declares an activity type (attribute definitions only).
  Status DefineActivityType(const std::string& name, const std::string& parent,
                            std::vector<AttributeDef> attributes = {});

  /// Inserts a resource instance. `values` maps attribute name → value;
  /// missing attributes become NULL; unknown attributes fail. `id` must
  /// be unique within the type.
  Result<ResourceRef> AddResource(const std::string& type,
                                  const std::string& id,
                                  const std::map<std::string, rel::Value>& values);

  /// Fetches the full row of a resource; NotFound if absent.
  Result<rel::Row> GetResource(const ResourceRef& ref) const;

  /// The relational schema of a resource type's table (Id + inherited +
  /// own attributes).
  Result<rel::Schema> ResourceSchema(const std::string& type) const;

  /// Declares a relationship table, e.g. BelongsTo(Employee, Unit).
  Status DefineRelationship(const std::string& name,
                            std::vector<rel::Column> columns);

  /// Adds a tuple to a relationship.
  Status AddRelationshipTuple(const std::string& name, rel::Row row);

  /// Registers a view over relationships from SQL text (paper §2.2:
  /// "views may be created on relationships to facilitate query
  /// expressions").
  Status DefineView(const std::string& name,
                    std::vector<std::string> column_names,
                    std::string_view select_sql);

  /// Number of instances stored for `type` (exact type only).
  Result<size_t> CountResources(const std::string& type) const;

  /// Shared lock over the instance/relationship tables, for callers that
  /// read `db()` directly (query execution). Writers are excluded while
  /// any such lock is held; readers run concurrently.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(mu_);
  }

  /// Monotone edit counter over the two hierarchies — the part of the
  /// org model that policy retrieval depends on. Instance inserts do not
  /// bump it (they cannot change which policies are relevant).
  uint64_t hierarchy_version() const {
    return resources_.version() + activities_.version();
  }

 private:
  TypeHierarchy resources_;
  TypeHierarchy activities_;
  rel::Database db_;
  /// Guards db_ tables/views against concurrent definition or instance
  /// mutation. The hierarchies carry their own internal locks.
  mutable std::shared_mutex mu_;
};

}  // namespace wfrm::org

#endif  // WFRM_ORG_ORG_MODEL_H_
