#ifndef WFRM_ORG_RDL_DUMP_H_
#define WFRM_ORG_RDL_DUMP_H_

#include <string>

#include "common/result.h"
#include "org/org_model.h"

namespace wfrm::org {

/// Serializes an organization model back to an RDL script: type
/// definitions (parents before children), relationships, views, resource
/// instances and relationship tuples. Feeding the result to ExecuteRdl
/// on a fresh OrgModel reproduces the organization — the start-up
/// loading path the paper's §7 sketches for the in-memory variant.
Result<std::string> DumpRdl(const OrgModel& org);

}  // namespace wfrm::org

#endif  // WFRM_ORG_RDL_DUMP_H_
