#include "org/hierarchy.h"

namespace wfrm::org {

Result<size_t> TypeHierarchy::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown " + kind_ + " type '" + name + "'");
  }
  return it->second;
}

Status TypeHierarchy::AddType(const std::string& name,
                              const std::string& parent,
                              std::vector<AttributeDef> attributes) {
  if (name.empty()) {
    return Status::InvalidArgument("type name must not be empty");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (index_.find(name) != index_.end()) {
    return Status::AlreadyExists(kind_ + " type '" + name +
                                 "' already declared");
  }
  std::optional<size_t> parent_idx;
  if (!parent.empty()) {
    WFRM_ASSIGN_OR_RETURN(size_t p, IndexOf(parent));
    parent_idx = p;
  }
  // Check collisions between own attributes and the inherited set, and
  // among own attributes themselves.
  std::vector<AttributeDef> inherited;
  if (parent_idx) {
    WFRM_ASSIGN_OR_RETURN(inherited, AttributesOfImpl(nodes_[*parent_idx].name));
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    for (const AttributeDef& a : inherited) {
      if (EqualsIgnoreCase(a.name, attributes[i].name)) {
        return Status::InvalidArgument(
            "attribute '" + attributes[i].name + "' of " + kind_ + " type '" +
            name + "' collides with an inherited attribute");
      }
    }
    for (size_t j = i + 1; j < attributes.size(); ++j) {
      if (EqualsIgnoreCase(attributes[i].name, attributes[j].name)) {
        return Status::InvalidArgument("duplicate attribute '" +
                                       attributes[i].name + "' on type '" +
                                       name + "'");
      }
    }
  }

  Node node;
  node.name = name;
  node.parent = parent_idx;
  node.own_attributes = std::move(attributes);
  nodes_.push_back(std::move(node));
  size_t idx = nodes_.size() - 1;
  index_[name] = idx;
  if (parent_idx) nodes_[*parent_idx].children.push_back(idx);
  {
    // A new type extends its ancestors' descendant closures and gets
    // closures of its own: drop every memoized closure wholesale.
    std::lock_guard<std::mutex> memo_lock(memo_mu_);
    anc_memo_.clear();
    desc_memo_.clear();
  }
  version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

bool TypeHierarchy::Contains(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return index_.find(name) != index_.end();
}

Result<std::string> TypeHierarchy::Canonical(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
  return nodes_[idx].name;
}

Result<std::optional<std::string>> TypeHierarchy::ParentOf(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
  if (!nodes_[idx].parent) return std::optional<std::string>{};
  return std::optional<std::string>{nodes_[*nodes_[idx].parent].name};
}

std::vector<std::string> TypeHierarchy::AncestorsImpl(size_t idx) const {
  std::vector<std::string> out;
  std::optional<size_t> cur = idx;
  while (cur) {
    out.push_back(nodes_[*cur].name);
    cur = nodes_[*cur].parent;
  }
  return out;
}

Result<std::vector<std::string>> TypeHierarchy::Ancestors(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
  {
    std::lock_guard<std::mutex> memo_lock(memo_mu_);
    auto it = anc_memo_.find(idx);
    if (it != anc_memo_.end()) return it->second;
  }
  std::vector<std::string> out = AncestorsImpl(idx);
  {
    std::lock_guard<std::mutex> memo_lock(memo_mu_);
    anc_memo_.emplace(idx, out);
  }
  return out;
}

std::vector<std::string> TypeHierarchy::DescendantsImpl(size_t root) const {
  std::vector<std::string> out;
  std::vector<size_t> stack = {root};
  while (!stack.empty()) {
    size_t cur = stack.back();
    stack.pop_back();
    out.push_back(nodes_[cur].name);
    // Push children in reverse so preorder lists them left-to-right.
    const auto& ch = nodes_[cur].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

Result<std::vector<std::string>> TypeHierarchy::Descendants(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t root, IndexOf(name));
  {
    std::lock_guard<std::mutex> memo_lock(memo_mu_);
    auto it = desc_memo_.find(root);
    if (it != desc_memo_.end()) return it->second;
  }
  std::vector<std::string> out = DescendantsImpl(root);
  {
    std::lock_guard<std::mutex> memo_lock(memo_mu_);
    desc_memo_.emplace(root, out);
  }
  return out;
}

Result<std::vector<std::string>> TypeHierarchy::Children(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
  std::vector<std::string> out;
  for (size_t c : nodes_[idx].children) out.push_back(nodes_[c].name);
  return out;
}

Result<bool> TypeHierarchy::IsSubtypeOf(const std::string& sub,
                                        const std::string& super) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t sub_idx, IndexOf(sub));
  WFRM_ASSIGN_OR_RETURN(size_t super_idx, IndexOf(super));
  std::optional<size_t> cur = sub_idx;
  while (cur) {
    if (*cur == super_idx) return true;
    cur = nodes_[*cur].parent;
  }
  return false;
}

Result<std::vector<AttributeDef>> TypeHierarchy::AttributesOfImpl(
    const std::string& name) const {
  WFRM_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
  std::vector<std::string> chain = AncestorsImpl(idx);
  std::vector<AttributeDef> out;
  // Root-most first.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    size_t i = index_.at(*it);
    for (const AttributeDef& a : nodes_[i].own_attributes) {
      out.push_back(a);
    }
  }
  return out;
}

Result<std::vector<AttributeDef>> TypeHierarchy::AttributesOf(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return AttributesOfImpl(name);
}

Result<AttributeDef> TypeHierarchy::FindAttribute(
    const std::string& type, const std::string& attribute) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                        AttributesOfImpl(type));
  for (const AttributeDef& a : attrs) {
    if (EqualsIgnoreCase(a.name, attribute)) return a;
  }
  return Status::NotFound("attribute '" + attribute + "' not defined on " +
                          kind_ + " type '" + type + "' or its ancestors");
}

Result<size_t> TypeHierarchy::DepthOf(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(size_t idx, IndexOf(name));
  return AncestorsImpl(idx).size() - 1;
}

std::vector<std::string> TypeHierarchy::Roots() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (const Node& n : nodes_) {
    if (!n.parent) out.push_back(n.name);
  }
  return out;
}

std::vector<std::string> TypeHierarchy::AllTypes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) out.push_back(n.name);
  return out;
}

size_t TypeHierarchy::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return nodes_.size();
}

}  // namespace wfrm::org
