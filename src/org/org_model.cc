#include "org/org_model.h"

#include "rel/parser.h"

namespace wfrm::org {

OrgModel::OrgModel() : resources_("resource"), activities_("activity") {}

Status OrgModel::DefineResourceType(const std::string& name,
                                    const std::string& parent,
                                    std::vector<AttributeDef> attributes) {
  for (const AttributeDef& a : attributes) {
    if (EqualsIgnoreCase(a.name, "Id")) {
      return Status::InvalidArgument(
          "'Id' is implicit on every resource type and cannot be redeclared");
    }
  }
  WFRM_RETURN_NOT_OK(resources_.AddType(name, parent, std::move(attributes)));
  WFRM_ASSIGN_OR_RETURN(rel::Schema schema, ResourceSchema(name));
  std::unique_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(rel::Table * table, db_.CreateTable(name, schema));
  // Id is the access path for allocation bookkeeping and joins.
  WFRM_RETURN_NOT_OK(table->CreateHashIndex(name + "_by_id", {"Id"}));
  return Status::OK();
}

Status OrgModel::DefineActivityType(const std::string& name,
                                    const std::string& parent,
                                    std::vector<AttributeDef> attributes) {
  return activities_.AddType(name, parent, std::move(attributes));
}

Result<rel::Schema> OrgModel::ResourceSchema(const std::string& type) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                        resources_.AttributesOf(type));
  rel::Schema schema;
  schema.AddColumn({"Id", rel::DataType::kString});
  for (const AttributeDef& a : attrs) schema.AddColumn({a.name, a.type});
  return schema;
}

Result<ResourceRef> OrgModel::AddResource(
    const std::string& type, const std::string& id,
    const std::map<std::string, rel::Value>& values) {
  WFRM_ASSIGN_OR_RETURN(std::string canonical, resources_.Canonical(type));
  std::unique_lock<std::shared_mutex> lock(mu_);
  rel::Table* table = db_.GetTable(canonical);
  if (table == nullptr) {
    return Status::Internal("resource type '" + canonical +
                            "' has no backing table");
  }
  if (id.empty()) {
    return Status::InvalidArgument("resource id must not be empty");
  }
  // Uniqueness of Id within the type.
  const rel::HashIndex* by_id = table->hash_indexes()[0].get();
  if (!by_id->Lookup({rel::Value::String(id)}).empty()) {
    return Status::AlreadyExists("resource '" + canonical + ":" + id +
                                 "' already exists");
  }

  const rel::Schema& schema = table->schema();
  rel::Row row(schema.num_columns(), rel::Value::Null());
  row[0] = rel::Value::String(id);
  for (const auto& [attr, value] : values) {
    auto col = schema.FindColumn(attr);
    if (!col) {
      return Status::NotFound("attribute '" + attr + "' not defined on '" +
                              canonical + "'");
    }
    if (*col == 0) {
      return Status::InvalidArgument("'Id' is passed separately");
    }
    row[*col] = value;
  }
  WFRM_ASSIGN_OR_RETURN(rel::RowId rid, table->Insert(std::move(row)));
  (void)rid;
  return ResourceRef{canonical, id};
}

Result<rel::Row> OrgModel::GetResource(const ResourceRef& ref) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const rel::Table* table = db_.GetTable(ref.type);
  if (table == nullptr) {
    return Status::NotFound("unknown resource type '" + ref.type + "'");
  }
  const rel::HashIndex* by_id = table->hash_indexes()[0].get();
  std::vector<rel::RowId> rids = by_id->Lookup({rel::Value::String(ref.id)});
  for (rel::RowId rid : rids) {
    if (table->IsLive(rid)) return table->row(rid);
  }
  return Status::NotFound("resource '" + ref.ToString() + "' not found");
}

Status OrgModel::DefineRelationship(const std::string& name,
                                    std::vector<rel::Column> columns) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(rel::Table * table,
                        db_.CreateTable(name, rel::Schema(std::move(columns))));
  (void)table;
  return Status::OK();
}

Status OrgModel::AddRelationshipTuple(const std::string& name, rel::Row row) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  rel::Table* table = db_.GetTable(name);
  if (table == nullptr) {
    return Status::NotFound("unknown relationship '" + name + "'");
  }
  return table->Insert(std::move(row)).status();
}

Status OrgModel::DefineView(const std::string& name,
                            std::vector<std::string> column_names,
                            std::string_view select_sql) {
  WFRM_ASSIGN_OR_RETURN(rel::SelectPtr query,
                        rel::SqlParser::ParseSelect(select_sql));
  std::unique_lock<std::shared_mutex> lock(mu_);
  return db_.CreateView(name, std::move(column_names), std::move(query));
}

Result<size_t> OrgModel::CountResources(const std::string& type) const {
  WFRM_ASSIGN_OR_RETURN(std::string canonical, resources_.Canonical(type));
  std::shared_lock<std::shared_mutex> lock(mu_);
  const rel::Table* table = db_.GetTable(canonical);
  if (table == nullptr) {
    return Status::Internal("resource type without table: " + canonical);
  }
  return table->num_rows();
}

}  // namespace wfrm::org
