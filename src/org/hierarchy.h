#ifndef WFRM_ORG_HIERARCHY_H_
#define WFRM_ORG_HIERARCHY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/strings.h"
#include "rel/schema.h"

namespace wfrm::org {

/// Declared attribute of a resource or activity type.
struct AttributeDef {
  std::string name;
  rel::DataType type;
};

/// A classification hierarchy of types (paper §2.2, Figure 2): a forest
/// of named types where every type inherits all attributes of its
/// ancestors. Used twice — once for resource roles, once for activity
/// types. Names are case-insensitive.
///
/// Thread safety: reads (Ancestors, Descendants, FindAttribute, ...)
/// take a shared lock and may run concurrently; AddType takes an
/// exclusive lock. Ancestor/descendant closures are memoized per node —
/// the memo is invalidated (and `version()` bumped) by every AddType, so
/// downstream epoch-keyed caches can detect hierarchy edits.
class TypeHierarchy {
 public:
  explicit TypeHierarchy(std::string kind) : kind_(std::move(kind)) {}

  /// Movable for by-value construction in fixtures. Moving is NOT
  /// thread-safe — the source must have no concurrent users; the
  /// synchronization members and memos start fresh in the destination
  /// (the version counter carries over so epoch-keyed caches stay
  /// monotone).
  TypeHierarchy(TypeHierarchy&& other) noexcept
      : kind_(std::move(other.kind_)),
        nodes_(std::move(other.nodes_)),
        index_(std::move(other.index_)),
        version_(other.version_.load(std::memory_order_acquire)) {}
  TypeHierarchy& operator=(TypeHierarchy&& other) noexcept {
    if (this != &other) {
      kind_ = std::move(other.kind_);
      nodes_ = std::move(other.nodes_);
      index_ = std::move(other.index_);
      anc_memo_.clear();
      desc_memo_.clear();
      version_.store(other.version_.load(std::memory_order_acquire),
                     std::memory_order_release);
    }
    return *this;
  }

  /// Declares a type. `parent` empty declares a root. Fails if the name
  /// exists, the parent is unknown, or an own attribute collides with an
  /// inherited one.
  Status AddType(const std::string& name, const std::string& parent,
                 std::vector<AttributeDef> attributes = {});

  bool Contains(const std::string& name) const;

  /// Canonical spelling of a type name as declared.
  Result<std::string> Canonical(const std::string& name) const;

  /// Parent type, or nullopt for roots. Fails on unknown type.
  Result<std::optional<std::string>> ParentOf(const std::string& name) const;

  /// [name, parent, grandparent, ..., root]. Includes the type itself,
  /// matching the paper's Ancestor() in Figure 13. Memoized.
  Result<std::vector<std::string>> Ancestors(const std::string& name) const;

  /// All sub-types including the type itself, preorder. Memoized.
  Result<std::vector<std::string>> Descendants(const std::string& name) const;

  /// Direct children.
  Result<std::vector<std::string>> Children(const std::string& name) const;

  /// True iff `sub` is `super` or a descendant of it.
  Result<bool> IsSubtypeOf(const std::string& sub,
                           const std::string& super) const;

  /// All attributes visible on `name`: inherited first (root-most first),
  /// then own.
  Result<std::vector<AttributeDef>> AttributesOf(const std::string& name) const;

  /// Attribute lookup by (type, attribute name); searches the inheritance
  /// chain. NotFound if absent.
  Result<AttributeDef> FindAttribute(const std::string& type,
                                     const std::string& attribute) const;

  /// Depth of the type: roots have depth 0.
  Result<size_t> DepthOf(const std::string& name) const;

  std::vector<std::string> Roots() const;
  std::vector<std::string> AllTypes() const;
  size_t size() const;

  /// Monotone edit counter: bumped by every successful AddType. Feeds
  /// the policy layer's enforcement-cache epoch, so a hierarchy edit
  /// invalidates closures cached against the old shape.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Which hierarchy this is ("resource" / "activity"), for messages.
  const std::string& kind() const { return kind_; }

 private:
  struct Node {
    std::string name;
    std::optional<size_t> parent;
    std::vector<size_t> children;
    std::vector<AttributeDef> own_attributes;
  };

  // Unlocked implementations; callers hold mu_ (shared or exclusive).
  Result<size_t> IndexOf(const std::string& name) const;
  std::vector<std::string> AncestorsImpl(size_t idx) const;
  std::vector<std::string> DescendantsImpl(size_t idx) const;
  Result<std::vector<AttributeDef>> AttributesOfImpl(
      const std::string& name) const;

  std::string kind_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, size_t, CaseInsensitiveHash,
                     CaseInsensitiveEq>
      index_;

  /// Guards nodes_/index_: shared for reads, exclusive for AddType.
  mutable std::shared_mutex mu_;
  /// Guards the closure memos only. Lock order: mu_ before memo_mu_.
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<size_t, std::vector<std::string>> anc_memo_;
  mutable std::unordered_map<size_t, std::vector<std::string>> desc_memo_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace wfrm::org

#endif  // WFRM_ORG_HIERARCHY_H_
