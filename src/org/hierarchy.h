#ifndef WFRM_ORG_HIERARCHY_H_
#define WFRM_ORG_HIERARCHY_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/strings.h"
#include "rel/schema.h"

namespace wfrm::org {

/// Declared attribute of a resource or activity type.
struct AttributeDef {
  std::string name;
  rel::DataType type;
};

/// A classification hierarchy of types (paper §2.2, Figure 2): a forest
/// of named types where every type inherits all attributes of its
/// ancestors. Used twice — once for resource roles, once for activity
/// types. Names are case-insensitive.
class TypeHierarchy {
 public:
  explicit TypeHierarchy(std::string kind) : kind_(std::move(kind)) {}

  /// Declares a type. `parent` empty declares a root. Fails if the name
  /// exists, the parent is unknown, or an own attribute collides with an
  /// inherited one.
  Status AddType(const std::string& name, const std::string& parent,
                 std::vector<AttributeDef> attributes = {});

  bool Contains(const std::string& name) const {
    return index_.find(name) != index_.end();
  }

  /// Canonical spelling of a type name as declared.
  Result<std::string> Canonical(const std::string& name) const;

  /// Parent type, or nullopt for roots. Fails on unknown type.
  Result<std::optional<std::string>> ParentOf(const std::string& name) const;

  /// [name, parent, grandparent, ..., root]. Includes the type itself,
  /// matching the paper's Ancestor() in Figure 13.
  Result<std::vector<std::string>> Ancestors(const std::string& name) const;

  /// All sub-types including the type itself, preorder.
  Result<std::vector<std::string>> Descendants(const std::string& name) const;

  /// Direct children.
  Result<std::vector<std::string>> Children(const std::string& name) const;

  /// True iff `sub` is `super` or a descendant of it.
  Result<bool> IsSubtypeOf(const std::string& sub,
                           const std::string& super) const;

  /// All attributes visible on `name`: inherited first (root-most first),
  /// then own.
  Result<std::vector<AttributeDef>> AttributesOf(const std::string& name) const;

  /// Attribute lookup by (type, attribute name); searches the inheritance
  /// chain. NotFound if absent.
  Result<AttributeDef> FindAttribute(const std::string& type,
                                     const std::string& attribute) const;

  /// Depth of the type: roots have depth 0.
  Result<size_t> DepthOf(const std::string& name) const;

  std::vector<std::string> Roots() const;
  std::vector<std::string> AllTypes() const;
  size_t size() const { return nodes_.size(); }

  /// Which hierarchy this is ("resource" / "activity"), for messages.
  const std::string& kind() const { return kind_; }

 private:
  struct Node {
    std::string name;
    std::optional<size_t> parent;
    std::vector<size_t> children;
    std::vector<AttributeDef> own_attributes;
  };

  Result<size_t> IndexOf(const std::string& name) const;

  std::string kind_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, size_t, CaseInsensitiveHash,
                     CaseInsensitiveEq>
      index_;
};

}  // namespace wfrm::org

#endif  // WFRM_ORG_HIERARCHY_H_
