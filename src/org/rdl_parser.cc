#include "org/rdl_parser.h"

#include "rel/parser.h"
#include "rel/token.h"

namespace wfrm::org {

namespace {

Result<rel::DataType> ParseDataType(rel::TokenStream& ts) {
  if (ts.TryKeyword("string")) return rel::DataType::kString;
  if (ts.TryKeyword("int")) return rel::DataType::kInt;
  if (ts.TryKeyword("double")) return rel::DataType::kDouble;
  if (ts.TryKeyword("bool")) return rel::DataType::kBool;
  return ts.Error("expected a type (String, Int, Double or Bool)");
}

Result<std::vector<AttributeDef>> ParseAttributeList(rel::TokenStream& ts) {
  std::vector<AttributeDef> attrs;
  if (!ts.TrySymbol("(")) return attrs;
  do {
    AttributeDef attr;
    WFRM_ASSIGN_OR_RETURN(attr.name, ts.ExpectIdentifier("attribute name"));
    WFRM_ASSIGN_OR_RETURN(attr.type, ParseDataType(ts));
    attrs.push_back(std::move(attr));
  } while (ts.TrySymbol(","));
  WFRM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
  return attrs;
}

Result<rel::Value> ParseConstant(rel::TokenStream& ts) {
  const rel::Token& t = ts.Peek();
  switch (t.kind) {
    case rel::Token::Kind::kNumber:
    case rel::Token::Kind::kString: {
      rel::Value v = t.value;
      ts.Next();
      return v;
    }
    case rel::Token::Kind::kIdentifier:
      if (t.IsKeyword("true")) {
        ts.Next();
        return rel::Value::Bool(true);
      }
      if (t.IsKeyword("false")) {
        ts.Next();
        return rel::Value::Bool(false);
      }
      if (t.IsKeyword("null")) {
        ts.Next();
        return rel::Value::Null();
      }
      [[fallthrough]];
    default:
      if (t.IsSymbol("-")) {
        ts.Next();
        const rel::Token& n = ts.Peek();
        if (n.kind != rel::Token::Kind::kNumber) {
          return ts.Error("expected a number after '-'");
        }
        rel::Value v = n.value;
        ts.Next();
        return v.is_int() ? rel::Value::Int(-v.int_value())
                          : rel::Value::Double(-v.double_value());
      }
      return ts.Error("expected a constant");
  }
}

Status ExecuteDefine(rel::TokenStream& ts, OrgModel* org) {
  if (ts.TryKeyword("resource") || ts.Peek().IsKeyword("activity")) {
    bool is_resource = !ts.Peek().IsKeyword("activity");
    if (!is_resource) ts.Next();  // Consume 'activity'.
    WFRM_RETURN_NOT_OK(ts.ExpectKeyword("type"));
    WFRM_ASSIGN_OR_RETURN(std::string name, ts.ExpectIdentifier("type name"));
    std::string parent;
    if (ts.TryKeyword("under")) {
      WFRM_ASSIGN_OR_RETURN(parent, ts.ExpectIdentifier("parent type"));
    }
    WFRM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                          ParseAttributeList(ts));
    if (is_resource) {
      return org->DefineResourceType(name, parent, std::move(attrs));
    }
    return org->DefineActivityType(name, parent, std::move(attrs));
  }
  if (ts.TryKeyword("relationship")) {
    WFRM_ASSIGN_OR_RETURN(std::string name,
                          ts.ExpectIdentifier("relationship name"));
    WFRM_ASSIGN_OR_RETURN(std::vector<AttributeDef> attrs,
                          ParseAttributeList(ts));
    if (attrs.empty()) {
      return ts.Error("a relationship needs at least one column");
    }
    std::vector<rel::Column> columns;
    columns.reserve(attrs.size());
    for (AttributeDef& a : attrs) {
      columns.push_back({std::move(a.name), a.type});
    }
    return org->DefineRelationship(name, std::move(columns));
  }
  if (ts.TryKeyword("view")) {
    WFRM_ASSIGN_OR_RETURN(std::string name, ts.ExpectIdentifier("view name"));
    std::vector<std::string> columns;
    if (ts.TrySymbol("(")) {
      do {
        WFRM_ASSIGN_OR_RETURN(std::string col,
                              ts.ExpectIdentifier("column name"));
        columns.push_back(std::move(col));
      } while (ts.TrySymbol(","));
      WFRM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
    }
    WFRM_RETURN_NOT_OK(ts.ExpectKeyword("as"));
    WFRM_ASSIGN_OR_RETURN(rel::SelectPtr query,
                          rel::SqlParser::ParseSelectFrom(ts));
    return org->db().CreateView(name, std::move(columns), std::move(query));
  }
  return ts.Error(
      "expected 'Resource Type', 'Activity Type', 'Relationship' or "
      "'View' after Define");
}

Status ExecuteInsert(rel::TokenStream& ts, OrgModel* org) {
  if (ts.TryKeyword("resource")) {
    WFRM_ASSIGN_OR_RETURN(std::string type,
                          ts.ExpectIdentifier("resource type"));
    const rel::Token& t = ts.Peek();
    if (t.kind != rel::Token::Kind::kString) {
      return ts.Error("expected a quoted resource id");
    }
    std::string id = t.value.string_value();
    ts.Next();
    std::map<std::string, rel::Value> values;
    if (ts.TrySymbol("(")) {
      do {
        WFRM_ASSIGN_OR_RETURN(std::string attr,
                              ts.ExpectIdentifier("attribute name"));
        WFRM_RETURN_NOT_OK(ts.ExpectSymbol("="));
        WFRM_ASSIGN_OR_RETURN(rel::Value value, ParseConstant(ts));
        values[attr] = std::move(value);
      } while (ts.TrySymbol(","));
      WFRM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
    }
    return org->AddResource(type, id, values).status();
  }
  if (ts.TryKeyword("into")) {
    WFRM_ASSIGN_OR_RETURN(std::string name,
                          ts.ExpectIdentifier("relationship name"));
    WFRM_RETURN_NOT_OK(ts.ExpectSymbol("("));
    rel::Row row;
    do {
      WFRM_ASSIGN_OR_RETURN(rel::Value value, ParseConstant(ts));
      row.push_back(std::move(value));
    } while (ts.TrySymbol(","));
    WFRM_RETURN_NOT_OK(ts.ExpectSymbol(")"));
    return org->AddRelationshipTuple(name, std::move(row));
  }
  return ts.Error("expected 'Resource' or 'Into' after Insert");
}

}  // namespace

Status ExecuteRdl(std::string_view rdl_text, OrgModel* org) {
  WFRM_ASSIGN_OR_RETURN(rel::TokenStream ts, rel::TokenStream::Open(rdl_text));
  while (!ts.AtEnd()) {
    if (ts.TryKeyword("define")) {
      WFRM_RETURN_NOT_OK(ExecuteDefine(ts, org));
    } else if (ts.TryKeyword("insert")) {
      WFRM_RETURN_NOT_OK(ExecuteInsert(ts, org));
    } else {
      return ts.Error("expected an RDL statement (Define or Insert)");
    }
    if (!ts.TrySymbol(";")) break;
  }
  if (!ts.AtEnd()) {
    return ts.Error("unexpected trailing input after RDL statement");
  }
  return Status::OK();
}

}  // namespace wfrm::org
