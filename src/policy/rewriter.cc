#include "policy/rewriter.h"

#include <set>
#include <unordered_set>

#include "rel/parser.h"

namespace wfrm::policy {

namespace {

Result<rel::SelectPtr> SubstituteInSelect(const rel::SelectStatement& s,
                                          const rel::ParamMap& params);

Result<rel::ExprPtr> Substitute(const rel::Expr& e,
                                const rel::ParamMap& params) {
  using rel::Expr;
  switch (e.kind()) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumnRef:
      return e.Clone();
    case Expr::Kind::kParameter: {
      const auto& p = static_cast<const rel::ParameterExpr&>(e);
      auto it = params.find(p.name());
      if (it == params.end()) {
        return Status::InvalidArgument(
            "policy references activity attribute [" + p.name() +
            "] which the query's With clause does not bind");
      }
      return rel::MakeLiteral(it->second);
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const rel::BinaryExpr&>(e);
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr l, Substitute(b.left(), params));
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr r, Substitute(b.right(), params));
      return rel::MakeBinary(b.op(), std::move(l), std::move(r));
    }
    case Expr::Kind::kUnary: {
      const auto& u = static_cast<const rel::UnaryExpr&>(e);
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr operand,
                            Substitute(u.operand(), params));
      return rel::ExprPtr(
          std::make_unique<rel::UnaryExpr>(u.op(), std::move(operand)));
    }
    case Expr::Kind::kInList: {
      const auto& in = static_cast<const rel::InListExpr&>(e);
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr needle,
                            Substitute(in.needle(), params));
      std::vector<rel::ExprPtr> list;
      list.reserve(in.haystack().size());
      for (const auto& item : in.haystack()) {
        WFRM_ASSIGN_OR_RETURN(rel::ExprPtr x, Substitute(*item, params));
        list.push_back(std::move(x));
      }
      return rel::ExprPtr(std::make_unique<rel::InListExpr>(std::move(needle),
                                                            std::move(list)));
    }
    case Expr::Kind::kSubquery: {
      const auto& sub = static_cast<const rel::SubqueryExpr&>(e);
      WFRM_ASSIGN_OR_RETURN(rel::SelectPtr select,
                            SubstituteInSelect(sub.select(), params));
      return rel::ExprPtr(
          std::make_unique<rel::SubqueryExpr>(std::move(select)));
    }
    case Expr::Kind::kInSubquery: {
      const auto& in = static_cast<const rel::InSubqueryExpr&>(e);
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr needle,
                            Substitute(in.needle(), params));
      WFRM_ASSIGN_OR_RETURN(rel::SelectPtr select,
                            SubstituteInSelect(in.select(), params));
      return rel::ExprPtr(std::make_unique<rel::InSubqueryExpr>(
          std::move(needle), std::move(select)));
    }
    case Expr::Kind::kFunction: {
      const auto& fn = static_cast<const rel::FunctionExpr&>(e);
      std::vector<rel::ExprPtr> args;
      args.reserve(fn.args().size());
      for (const auto& arg : fn.args()) {
        WFRM_ASSIGN_OR_RETURN(rel::ExprPtr x, Substitute(*arg, params));
        args.push_back(std::move(x));
      }
      return rel::ExprPtr(std::make_unique<rel::FunctionExpr>(
          fn.name(), std::move(args), fn.star()));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<rel::SelectPtr> SubstituteInSelect(const rel::SelectStatement& s,
                                          const rel::ParamMap& params) {
  rel::SelectPtr out = s.Clone();
  if (out->where) {
    WFRM_ASSIGN_OR_RETURN(out->where, Substitute(*out->where, params));
  }
  for (auto& item : out->items) {
    if (item.expr) {
      WFRM_ASSIGN_OR_RETURN(item.expr, Substitute(*item.expr, params));
    }
  }
  if (out->connect_by) {
    WFRM_ASSIGN_OR_RETURN(out->connect_by->start_with,
                          Substitute(*out->connect_by->start_with, params));
    WFRM_ASSIGN_OR_RETURN(out->connect_by->connect,
                          Substitute(*out->connect_by->connect, params));
  }
  if (out->union_next) {
    WFRM_ASSIGN_OR_RETURN(out->union_next,
                          SubstituteInSelect(*out->union_next, params));
  }
  return out;
}

}  // namespace

Result<rel::ExprPtr> SubstituteParameters(const rel::Expr& expr,
                                          const rel::ParamMap& params) {
  return Substitute(expr, params);
}

Result<std::vector<rql::RqlQuery>> Rewriter::RewriteQualification(
    const rql::RqlQuery& query, obs::TraceSpan* parent) const {
  obs::ScopedSpan span(parent, "qualification");
  WFRM_ASSIGN_OR_RETURN(
      std::vector<std::string> qualified,
      store_->QualifiedSubtypes(query.resource(), query.activity()));
  if (span.get() != nullptr) {
    obs::Attr(span, "resource", query.resource());
    obs::Attr(span, "activity", query.activity());
    obs::Attr(span, "fanout", static_cast<int64_t>(qualified.size()));
    for (const std::string& type : qualified) {
      obs::Attr(span, "qualified_type", type);
    }
  }
  std::vector<rql::RqlQuery> out;
  out.reserve(qualified.size());
  for (const std::string& type : qualified) {
    rql::RqlQuery rewritten = query.Clone();
    rewritten.select->from[0].name = type;
    out.push_back(std::move(rewritten));
  }
  return out;
}

Result<rql::RqlQuery> Rewriter::RewriteRequirement(
    const rql::RqlQuery& query, obs::TraceSpan* parent) const {
  obs::ScopedSpan span(parent, "requirement");
  obs::Attr(span, "type", query.resource());
  rel::ParamMap params = query.spec.AsParams();
  WFRM_ASSIGN_OR_RETURN(std::vector<RelevantRequirement> relevant,
                        store_->RelevantRequirements(
                            query.resource(), query.activity(), params));

  rql::RqlQuery out = query.Clone();
  // Requirement policies are And-related (§3.2); DNF splitting shares a
  // group id and the WhereClause is applied once per source policy.
  std::unordered_set<int64_t> applied_groups;
  int64_t conjuncts = 0;
  for (const RelevantRequirement& req : relevant) {
    if (!applied_groups.insert(req.group).second) continue;
    if (req.where_clause.empty()) continue;
    WFRM_ASSIGN_OR_RETURN(rel::ExprPtr condition,
                          rel::SqlParser::ParseExpr(req.where_clause));
    WFRM_ASSIGN_OR_RETURN(condition, Substitute(*condition, params));
    if (span.get() != nullptr) {
      // The conjunct as enforced, i.e. after [ActivityAttr] substitution.
      obs::Attr(span, "policy",
                "PID " + std::to_string(req.pid) + " (group " +
                    std::to_string(req.group) + "): " + condition->ToString());
    }
    ++conjuncts;
    out.select->where =
        rel::AndExprs(std::move(out.select->where), std::move(condition));
  }
  if (span.get() != nullptr) {
    obs::Attr(span, "conjuncts", conjuncts);
    obs::Attr(span, "enforced_query", out.ToString());
  }
  return out;
}

Result<std::vector<rql::RqlQuery>> Rewriter::RewriteSubstitution(
    const rql::RqlQuery& query, obs::TraceSpan* parent) const {
  obs::ScopedSpan span(parent, "substitution");
  obs::Attr(span, "resource", query.resource());
  rel::ParamMap params = query.spec.AsParams();
  WFRM_ASSIGN_OR_RETURN(
      std::vector<RelevantSubstitution> relevant,
      store_->RelevantSubstitutions(query.resource(),
                                    query.select->where.get(),
                                    query.activity(), params));

  std::vector<rql::RqlQuery> out;
  std::set<std::string> seen;
  for (const RelevantSubstitution& sub : relevant) {
    rql::RqlQuery alternative = query.Clone();
    // §4.3: the resource *together with its specification* (From and
    // Where clauses) is replaced by the substituting description.
    alternative.select->from[0] = rel::TableRef{sub.substituting_resource, ""};
    if (sub.substituting_where.empty()) {
      alternative.select->where = nullptr;
    } else {
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr where,
                            rel::SqlParser::ParseExpr(sub.substituting_where));
      WFRM_ASSIGN_OR_RETURN(where, Substitute(*where, params));
      alternative.select->where = std::move(where);
    }
    WFRM_ASSIGN_OR_RETURN(alternative,
                          rql::BindRql(std::move(alternative), *org_));
    if (seen.insert(alternative.ToString()).second) {
      if (span.get() != nullptr) {
        std::string from = sub.substituted_resource;
        if (!sub.substituted_where.empty()) {
          from += " Where " + sub.substituted_where;
        }
        std::string to = sub.substituting_resource;
        if (!sub.substituting_where.empty()) {
          to += " Where " + sub.substituting_where;
        }
        obs::Attr(span, "policy",
                  "PID " + std::to_string(sub.pid) + " (group " +
                      std::to_string(sub.group) + "): " + from + " -> " + to);
        obs::Attr(span, "alternative", alternative.ToString());
      }
      out.push_back(std::move(alternative));
    }
  }
  obs::Attr(span, "alternatives", static_cast<int64_t>(out.size()));
  return out;
}

}  // namespace wfrm::policy
