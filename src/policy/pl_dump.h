#ifndef WFRM_POLICY_PL_DUMP_H_
#define WFRM_POLICY_PL_DUMP_H_

#include <string>

#include "common/result.h"
#include "policy/policy_store.h"

namespace wfrm::policy {

/// Serializes the policy base back to Policy Language text: one
/// statement per qualification policy, per requirement group and per
/// substitution group (DNF disjuncts are recombined with Or). Feeding
/// the result to PolicyStore::AddPolicyText on a fresh store rebuilds an
/// equivalent policy base — the "load policies into the main memory
/// (periodically or at start-up time)" path of the paper's §7.
///
/// Note: With clauses are reconstructed from the stored *intervals*, so
/// a clause like `Not (a < 3)` round-trips as the equivalent `a >= 3`.
Result<std::string> DumpPl(const PolicyStore& store);

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_PL_DUMP_H_
