#ifndef WFRM_POLICY_POLICY_AST_H_
#define WFRM_POLICY_POLICY_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "rel/expr.h"

namespace wfrm::policy {

/// `Qualify R For A` (paper §3.1, Figure 5): resource type R — and every
/// sub-type — may carry out activity type A and every sub-type.
/// Qualification policies are Or-related and obey the Closed World
/// Assumption.
struct QualificationPolicy {
  std::string resource;
  std::string activity;

  QualificationPolicy Clone() const { return {resource, activity}; }
  std::string ToString() const;
};

/// `Require R Where w For A With v` (paper §3.2, Figures 6–8): when a
/// resource of (a sub-type of) R is chosen for an activity of (a
/// sub-type of) A whose specification falls in the range v, the resource
/// must satisfy w. Requirement policies are And-related.
///
/// `where` is a full SQL condition (nested selects, hierarchical
/// sub-queries and `[ActivityAttr]` parameters allowed); `with` is a
/// restricted range clause over activity attributes.
struct RequirementPolicy {
  std::string resource;
  rel::ExprPtr where;  // May be null (no condition — degenerate).
  std::string activity;
  rel::ExprPtr with;  // May be null (applies to the whole activity range).

  RequirementPolicy Clone() const {
    return {resource, where ? where->Clone() : nullptr, activity,
            with ? with->Clone() : nullptr};
  }
  std::string ToString() const;
};

/// `Substitute R1 Where w1 By R2 Where w2 For A With v` (paper §3.3,
/// Figure 9): resources matching (R1, w1), when unavailable, may be
/// replaced by resources matching (R2, w2) for activities in (A, v).
/// Substitution policies are Or-related and never applied transitively
/// (§1.2, §2.1). Both where clauses are restricted range clauses per the
/// Appendix grammar.
struct SubstitutionPolicy {
  std::string substituted_resource;
  rel::ExprPtr substituted_where;  // May be null.
  std::string substituting_resource;
  rel::ExprPtr substituting_where;  // May be null.
  std::string activity;
  rel::ExprPtr with;  // May be null.

  SubstitutionPolicy Clone() const {
    return {substituted_resource,
            substituted_where ? substituted_where->Clone() : nullptr,
            substituting_resource,
            substituting_where ? substituting_where->Clone() : nullptr,
            activity,
            with ? with->Clone() : nullptr};
  }
  std::string ToString() const;
};

/// Any parsed Policy Language statement.
using ParsedPolicy =
    std::variant<QualificationPolicy, RequirementPolicy, SubstitutionPolicy>;

std::string PolicyToString(const ParsedPolicy& policy);

/// Parses one PL statement (Appendix grammar).
Result<ParsedPolicy> ParsePolicy(std::string_view text);

/// Parses a ';'-separated sequence of PL statements.
Result<std::vector<ParsedPolicy>> ParsePolicies(std::string_view text);

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_POLICY_AST_H_
