#include "policy/policy_ast.h"

#include "rel/parser.h"
#include "rel/token.h"

namespace wfrm::policy {

std::string QualificationPolicy::ToString() const {
  return "Qualify " + resource + " For " + activity;
}

std::string RequirementPolicy::ToString() const {
  std::string out = "Require " + resource;
  if (where) out += " Where " + where->ToString();
  out += " For " + activity;
  if (with) out += " With " + with->ToString();
  return out;
}

std::string SubstitutionPolicy::ToString() const {
  std::string out = "Substitute " + substituted_resource;
  if (substituted_where) out += " Where " + substituted_where->ToString();
  out += " By " + substituting_resource;
  if (substituting_where) out += " Where " + substituting_where->ToString();
  out += " For " + activity;
  if (with) out += " With " + with->ToString();
  return out;
}

std::string PolicyToString(const ParsedPolicy& policy) {
  return std::visit([](const auto& p) { return p.ToString(); }, policy);
}

namespace {

/// Parses `[Where <expr>]`, stopping at the next clause keyword.
Result<rel::ExprPtr> ParseOptionalWhere(rel::TokenStream& ts) {
  if (!ts.TryKeyword("where")) return rel::ExprPtr{};
  return rel::SqlParser::ParseExprFrom(ts);
}

Result<ParsedPolicy> ParseOne(rel::TokenStream& ts) {
  if (ts.TryKeyword("qualify")) {
    QualificationPolicy p;
    WFRM_ASSIGN_OR_RETURN(p.resource, ts.ExpectIdentifier("resource type"));
    WFRM_RETURN_NOT_OK(ts.ExpectKeyword("for"));
    WFRM_ASSIGN_OR_RETURN(p.activity, ts.ExpectIdentifier("activity type"));
    return ParsedPolicy{std::move(p)};
  }
  if (ts.TryKeyword("require")) {
    RequirementPolicy p;
    WFRM_ASSIGN_OR_RETURN(p.resource, ts.ExpectIdentifier("resource type"));
    WFRM_ASSIGN_OR_RETURN(p.where, ParseOptionalWhere(ts));
    WFRM_RETURN_NOT_OK(ts.ExpectKeyword("for"));
    WFRM_ASSIGN_OR_RETURN(p.activity, ts.ExpectIdentifier("activity type"));
    if (ts.TryKeyword("with")) {
      WFRM_ASSIGN_OR_RETURN(p.with, rel::SqlParser::ParseExprFrom(ts));
    }
    return ParsedPolicy{std::move(p)};
  }
  if (ts.TryKeyword("substitute")) {
    SubstitutionPolicy p;
    WFRM_ASSIGN_OR_RETURN(p.substituted_resource,
                          ts.ExpectIdentifier("substituted resource type"));
    WFRM_ASSIGN_OR_RETURN(p.substituted_where, ParseOptionalWhere(ts));
    WFRM_RETURN_NOT_OK(ts.ExpectKeyword("by"));
    WFRM_ASSIGN_OR_RETURN(p.substituting_resource,
                          ts.ExpectIdentifier("substituting resource type"));
    WFRM_ASSIGN_OR_RETURN(p.substituting_where, ParseOptionalWhere(ts));
    WFRM_RETURN_NOT_OK(ts.ExpectKeyword("for"));
    WFRM_ASSIGN_OR_RETURN(p.activity, ts.ExpectIdentifier("activity type"));
    if (ts.TryKeyword("with")) {
      WFRM_ASSIGN_OR_RETURN(p.with, rel::SqlParser::ParseExprFrom(ts));
    }
    return ParsedPolicy{std::move(p)};
  }
  return ts.Error("expected Qualify, Require or Substitute");
}

}  // namespace

Result<ParsedPolicy> ParsePolicy(std::string_view text) {
  WFRM_ASSIGN_OR_RETURN(rel::TokenStream ts, rel::TokenStream::Open(text));
  WFRM_ASSIGN_OR_RETURN(ParsedPolicy p, ParseOne(ts));
  if (ts.TrySymbol(";")) {
    // Allow a single trailing terminator.
  }
  if (!ts.AtEnd()) {
    return ts.Error("unexpected trailing input after policy");
  }
  return p;
}

Result<std::vector<ParsedPolicy>> ParsePolicies(std::string_view text) {
  WFRM_ASSIGN_OR_RETURN(rel::TokenStream ts, rel::TokenStream::Open(text));
  std::vector<ParsedPolicy> out;
  while (!ts.AtEnd()) {
    WFRM_ASSIGN_OR_RETURN(ParsedPolicy p, ParseOne(ts));
    out.push_back(std::move(p));
    if (!ts.TrySymbol(";")) break;
  }
  if (!ts.AtEnd()) {
    return ts.Error("unexpected trailing input after policies");
  }
  return out;
}

}  // namespace wfrm::policy
