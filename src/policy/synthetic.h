#ifndef WFRM_POLICY_SYNTHETIC_H_
#define WFRM_POLICY_SYNTHETIC_H_

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "org/org_model.h"
#include "policy/naive_store.h"
#include "policy/policy_store.h"
#include "rql/rql.h"

namespace wfrm::policy {

/// Parameters of a synthetic policy base realizing the §6 analytical
/// model: complete binary trees for both hierarchies, N = |R|·q·c
/// requirement policies, i intervals per activity range, pairwise
/// disjoint case ranges.
struct SyntheticConfig {
  size_t num_activities = 64;  // |A|
  size_t num_resources = 64;   // |R|
  size_t q = 8;                // Partner activities per resource.
  size_t c = 8;                // Cases per (resource, activity) pair.
  size_t intervals = 1;        // i — attributes constrained per range.
  int64_t case_width = 100;    // Width of each case's interval.
  uint64_t seed = 42;

  /// true: every resource partners with the q activities nearest the
  /// activity root ("general policies", which is what makes ancestor
  /// pairs densely covered — the §6 model's implicit assumption).
  /// false: partners spread round-robin ((j+t) mod |A|).
  bool general_activity_placement = true;

  /// Mirror every requirement policy into a NaivePolicyStore baseline.
  bool build_naive_baseline = false;

  /// Emit `Qualify <resource root> For <activity root>` so the full
  /// pipeline has a qualification base.
  bool with_qualifications = true;

  /// Number of synthetic substitution policies (0 = none).
  size_t num_substitutions = 0;

  /// Resource instances created per resource type (0 = none; only needed
  /// for end-to-end allocation benchmarks).
  size_t instances_per_resource = 0;
};

/// A generated organization + policy base + query source.
class SyntheticWorkload {
 public:
  static Result<std::unique_ptr<SyntheticWorkload>> Build(
      const SyntheticConfig& config);

  const SyntheticConfig& config() const { return config_; }
  org::OrgModel& org() { return *org_; }
  const org::OrgModel& org() const { return *org_; }
  PolicyStore& store() { return *store_; }
  const PolicyStore& store() const { return *store_; }
  NaivePolicyStore* naive() { return naive_.get(); }

  const std::vector<std::string>& activity_names() const {
    return activity_names_;
  }
  const std::vector<std::string>& resource_names() const {
    return resource_names_;
  }

  /// A random bound RQL query: a random resource type, a random leaf
  /// activity, and a fully-bound specification with values uniform over
  /// the tiled case domain.
  Result<rql::RqlQuery> RandomQuery(std::mt19937& rng) const;

  /// Name of activity node `k` ("Act<k>"); node 0 is the root, the
  /// parent of node k is node (k-1)/2.
  static std::string ActivityName(size_t k) {
    return "Act" + std::to_string(k);
  }
  static std::string ResourceName(size_t k) {
    return "Role" + std::to_string(k);
  }

 private:
  SyntheticWorkload() = default;

  SyntheticConfig config_;
  std::unique_ptr<org::OrgModel> org_;
  std::unique_ptr<PolicyStore> store_;
  std::unique_ptr<NaivePolicyStore> naive_;
  std::vector<std::string> activity_names_;
  std::vector<std::string> resource_names_;
  std::vector<size_t> leaf_activities_;  // Indexes of childless activities.
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_SYNTHETIC_H_
