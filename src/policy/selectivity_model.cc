#include "policy/selectivity_model.h"

#include <cmath>

namespace wfrm::policy {

double SelectivityPolicies(const SelectivityParams& p) {
  double log_a = std::log2(static_cast<double>(p.num_activities));
  double log_r = std::log2(static_cast<double>(p.num_resources));
  return (log_a * log_r) / (static_cast<double>(p.num_resources) * p.q);
}

double SelectivityFilter(const SelectivityParams& p) {
  return 1.0 / (static_cast<double>(p.num_resources) * p.c);
}

std::vector<SelectivityPoint> SelectivitySweep(
    size_t num_activities, size_t num_resources, double total_policies,
    const std::vector<double>& cs) {
  std::vector<SelectivityPoint> out;
  out.reserve(cs.size());
  for (double c : cs) {
    SelectivityParams p;
    p.num_activities = num_activities;
    p.num_resources = num_resources;
    p.c = c;
    p.q = total_policies / (static_cast<double>(num_resources) * c);
    out.push_back(SelectivityPoint{c, p.q, SelectivityPolicies(p),
                                   SelectivityFilter(p)});
  }
  return out;
}

std::vector<SelectivityPoint> Figure17Sweep() {
  // N = 2^12, |A| = |R| = 2^6; c over powers of two up to q = 1.
  return SelectivitySweep(64, 64, 4096.0, {1, 2, 4, 8, 16, 32, 64});
}

}  // namespace wfrm::policy
