#include "policy/policy_store.h"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

#include "policy/key_encoding.h"
#include "rel/parser.h"

namespace wfrm::policy {

namespace {

constexpr char kQualifications[] = "Qualifications";
constexpr char kPolicies[] = "Policies";
constexpr char kFilter[] = "Filter";
constexpr char kSubstPolicies[] = "SubstPolicies";
constexpr char kSubstFilter[] = "SubstFilter";

/// SQL string literal with '' escaping.
std::string Quote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

rel::Schema FilterSchema() {
  return rel::Schema({{"PID", rel::DataType::kInt},
                      {"Attribute", rel::DataType::kString},
                      {"LowerBound", rel::DataType::kString},
                      {"UpperBound", rel::DataType::kString},
                      {"LowerInclusive", rel::DataType::kBool},
                      {"UpperInclusive", rel::DataType::kBool}});
}

/// Case-insensitive name set for hierarchy membership tests.
using NameSet = std::unordered_set<std::string, CaseInsensitiveHash,
                                   CaseInsensitiveEq>;

NameSet ToSet(const std::vector<std::string>& names) {
  return NameSet(names.begin(), names.end());
}

/// Rounds a list size up to the next power of two (minimum 1): the kSql
/// path buckets query shapes by these so a handful of parameterized view
/// definitions — padded by repeating the last element, which is
/// idempotent under In-list/Or set semantics — serve every query.
size_t ShapeBucket(size_t n) {
  size_t b = 1;
  while (b < n) b <<= 1;
  return b;
}

}  // namespace

StoreStatsSnapshot StoreStatsSnapshot::operator-(
    const StoreStatsSnapshot& earlier) const {
  StoreStatsSnapshot d;
  d.retrievals = retrievals - earlier.retrievals;
  d.candidate_rows = candidate_rows - earlier.candidate_rows;
  d.interval_rows = interval_rows - earlier.interval_rows;
  d.plans_filter_first = plans_filter_first - earlier.plans_filter_first;
  d.plans_policies_first = plans_policies_first - earlier.plans_policies_first;
  d.cache_hits = cache_hits - earlier.cache_hits;
  d.cache_misses = cache_misses - earlier.cache_misses;
  d.cache_invalidations = cache_invalidations - earlier.cache_invalidations;
  d.rewrite_cache_hits = rewrite_cache_hits - earlier.rewrite_cache_hits;
  d.rewrite_cache_misses = rewrite_cache_misses - earlier.rewrite_cache_misses;
  d.plan_cache_hits = plan_cache_hits - earlier.plan_cache_hits;
  d.plan_cache_misses = plan_cache_misses - earlier.plan_cache_misses;
  d.compiled_builds = compiled_builds - earlier.compiled_builds;
  d.compiled_probes = compiled_probes - earlier.compiled_probes;
  d.bloom_probes = bloom_probes - earlier.bloom_probes;
  d.bloom_skips = bloom_skips - earlier.bloom_skips;
  d.epoch = epoch;
  return d;
}

PolicyStore::PolicyStore(const org::OrgModel* org) : org_(org) {
  // Table creation on a fresh database cannot fail.
  rel::Table* quals =
      *db_.CreateTable(kQualifications,
                       rel::Schema({{"PID", rel::DataType::kInt},
                                    {"Resource", rel::DataType::kString},
                                    {"Activity", rel::DataType::kString}}));
  (void)quals->CreateOrderedIndex("quals_by_activity", {"Activity"});

  rel::Table* policies = *db_.CreateTable(
      kPolicies, rel::Schema({{"PID", rel::DataType::kInt},
                              {"GroupID", rel::DataType::kInt},
                              {"Activity", rel::DataType::kString},
                              {"Resource", rel::DataType::kString},
                              {"NumberOfIntervals", rel::DataType::kInt},
                              {"WhereClause", rel::DataType::kString}}));
  // §5.2: "we may create a concatenated index on attributes Activity and
  // Resource".
  (void)policies->CreateOrderedIndex("policies_act_res",
                                     {"Activity", "Resource"});

  rel::Table* filter = *db_.CreateTable(kFilter, FilterSchema());
  // §5.2: "a concatenated index on attributes Attribute, LowerBound and
  // UpperBound".
  (void)filter->CreateOrderedIndex("filter_attr_bounds",
                                   {"Attribute", "LowerBound", "UpperBound"});
  // Supports the Policies-first join order (per-candidate interval
  // verification by PID).
  (void)filter->CreateHashIndex("filter_by_pid", {"PID"});

  rel::Table* subst = *db_.CreateTable(
      kSubstPolicies,
      rel::Schema({{"PID", rel::DataType::kInt},
                   {"GroupID", rel::DataType::kInt},
                   {"Activity", rel::DataType::kString},
                   {"Resource", rel::DataType::kString},
                   {"NumberOfIntervals", rel::DataType::kInt},
                   {"SubstitutedWhere", rel::DataType::kString},
                   {"SubstitutingResource", rel::DataType::kString},
                   {"SubstitutingWhere", rel::DataType::kString}}));
  (void)subst->CreateOrderedIndex("subst_act_res", {"Activity", "Resource"});

  rel::Table* subst_filter = *db_.CreateTable(kSubstFilter, FilterSchema());
  (void)subst_filter->CreateOrderedIndex(
      "subst_filter_attr_bounds", {"Attribute", "LowerBound", "UpperBound"});
}

// ---- Validation -----------------------------------------------------------

Status PolicyStore::ValidateRangeClause(const std::string& activity,
                                        const rel::Expr* with) const {
  if (with == nullptr) return Status::OK();
  WFRM_ASSIGN_OR_RETURN(std::vector<ConjunctiveRange> ranges,
                        NormalizeRangeClause(with));
  if (ranges.empty()) {
    return Status::InvalidArgument(
        "With clause is unsatisfiable: " + with->ToString());
  }
  // Every referenced attribute must exist on the activity type and the
  // bound constants must fit its declared type.
  for (const ConjunctiveRange& range : ranges) {
    for (const auto& [attr, interval] : range) {
      WFRM_ASSIGN_OR_RETURN(org::AttributeDef def,
                            org_->activities().FindAttribute(activity, attr));
      for (const std::optional<rel::Value>* bound :
           {&interval.lower, &interval.upper}) {
        if (bound->has_value() && !(*bound)->CompatibleWith(def.type)) {
          return Status::TypeError(
              "bound " + (*bound)->ToString() + " of attribute '" + attr +
              "' is not compatible with its declared type " +
              rel::DataTypeToString(def.type));
        }
      }
    }
  }
  return Status::OK();
}

Status PolicyStore::ValidateResourceRangeClause(const std::string& resource,
                                                const rel::Expr* clause) const {
  if (clause == nullptr) return Status::OK();
  WFRM_ASSIGN_OR_RETURN(std::vector<ConjunctiveRange> ranges,
                        NormalizeRangeClause(clause));
  if (ranges.empty()) {
    return Status::InvalidArgument(
        "resource range clause is unsatisfiable: " + clause->ToString());
  }
  for (const ConjunctiveRange& range : ranges) {
    for (const auto& [attr, interval] : range) {
      (void)interval;
      WFRM_ASSIGN_OR_RETURN(org::AttributeDef def,
                            org_->resources().FindAttribute(resource, attr));
      (void)def;
    }
  }
  return Status::OK();
}

namespace {

/// Collects `[Parameter]` names appearing anywhere in an expression tree.
void CollectParameters(const rel::Expr& e, std::vector<std::string>* out);

void CollectParametersSelect(const rel::SelectStatement& s,
                             std::vector<std::string>* out) {
  for (const auto& item : s.items) {
    if (item.expr) CollectParameters(*item.expr, out);
  }
  if (s.where) CollectParameters(*s.where, out);
  if (s.connect_by) {
    CollectParameters(*s.connect_by->start_with, out);
    CollectParameters(*s.connect_by->connect, out);
  }
  if (s.union_next) CollectParametersSelect(*s.union_next, out);
}

void CollectParameters(const rel::Expr& e, std::vector<std::string>* out) {
  using rel::Expr;
  switch (e.kind()) {
    case Expr::Kind::kParameter:
      out->push_back(static_cast<const rel::ParameterExpr&>(e).name());
      return;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const rel::BinaryExpr&>(e);
      CollectParameters(b.left(), out);
      CollectParameters(b.right(), out);
      return;
    }
    case Expr::Kind::kUnary:
      CollectParameters(static_cast<const rel::UnaryExpr&>(e).operand(), out);
      return;
    case Expr::Kind::kInList: {
      const auto& in = static_cast<const rel::InListExpr&>(e);
      CollectParameters(in.needle(), out);
      for (const auto& item : in.haystack()) CollectParameters(*item, out);
      return;
    }
    case Expr::Kind::kSubquery:
      CollectParametersSelect(
          static_cast<const rel::SubqueryExpr&>(e).select(), out);
      return;
    case Expr::Kind::kInSubquery: {
      const auto& in = static_cast<const rel::InSubqueryExpr&>(e);
      CollectParameters(in.needle(), out);
      CollectParametersSelect(in.select(), out);
      return;
    }
    case Expr::Kind::kFunction: {
      const auto& fn = static_cast<const rel::FunctionExpr&>(e);
      for (const auto& arg : fn.args()) CollectParameters(*arg, out);
      return;
    }
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumnRef:
      return;
  }
}

}  // namespace

Status PolicyStore::ValidateRequirementWhere(const std::string& resource,
                                             const std::string& activity,
                                             const rel::Expr* where) const {
  (void)resource;
  if (where == nullptr) return Status::OK();
  // Every [Parameter] must name an attribute of the activity type: the
  // rewriter substitutes the activity specification's value for it.
  std::vector<std::string> params;
  CollectParameters(*where, &params);
  for (const std::string& p : params) {
    WFRM_RETURN_NOT_OK(
        org_->activities().FindAttribute(activity, p).status());
  }
  return Status::OK();
}

// ---- Insertion ------------------------------------------------------------

Result<int64_t> PolicyStore::InsertDecomposed(
    const std::string& policy_table, const std::string& filter_table,
    const std::string& activity, const std::string& resource,
    const rel::Expr* with, std::vector<rel::Value> extra_columns) {
  WFRM_ASSIGN_OR_RETURN(std::vector<ConjunctiveRange> ranges,
                        NormalizeRangeClause(with));
  if (ranges.empty()) {
    return Status::InvalidArgument("With clause is unsatisfiable");
  }
  rel::Table* policies = db_.GetTable(policy_table);
  rel::Table* filter = db_.GetTable(filter_table);
  int64_t group = next_group_++;
  for (const ConjunctiveRange& raw_range : ranges) {
    // Store attributes under their canonical declared spelling so index
    // probes (exact string equality) are case-robust.
    ConjunctiveRange range;
    for (const auto& [attr, interval] : raw_range) {
      WFRM_ASSIGN_OR_RETURN(org::AttributeDef def,
                            org_->activities().FindAttribute(activity, attr));
      range.emplace(def.name, interval);
    }
    int64_t pid = next_pid_++;
    rel::Row row = {rel::Value::Int(pid), rel::Value::Int(group),
                    rel::Value::String(activity), rel::Value::String(resource),
                    rel::Value::Int(static_cast<int64_t>(range.size()))};
    for (const rel::Value& v : extra_columns) row.push_back(v);
    WFRM_RETURN_NOT_OK(policies->Insert(row).status());
    RecordDelta(policy_table, /*deleted=*/false, row);
    for (const auto& [attr, interval] : range) {
      std::string lower = EncodedDomainMin();
      std::string upper = EncodedDomainMax();
      if (interval.lower) {
        WFRM_ASSIGN_OR_RETURN(lower, EncodeKey(*interval.lower));
      }
      if (interval.upper) {
        WFRM_ASSIGN_OR_RETURN(upper, EncodeKey(*interval.upper));
      }
      rel::Row frow = {rel::Value::Int(pid), rel::Value::String(attr),
                       rel::Value::String(std::move(lower)),
                       rel::Value::String(std::move(upper)),
                       rel::Value::Bool(interval.lower_inclusive),
                       rel::Value::Bool(interval.upper_inclusive)};
      WFRM_RETURN_NOT_OK(filter->Insert(frow).status());
      RecordDelta(filter_table, /*deleted=*/false, frow);
      if (filter_table == kFilter) ++filter_attr_counts_[attr];
    }
  }
  return group;
}

Result<int64_t> PolicyStore::AddQualification(const QualificationPolicy& p) {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  WFRM_ASSIGN_OR_RETURN(std::string resource,
                        org_->resources().Canonical(p.resource));
  WFRM_ASSIGN_OR_RETURN(std::string activity,
                        org_->activities().Canonical(p.activity));
  std::unique_lock<std::shared_mutex> lock(mu_);
  int64_t pid = next_pid_++;
  rel::Row row = {rel::Value::Int(pid), rel::Value::String(resource),
                  rel::Value::String(activity)};
  WFRM_RETURN_NOT_OK(db_.GetTable(kQualifications)->Insert(row).status());
  RecordDelta(kQualifications, /*deleted=*/false, row);
  BumpEpoch();
  return pid;
}

Result<int64_t> PolicyStore::AddRequirement(const RequirementPolicy& p) {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  WFRM_ASSIGN_OR_RETURN(std::string resource,
                        org_->resources().Canonical(p.resource));
  WFRM_ASSIGN_OR_RETURN(std::string activity,
                        org_->activities().Canonical(p.activity));
  WFRM_RETURN_NOT_OK(ValidateRangeClause(activity, p.with.get()));
  WFRM_RETURN_NOT_OK(
      ValidateRequirementWhere(resource, activity, p.where.get()));
  std::string where_text = p.where ? p.where->ToString() : "";
  std::unique_lock<std::shared_mutex> lock(mu_);
  Result<int64_t> group =
      InsertDecomposed(kPolicies, kFilter, activity, resource, p.with.get(),
                       {rel::Value::String(std::move(where_text))});
  // Bump even on partial failure: any rows inserted before the error must
  // still invalidate cached derivations.
  BumpEpoch();
  return group;
}

Result<int64_t> PolicyStore::AddSubstitution(const SubstitutionPolicy& p) {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  WFRM_ASSIGN_OR_RETURN(std::string substituted,
                        org_->resources().Canonical(p.substituted_resource));
  WFRM_ASSIGN_OR_RETURN(std::string substituting,
                        org_->resources().Canonical(p.substituting_resource));
  WFRM_ASSIGN_OR_RETURN(std::string activity,
                        org_->activities().Canonical(p.activity));
  WFRM_RETURN_NOT_OK(ValidateRangeClause(activity, p.with.get()));
  WFRM_RETURN_NOT_OK(
      ValidateResourceRangeClause(substituted, p.substituted_where.get()));
  WFRM_RETURN_NOT_OK(
      ValidateResourceRangeClause(substituting, p.substituting_where.get()));
  std::string substituted_where =
      p.substituted_where ? p.substituted_where->ToString() : "";
  std::string substituting_where =
      p.substituting_where ? p.substituting_where->ToString() : "";
  std::unique_lock<std::shared_mutex> lock(mu_);
  Result<int64_t> group = InsertDecomposed(
      kSubstPolicies, kSubstFilter, activity, substituted, p.with.get(),
      {rel::Value::String(std::move(substituted_where)),
       rel::Value::String(substituting),
       rel::Value::String(std::move(substituting_where))});
  BumpEpoch();
  return group;
}

Result<int64_t> PolicyStore::AddPolicy(const ParsedPolicy& policy) {
  if (const auto* q = std::get_if<QualificationPolicy>(&policy)) {
    return AddQualification(*q);
  }
  if (const auto* r = std::get_if<RequirementPolicy>(&policy)) {
    return AddRequirement(*r);
  }
  return AddSubstitution(std::get<SubstitutionPolicy>(policy));
}

Status PolicyStore::AddPolicyText(std::string_view pl_text) {
  WFRM_ASSIGN_OR_RETURN(std::vector<ParsedPolicy> policies,
                        ParsePolicies(pl_text));
  for (const ParsedPolicy& p : policies) {
    WFRM_RETURN_NOT_OK(AddPolicy(p).status());
  }
  return Status::OK();
}

// ---- Cache plumbing -------------------------------------------------------

std::string PolicyStore::RetrievalCacheKey(const char* tag,
                                           const std::string& resource,
                                           const std::string& activity,
                                           const rel::ParamMap& spec) const {
  std::string key;
  AppendCacheKeyPart(&key, tag);
  AppendCacheKeyPart(&key, std::to_string(static_cast<int>(
                               mode_.load(std::memory_order_relaxed))));
  AppendCacheKeyPart(&key, std::to_string(static_cast<int>(
                               plan_.load(std::memory_order_relaxed))));
  AppendCacheKeyPart(&key,
                     use_indexes_.load(std::memory_order_relaxed) ? "i1" : "i0");
  AppendCacheKeyPart(
      &key, compiled_enabled_.load(std::memory_order_relaxed) ? "c1" : "c0");
  AppendCacheKeyPart(&key, resource);
  AppendCacheKeyPart(&key, activity);
  // ParamMap iteration order is unspecified: sort for a canonical key.
  std::vector<std::string> parts;
  parts.reserve(spec.size());
  for (const auto& [attr, value] : spec) {
    parts.push_back(attr + "=" + value.ToString());
  }
  std::sort(parts.begin(), parts.end());
  for (const std::string& p : parts) AppendCacheKeyPart(&key, p);
  return key;
}

void PolicyStore::NoteRewriteLookup(CacheLookup outcome) const {
  switch (outcome) {
    case CacheLookup::kHit:
      ++stats_.rewrite_cache_hits;
      if (metrics_.rewrite_hits != nullptr) metrics_.rewrite_hits->Increment();
      break;
    case CacheLookup::kMiss:
      ++stats_.rewrite_cache_misses;
      if (metrics_.rewrite_misses != nullptr) {
        metrics_.rewrite_misses->Increment();
      }
      break;
    case CacheLookup::kStale:
      ++stats_.rewrite_cache_misses;
      ++stats_.cache_invalidations;
      if (metrics_.rewrite_stale != nullptr) {
        metrics_.rewrite_stale->Increment();
      }
      break;
  }
}

void PolicyStore::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = RetrievalMetrics{};
    return;
  }
  const std::string lookups = "wfrm_store_cache_lookups_total";
  const std::string lookups_help =
      "Enforcement cache probes by cache (retrieval memo tables vs the "
      "rewritten-query LRU) and outcome";
  metrics_.retrievals =
      registry->GetCounter("wfrm_store_retrievals_total", {},
                           "Relevant-policy retrievals entering the store");
  metrics_.hits = registry->GetCounter(
      lookups, {{"cache", "retrieval"}, {"outcome", "hit"}}, lookups_help);
  metrics_.misses = registry->GetCounter(
      lookups, {{"cache", "retrieval"}, {"outcome", "miss"}}, lookups_help);
  metrics_.stale = registry->GetCounter(
      lookups, {{"cache", "retrieval"}, {"outcome", "stale"}}, lookups_help);
  metrics_.rewrite_hits = registry->GetCounter(
      lookups, {{"cache", "rewrite"}, {"outcome", "hit"}}, lookups_help);
  metrics_.rewrite_misses = registry->GetCounter(
      lookups, {{"cache", "rewrite"}, {"outcome", "miss"}}, lookups_help);
  metrics_.rewrite_stale = registry->GetCounter(
      lookups, {{"cache", "rewrite"}, {"outcome", "stale"}}, lookups_help);
  metrics_.plan_hits = registry->GetCounter(
      "wfrm_rel_plan_cache_hits_total", {},
      "Prepared-query plan cache hits (kSql retrieval)");
  metrics_.plan_misses = registry->GetCounter(
      "wfrm_rel_plan_cache_misses_total", {},
      "Prepared-query plan cache misses, including catalog-version "
      "invalidations");
  metrics_.compiled_builds = registry->GetCounter(
      "wfrm_policy_compiled_builds_total", {},
      "Compiled policy tables built (lazy, per resource/activity/epoch)");
  metrics_.compiled_probes = registry->GetCounter(
      "wfrm_policy_compiled_probes_total", {},
      "Warm Enforce probes served by a compiled policy table");
}

// ---- Qualification retrieval ------------------------------------------------

Result<std::vector<std::string>> PolicyStore::QualifiedSubtypesLocked(
    const std::string& resource, const std::string& activity) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(activity));
  NameSet act_set = ToSet(act_ancestors);

  // Resource types directly qualified for some super-type of `activity`.
  NameSet qualified;
  const rel::Table* quals = db_.GetTable(kQualifications);
  if (use_indexes_) {
    const rel::OrderedIndex* idx = quals->ordered_indexes()[0].get();
    for (const std::string& a : act_ancestors) {
      rel::IndexProbe probe;
      probe.equals = {rel::Value::String(a)};
      for (rel::RowId rid : idx->Scan(probe)) {
        if (!quals->IsLive(rid)) continue;
        ++stats_.candidate_rows;
        qualified.insert(quals->row(rid)[1].string_value());
      }
    }
  } else {
    quals->ForEach([&](rel::RowId, const rel::Row& row) {
      ++stats_.candidate_rows;
      if (act_set.count(row[2].string_value()) > 0) {
        qualified.insert(row[1].string_value());
      }
    });
  }

  // §4.1: keep the sub-types of `resource` one of whose ancestors is
  // directly qualified.
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> subtypes,
                        org_->resources().Descendants(resource));
  std::vector<std::string> out;
  for (const std::string& sub : subtypes) {
    WFRM_ASSIGN_OR_RETURN(std::vector<std::string> chain,
                          org_->resources().Ancestors(sub));
    for (const std::string& anc : chain) {
      if (qualified.count(anc) > 0) {
        out.push_back(sub);
        break;
      }
    }
  }
  return out;
}

Result<std::vector<std::string>> PolicyStore::QualifiedSubtypes(
    const std::string& resource, const std::string& activity) const {
  NoteRetrieval();
  WFRM_RETURN_NOT_OK(EnsureHydratedForActivity(activity));
  const bool use_cache = cache_enabled();
  std::string key;
  uint64_t observed_epoch = 0;
  if (use_cache) {
    key = RetrievalCacheKey("qual", resource, activity, {});
    observed_epoch = epoch();
    CacheLookup outcome;
    if (auto hit = qualified_cache_.Get(key, observed_epoch, &outcome)) {
      NoteRetrievalHit();
      return *hit;
    }
    NoteRetrievalMiss(outcome);
  }
  Result<std::vector<std::string>> result = std::vector<std::string>{};
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    result = QualifiedSubtypesLocked(resource, activity);
  }
  // Only publish results whose inputs were stable across the computation:
  // a concurrent mutation would leave the entry half-old, half-new.
  if (use_cache && result.ok() && epoch() == observed_epoch) {
    qualified_cache_.Put(key, observed_epoch, *result);
  }
  return result;
}

Result<bool> PolicyStore::IsQualified(const std::string& resource,
                                      const std::string& activity) const {
  WFRM_RETURN_NOT_OK(EnsureHydratedForActivity(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_ancestors,
                        org_->resources().Ancestors(resource));
  NameSet act_set = ToSet(act_ancestors);
  NameSet res_set = ToSet(res_ancestors);
  bool found = false;
  std::shared_lock<std::shared_mutex> lock(mu_);
  db_.GetTable(kQualifications)->ForEach([&](rel::RowId, const rel::Row& row) {
    if (res_set.count(row[1].string_value()) > 0 &&
        act_set.count(row[2].string_value()) > 0) {
      found = true;
    }
  });
  return found;
}

// ---- Requirement retrieval ---------------------------------------------------

Result<std::vector<PolicyStore::CandidateRow>> PolicyStore::CandidatePolicies(
    const std::string& table, const std::vector<std::string>& activities,
    const std::vector<std::string>& resources) const {
  const rel::Table* policies = db_.GetTable(table);
  std::vector<CandidateRow> out;
  auto add_row = [&](const rel::Row& row) {
    out.push_back(CandidateRow{row[0].int_value(), row[1].int_value(),
                               row[4].int_value(), &row});
  };
  if (use_indexes_) {
    const rel::OrderedIndex* idx = policies->ordered_indexes()[0].get();
    for (const std::string& a : activities) {
      for (const std::string& r : resources) {
        rel::IndexProbe probe;
        probe.equals = {rel::Value::String(a), rel::Value::String(r)};
        for (rel::RowId rid : idx->Scan(probe)) {
          if (!policies->IsLive(rid)) continue;
          ++stats_.candidate_rows;
          add_row(policies->row(rid));
        }
      }
    }
  } else {
    NameSet act_set = ToSet(activities);
    NameSet res_set = ToSet(resources);
    policies->ForEach([&](rel::RowId, const rel::Row& row) {
      ++stats_.candidate_rows;
      if (act_set.count(row[2].string_value()) > 0 &&
          res_set.count(row[3].string_value()) > 0) {
        add_row(row);
      }
    });
  }
  return out;
}

rel::ParamMap PolicyStore::CanonicalizeSpec(const std::string& activity,
                                            const rel::ParamMap& spec) const {
  rel::ParamMap out;
  for (const auto& [attr, value] : spec) {
    auto def = org_->activities().FindAttribute(activity, attr);
    out[def.ok() ? def->name : attr] = value;
  }
  return out;
}

Result<std::unordered_map<int64_t, int64_t>>
PolicyStore::CountEnclosingIntervals(const std::string& filter_table,
                                     const rel::ParamMap& spec) const {
  const rel::Table* filter = db_.GetTable(filter_table);
  std::unordered_map<int64_t, int64_t> counts;

  // Residual predicate shared by both paths: the interval row [lo, up]
  // (encoded, with inclusivity flags) must enclose the encoded value.
  auto encloses = [](const rel::Row& row, const std::string& enc) {
    const std::string& lo = row[2].string_value();
    const std::string& up = row[3].string_value();
    bool lo_incl = row[4].bool_value();
    bool up_incl = row[5].bool_value();
    if (enc < lo || (enc == lo && !lo_incl)) return false;
    if (up < enc || (enc == up && !up_incl)) return false;
    return true;
  };

  for (const auto& [attr, value] : spec) {
    WFRM_ASSIGN_OR_RETURN(std::string enc, EncodeKey(value));
    if (use_indexes_) {
      // Probe the concatenated (Attribute, LowerBound, UpperBound)
      // index: equality on Attribute, range LowerBound <= enc.
      const rel::OrderedIndex* idx = filter->ordered_indexes()[0].get();
      rel::IndexProbe probe;
      probe.equals = {rel::Value::String(attr)};
      probe.upper = rel::Bound{rel::Value::String(enc), /*inclusive=*/true};
      for (rel::RowId rid : idx->Scan(probe)) {
        if (!filter->IsLive(rid)) continue;
        ++stats_.interval_rows;
        const rel::Row& row = filter->row(rid);
        if (encloses(row, enc)) counts[row[0].int_value()]++;
      }
    } else {
      filter->ForEach([&](rel::RowId, const rel::Row& row) {
        ++stats_.interval_rows;
        if (row[1].string_value() != attr) return;
        if (encloses(row, enc)) counts[row[0].int_value()]++;
      });
    }
  }
  return counts;
}

Result<std::vector<RelevantRequirement>>
PolicyStore::RelevantRequirementsDirect(const std::string& resource,
                                        const std::string& activity,
                                        const rel::ParamMap& spec) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_ancestors,
                        org_->resources().Ancestors(resource));
  WFRM_ASSIGN_OR_RETURN(
      std::vector<CandidateRow> candidates,
      CandidatePolicies(kPolicies, act_ancestors, res_ancestors));
  WFRM_ASSIGN_OR_RETURN(auto counts, CountEnclosingIntervals(kFilter, spec));

  std::vector<RelevantRequirement> out;
  for (const CandidateRow& c : candidates) {
    auto it = counts.find(c.pid);
    int64_t enclosed = it == counts.end() ? 0 : it->second;
    // Figure 15's union: all intervals enclose the specification, or the
    // policy constrains no interval at all.
    if (c.num_intervals == 0 || enclosed == c.num_intervals) {
      out.push_back(RelevantRequirement{c.pid, c.group,
                                        (*c.row)[5].string_value()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return out;
}

Result<std::string> PolicyStore::EnsureSqlShape(size_t ba, size_t br,
                                                size_t bk) const {
  const std::string rp = "Relevant_Policies_" + std::to_string(ba) + "x" +
                         std::to_string(br);
  const std::string rf = "Relevant_Filter_" + std::to_string(bk);
  // Figure 15: the union retrieving the additional selection criteria,
  // against this shape's views.
  std::string fig15 = "Select " + rp + ".PID, " + rp + ".GroupID, " + rp +
                      ".WhereClause From " + rp + ", " + rf + " Where " + rp +
                      ".PID = " + rf + ".PID And " + rp +
                      ".NumberOfIntervals = " + rf + ".NumberOfIntervals "
                      "Union Select PID, GroupID, WhereClause From " + rp +
                      " Where " + rp + ".NumberOfIntervals = 0";
  const std::string shape_key = rp + "|" + rf;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (sql_shapes_.count(shape_key) > 0) return fig15;
  }

  // Figure 13: view on Policies. Ancestor() expands to an In-list (the
  // paper: "the inclusion check can be implemented as a group of
  // disjunctively related equality comparisons"). GroupID is carried
  // along so enforcement can apply each source policy once. The In-lists
  // hold `ba`/`br` parameters instead of literals, so the view is
  // registered once per shape and every query binds fresh values.
  auto param_list = [](const char* prefix, size_t n) {
    std::string out = "(";
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += ", ";
      out += "[" + std::string(prefix) + std::to_string(i) + "]";
    }
    return out + ")";
  };
  std::string fig13 =
      "Select PID, GroupID, NumberOfIntervals, WhereClause From Policies "
      "Where Activity In " +
      param_list("qa", ba) + " And Resource In " + param_list("qr", br);

  // Figure 14: view on Filter, counting enclosing intervals per PID. One
  // parameterized disjunct per spec-attribute slot ([fa j] names the
  // attribute, [fv j] the encoded value).
  std::string fig14 = "Select PID, Count(*) From Filter Where ";
  if (bk == 0) {
    fig14 += "1 = 0";  // No bound attribute can match any interval.
  } else {
    for (size_t j = 0; j < bk; ++j) {
      const std::string a = "[fa" + std::to_string(j) + "]";
      const std::string e = "[fv" + std::to_string(j) + "]";
      if (j > 0) fig14 += " Or ";
      fig14 += "(Attribute = " + a + " And (LowerBound < " + e +
               " Or (LowerInclusive = TRUE And LowerBound = " + e +
               ")) And (" + e + " < UpperBound Or (UpperInclusive = TRUE "
               "And UpperBound = " + e + ")))";
    }
  }
  fig14 += " Group by PID";

  WFRM_ASSIGN_OR_RETURN(rel::SelectPtr fig13_stmt,
                        rel::SqlParser::ParseSelect(fig13));
  WFRM_ASSIGN_OR_RETURN(rel::SelectPtr fig14_stmt,
                        rel::SqlParser::ParseSelect(fig14));

  std::unique_lock<std::shared_mutex> lock(mu_);
  if (sql_shapes_.count(shape_key) > 0) return fig15;  // Lost the race.
  db_.CreateOrReplaceView(
      rp, {"PID", "GroupID", "NumberOfIntervals", "WhereClause"},
      std::move(fig13_stmt));
  db_.CreateOrReplaceView(rf, {"PID", "NumberOfIntervals"},
                          std::move(fig14_stmt));
  sql_shapes_.insert(shape_key);
  return fig15;
}

Result<std::vector<RelevantRequirement>> PolicyStore::RelevantRequirementsSql(
    const std::string& resource, const std::string& activity,
    const rel::ParamMap& spec) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_ancestors,
                        org_->resources().Ancestors(resource));
  const size_t ba = ShapeBucket(act_ancestors.size());
  const size_t br = ShapeBucket(res_ancestors.size());
  const size_t bk = spec.empty() ? 0 : ShapeBucket(spec.size());
  WFRM_ASSIGN_OR_RETURN(std::string fig15, EnsureSqlShape(ba, br, bk));

  // Bind the shape's parameters; slots beyond the real list repeat the
  // last element, which In-list/Or set semantics make a no-op.
  rel::ParamMap params;
  for (size_t i = 0; i < ba; ++i) {
    params["qa" + std::to_string(i)] = rel::Value::String(
        act_ancestors[std::min(i, act_ancestors.size() - 1)]);
  }
  for (size_t i = 0; i < br; ++i) {
    params["qr" + std::to_string(i)] = rel::Value::String(
        res_ancestors[std::min(i, res_ancestors.size() - 1)]);
  }
  if (bk > 0) {
    // Sorted for a deterministic slot assignment.
    std::vector<std::pair<std::string, std::string>> enc_spec;
    enc_spec.reserve(spec.size());
    for (const auto& [attr, value] : spec) {
      WFRM_ASSIGN_OR_RETURN(std::string enc, EncodeKey(value));
      enc_spec.emplace_back(attr, std::move(enc));
    }
    std::sort(enc_spec.begin(), enc_spec.end());
    for (size_t j = 0; j < bk; ++j) {
      const auto& [attr, enc] = enc_spec[std::min(j, enc_spec.size() - 1)];
      params["fa" + std::to_string(j)] = rel::Value::String(attr);
      params["fv" + std::to_string(j)] = rel::Value::String(enc);
    }
  }

  std::shared_lock<std::shared_mutex> lock(mu_);
  rel::ExecOptions opts;
  opts.use_indexes = use_indexes_;
  rel::Executor exec(&db_, opts);
  rel::PlanLookup outcome = rel::PlanLookup::kMiss;
  WFRM_ASSIGN_OR_RETURN(std::shared_ptr<const rel::PreparedQuery> plan,
                        plan_cache_.GetOrPrepare(exec, fig15, &outcome));
  NotePlanLookup(outcome);
  WFRM_ASSIGN_OR_RETURN(rel::ResultSet rs, exec.Execute(*plan, params));
  stats_.candidate_rows += exec.stats().rows_scanned;

  std::vector<RelevantRequirement> out;
  out.reserve(rs.rows.size());
  for (const rel::Row& row : rs.rows) {
    out.push_back(RelevantRequirement{row[0].int_value(), row[1].int_value(),
                                      row[2].string_value()});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return out;
}

/// The Policies-first join order: Figure 13 candidates drive, each
/// verified against its own Filter rows. Complexity is
/// O(candidates · i) hash lookups instead of per-attribute range scans.
Result<std::vector<RelevantRequirement>>
PolicyStore::RelevantRequirementsPoliciesFirst(
    const std::string& resource, const std::string& activity,
    const rel::ParamMap& spec) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_ancestors,
                        org_->resources().Ancestors(resource));
  WFRM_ASSIGN_OR_RETURN(
      std::vector<CandidateRow> candidates,
      CandidatePolicies(kPolicies, act_ancestors, res_ancestors));

  // Pre-encode the specification once.
  std::unordered_map<std::string, std::string> encoded;
  for (const auto& [attr, value] : spec) {
    WFRM_ASSIGN_OR_RETURN(std::string enc, EncodeKey(value));
    encoded.emplace(attr, std::move(enc));
  }

  const rel::Table* filter = db_.GetTable(kFilter);
  const rel::HashIndex* by_pid = filter->hash_indexes()[0].get();

  std::vector<RelevantRequirement> out;
  for (const CandidateRow& c : candidates) {
    bool all_enclose = true;
    if (c.num_intervals > 0) {
      if (use_indexes_) {
        std::vector<rel::RowId> rids =
            by_pid->Lookup({rel::Value::Int(c.pid)});
        int64_t enclosing = 0;
        for (rel::RowId rid : rids) {
          if (!filter->IsLive(rid)) continue;
          ++stats_.interval_rows;
          const rel::Row& row = filter->row(rid);
          auto it = encoded.find(row[1].string_value());
          if (it == encoded.end()) continue;
          const std::string& enc = it->second;
          const std::string& lo = row[2].string_value();
          const std::string& up = row[3].string_value();
          if (enc < lo || (enc == lo && !row[4].bool_value())) continue;
          if (up < enc || (enc == up && !row[5].bool_value())) continue;
          ++enclosing;
        }
        all_enclose = enclosing == c.num_intervals;
      } else {
        int64_t enclosing = 0;
        filter->ForEach([&](rel::RowId, const rel::Row& row) {
          if (row[0].int_value() != c.pid) return;
          ++stats_.interval_rows;
          auto it = encoded.find(row[1].string_value());
          if (it == encoded.end()) return;
          const std::string& enc = it->second;
          const std::string& lo = row[2].string_value();
          const std::string& up = row[3].string_value();
          if (enc < lo || (enc == lo && !row[4].bool_value())) return;
          if (up < enc || (enc == up && !row[5].bool_value())) return;
          ++enclosing;
        });
        all_enclose = enclosing == c.num_intervals;
      }
    }
    if (all_enclose) {
      out.push_back(RelevantRequirement{c.pid, c.group,
                                        (*c.row)[5].string_value()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return out;
}

Result<std::shared_ptr<const CompiledPolicyTable>>
PolicyStore::BuildCompiledLocked(const std::string& resource,
                                 const std::string& activity) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_ancestors,
                        org_->resources().Ancestors(resource));
  WFRM_ASSIGN_OR_RETURN(
      std::vector<CandidateRow> candidates,
      CandidatePolicies(kPolicies, act_ancestors, res_ancestors));
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateRow& a, const CandidateRow& b) {
              return a.pid < b.pid;
            });

  auto table = std::make_shared<CompiledPolicyTable>();
  table->pids.reserve(candidates.size());
  table->groups.reserve(candidates.size());
  table->num_intervals.reserve(candidates.size());
  table->where_clauses.reserve(candidates.size());

  // Gather each candidate's interval rows into per-attribute partitions
  // (row tuple: lo, hi, lo_incl, hi_incl, entry).
  struct IntervalRow {
    std::string lo, hi;
    uint8_t lo_incl, hi_incl;
    uint32_t entry;
  };
  std::map<std::string, std::vector<IntervalRow>> by_attr;
  const rel::Table* filter = db_.GetTable(kFilter);
  const rel::HashIndex* by_pid = filter->hash_indexes()[0].get();

  for (const CandidateRow& c : candidates) {
    const uint32_t entry = static_cast<uint32_t>(table->pids.size());
    table->pids.push_back(c.pid);
    table->groups.push_back(c.group);
    table->num_intervals.push_back(c.num_intervals);
    table->where_clauses.push_back((*c.row)[5].string_value());
    if (c.num_intervals == 0) continue;
    for (rel::RowId rid : by_pid->Lookup({rel::Value::Int(c.pid)})) {
      if (!filter->IsLive(rid)) continue;
      ++stats_.interval_rows;
      const rel::Row& row = filter->row(rid);
      by_attr[row[1].string_value()].push_back(
          IntervalRow{row[2].string_value(), row[3].string_value(),
                      static_cast<uint8_t>(row[4].bool_value() ? 1 : 0),
                      static_cast<uint8_t>(row[5].bool_value() ? 1 : 0),
                      entry});
    }
  }

  table->partitions.reserve(by_attr.size());
  for (auto& [attr, rows] : by_attr) {
    std::sort(rows.begin(), rows.end(),
              [](const IntervalRow& a, const IntervalRow& b) {
                return a.lo < b.lo;
              });
    CompiledPolicyTable::AttrPartition p;
    p.attribute = attr;
    p.lo.reserve(rows.size());
    p.hi.reserve(rows.size());
    p.lo_incl.reserve(rows.size());
    p.hi_incl.reserve(rows.size());
    p.entry.reserve(rows.size());
    for (IntervalRow& r : rows) {
      p.lo.push_back(std::move(r.lo));
      p.hi.push_back(std::move(r.hi));
      p.lo_incl.push_back(r.lo_incl);
      p.hi_incl.push_back(r.hi_incl);
      p.entry.push_back(r.entry);
    }
    table->partitions.push_back(std::move(p));
  }
  // std::map iteration already yields attribute-sorted partitions.
  return std::shared_ptr<const CompiledPolicyTable>(std::move(table));
}

Result<std::vector<RelevantRequirement>>
PolicyStore::RelevantRequirementsCompiled(const std::string& resource,
                                          const std::string& activity,
                                          const rel::ParamMap& spec) const {
  std::string key;
  AppendCacheKeyPart(&key, resource);
  AppendCacheKeyPart(&key, activity);
  const uint64_t observed_epoch = epoch();
  std::shared_ptr<const CompiledPolicyTable> table;
  CacheLookup lookup;  // Build-vs-reuse is tracked by compiled_builds.
  if (auto hit = compiled_cache_.Get(key, observed_epoch, &lookup)) {
    table = std::move(*hit);
  } else {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      WFRM_ASSIGN_OR_RETURN(table, BuildCompiledLocked(resource, activity));
    }
    NoteCompiledBuild();
    // Publish only if no mutation raced the build.
    if (epoch() == observed_epoch) {
      compiled_cache_.Put(key, observed_epoch, table);
    }
  }

  std::vector<std::pair<std::string, std::string>> enc_spec;
  enc_spec.reserve(spec.size());
  for (const auto& [attr, value] : spec) {
    WFRM_ASSIGN_OR_RETURN(std::string enc, EncodeKey(value));
    enc_spec.emplace_back(attr, std::move(enc));
  }
  NoteCompiledProbe();
  return table->Probe(enc_spec);
}

SelectivityParams PolicyStore::EstimateParamsLocked() const {
  SelectivityParams p;
  p.num_activities = std::max<size_t>(2, org_->activities().size());
  p.num_resources = std::max<size_t>(2, org_->resources().size());
  const rel::Table* policies = db_.GetTable(kPolicies);
  const rel::Table* filter = db_.GetTable(kFilter);
  double n = static_cast<double>(policies->num_rows());
  // Distinct (Activity, Resource) pairs straight off the concatenated
  // index.
  double pairs = static_cast<double>(
      std::max<size_t>(1, policies->ordered_indexes()[0]->num_keys()));
  p.c = std::max(1.0, n / pairs);
  p.q = std::max(1.0, pairs / static_cast<double>(p.num_resources));
  p.intervals_per_range =
      n == 0 ? 1.0 : static_cast<double>(filter->num_rows()) / n;
  return p;
}

SelectivityParams PolicyStore::EstimateParams() const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return EstimateParamsLocked();
}

bool PolicyStore::PreferPoliciesFirstLocked(size_t num_spec_attributes) const {
  SelectivityParams p = EstimateParamsLocked();
  const rel::Table* policies = db_.GetTable(kPolicies);
  const rel::Table* filter = db_.GetTable(kFilter);
  double n = static_cast<double>(policies->num_rows());
  double f = static_cast<double>(filter->num_rows());
  // Policies-first verifies each expected Figure 13 candidate against
  // its i interval rows (hash lookups).
  double cost_policies_first =
      SelectivityPolicies(p) * n * std::max(1.0, p.intervals_per_range);
  // Filter-first issues one (Attribute, LowerBound <= x) range probe per
  // bound attribute; each visits about half of that attribute's
  // partition of Filter, matched or not.
  double attrs =
      static_cast<double>(std::max<size_t>(1, filter_attr_counts_.size()));
  double cost_filter_first =
      static_cast<double>(std::max<size_t>(1, num_spec_attributes)) * f /
      (2.0 * attrs);
  return cost_policies_first < cost_filter_first;
}

bool PolicyStore::PreferPoliciesFirst(size_t num_spec_attributes) const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return PreferPoliciesFirstLocked(num_spec_attributes);
}

size_t PolicyStore::num_filter_attributes() const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return filter_attr_counts_.size();
}

Result<std::vector<RelevantRequirement>> PolicyStore::RelevantRequirements(
    const std::string& resource, const std::string& activity,
    const rel::ParamMap& spec) const {
  NoteRetrieval();
  WFRM_RETURN_NOT_OK(EnsureHydratedForActivity(activity));
  WFRM_ASSIGN_OR_RETURN(std::string res,
                        org_->resources().Canonical(resource));
  WFRM_ASSIGN_OR_RETURN(std::string act,
                        org_->activities().Canonical(activity));
  rel::ParamMap canonical_spec = CanonicalizeSpec(act, spec);

  const bool use_cache = cache_enabled();
  std::string key;
  uint64_t observed_epoch = 0;
  if (use_cache) {
    key = RetrievalCacheKey("req", res, act, canonical_spec);
    observed_epoch = epoch();
    CacheLookup outcome;
    if (auto hit = requirement_cache_.Get(key, observed_epoch, &outcome)) {
      NoteRetrievalHit();
      return *hit;
    }
    NoteRetrievalMiss(outcome);
  }

  Result<std::vector<RelevantRequirement>> result =
      std::vector<RelevantRequirement>{};
  if (retrieval_mode() == RetrievalMode::kSql) {
    // Locks internally: shared for execution, exclusive only when a new
    // query shape registers its views.
    result = RelevantRequirementsSql(res, act, canonical_spec);
  } else if (compiled_enabled()) {
    // Locks internally: shared while building; probes are lock-free.
    result = RelevantRequirementsCompiled(res, act, canonical_spec);
  } else {
    std::shared_lock<std::shared_mutex> lock(mu_);
    DirectPlan plan = direct_plan();
    bool policies_first =
        plan == DirectPlan::kPoliciesFirst ||
        (plan == DirectPlan::kAdaptive &&
         PreferPoliciesFirstLocked(canonical_spec.size()));
    if (policies_first) {
      ++stats_.plans_policies_first;
      result = RelevantRequirementsPoliciesFirst(res, act, canonical_spec);
    } else {
      ++stats_.plans_filter_first;
      result = RelevantRequirementsDirect(res, act, canonical_spec);
    }
  }
  if (use_cache && result.ok() && epoch() == observed_epoch) {
    requirement_cache_.Put(key, observed_epoch, *result);
  }
  return result;
}

// ---- Substitution retrieval --------------------------------------------------

Result<std::vector<RelevantSubstitution>>
PolicyStore::RelevantSubstitutionsLocked(const std::string& res,
                                         const rel::Expr* query_where,
                                         const std::string& act,
                                         const rel::ParamMap& spec) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_ancestors,
                        org_->activities().Ancestors(act));
  // §4.3 condition 1: the substituted resource shares a sub-type with
  // the query's resource. In a tree hierarchy that holds exactly when
  // one is an ancestor of the other (the query resource implies all its
  // sub-types, footnote 1).
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_related,
                        org_->resources().Ancestors(res));
  {
    WFRM_ASSIGN_OR_RETURN(std::vector<std::string> desc,
                          org_->resources().Descendants(res));
    // Descendants() includes `res` which Ancestors() already lists.
    for (std::string& d : desc) {
      if (!EqualsIgnoreCase(d, res)) res_related.push_back(std::move(d));
    }
  }

  WFRM_ASSIGN_OR_RETURN(
      std::vector<CandidateRow> candidates,
      CandidatePolicies(kSubstPolicies, act_ancestors, res_related));
  WFRM_ASSIGN_OR_RETURN(auto counts,
                        CountEnclosingIntervals(kSubstFilter, spec));

  // §4.3 condition 2: the resource ranges intersect. The query side is
  // a disjunct list too, so `Where Age != 30` (which normalizes to
  // `< 30 Or > 30`) is not silently widened into matching a policy
  // range of exactly [30, 30].
  std::vector<ConjunctiveRange> query_ranges =
      QueryRangesForIntersection(query_where);

  std::vector<RelevantSubstitution> out;
  for (const CandidateRow& c : candidates) {
    auto it = counts.find(c.pid);
    int64_t enclosed = it == counts.end() ? 0 : it->second;
    if (!(c.num_intervals == 0 || enclosed == c.num_intervals)) continue;

    const rel::Row& row = *c.row;
    const std::string& substituted_where = row[5].string_value();
    if (!substituted_where.empty()) {
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr parsed,
                            rel::SqlParser::ParseExpr(substituted_where));
      WFRM_ASSIGN_OR_RETURN(std::vector<ConjunctiveRange> ranges,
                            NormalizeRangeClause(parsed.get()));
      bool intersects = false;
      for (const ConjunctiveRange& q : query_ranges) {
        for (const ConjunctiveRange& r : ranges) {
          WFRM_ASSIGN_OR_RETURN(bool x, RangesIntersect(q, r));
          if (x) {
            intersects = true;
            break;
          }
        }
        if (intersects) break;
      }
      if (!intersects) continue;
    }
    out.push_back(RelevantSubstitution{
        c.pid, c.group, row[3].string_value(), substituted_where,
        row[6].string_value(), row[7].string_value()});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return out;
}

Result<std::vector<RelevantSubstitution>> PolicyStore::RelevantSubstitutions(
    const std::string& resource, const rel::Expr* query_where,
    const std::string& activity, const rel::ParamMap& spec) const {
  NoteRetrieval();
  WFRM_RETURN_NOT_OK(EnsureHydratedForActivity(activity));
  WFRM_ASSIGN_OR_RETURN(std::string res,
                        org_->resources().Canonical(resource));
  WFRM_ASSIGN_OR_RETURN(std::string act,
                        org_->activities().Canonical(activity));
  rel::ParamMap canonical_spec = CanonicalizeSpec(act, spec);

  const bool use_cache = cache_enabled();
  std::string key;
  uint64_t observed_epoch = 0;
  if (use_cache) {
    key = RetrievalCacheKey("subst", res, act, canonical_spec);
    AppendCacheKeyPart(&key, query_where ? query_where->ToString() : "");
    observed_epoch = epoch();
    CacheLookup outcome;
    if (auto hit = substitution_cache_.Get(key, observed_epoch, &outcome)) {
      NoteRetrievalHit();
      return *hit;
    }
    NoteRetrievalMiss(outcome);
  }

  Result<std::vector<RelevantSubstitution>> result =
      std::vector<RelevantSubstitution>{};
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    result = RelevantSubstitutionsLocked(res, query_where, act,
                                         canonical_spec);
  }
  if (use_cache && result.ok() && epoch() == observed_epoch) {
    substitution_cache_.Put(key, observed_epoch, *result);
  }
  return result;
}

Result<PolicyStore::ViewSelectivity> PolicyStore::MeasureViewSelectivity(
    const std::string& resource, const std::string& activity,
    const rel::ParamMap& spec) const {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  WFRM_ASSIGN_OR_RETURN(std::string res, org_->resources().Canonical(resource));
  WFRM_ASSIGN_OR_RETURN(std::string act, org_->activities().Canonical(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_anc,
                        org_->activities().Ancestors(act));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_anc,
                        org_->resources().Ancestors(res));
  NameSet act_set = ToSet(act_anc);
  NameSet res_set = ToSet(res_anc);

  std::shared_lock<std::shared_mutex> lock(mu_);
  ViewSelectivity out;
  const rel::Table* policies = db_.GetTable(kPolicies);
  policies->ForEach([&](rel::RowId, const rel::Row& row) {
    if (act_set.count(row[2].string_value()) > 0 &&
        res_set.count(row[3].string_value()) > 0) {
      ++out.policies_matched;
    }
  });

  rel::ParamMap canonical = CanonicalizeSpec(act, spec);
  std::unordered_map<std::string, std::string> encoded;
  for (const auto& [attr, value] : canonical) {
    WFRM_ASSIGN_OR_RETURN(std::string enc, EncodeKey(value));
    encoded.emplace(attr, std::move(enc));
  }
  const rel::Table* filter = db_.GetTable(kFilter);
  Status st = Status::OK();
  filter->ForEach([&](rel::RowId, const rel::Row& row) {
    auto it = encoded.find(row[1].string_value());
    if (it == encoded.end()) return;
    const std::string& enc = it->second;
    const std::string& lo = row[2].string_value();
    const std::string& up = row[3].string_value();
    if (enc < lo || (enc == lo && !row[4].bool_value())) return;
    if (up < enc || (enc == up && !row[5].bool_value())) return;
    ++out.filter_matched;
  });
  WFRM_RETURN_NOT_OK(st);

  size_t policies_total = policies->num_rows();
  size_t filter_total = filter->num_rows();
  out.policies_rate = policies_total == 0
                          ? 0.0
                          : static_cast<double>(out.policies_matched) /
                                static_cast<double>(policies_total);
  out.filter_rate = filter_total == 0
                        ? 0.0
                        : static_cast<double>(out.filter_matched) /
                              static_cast<double>(filter_total);
  return out;
}

Result<std::vector<PolicyStore::RequirementDiagnosis>>
PolicyStore::DiagnoseRequirements(const std::string& resource,
                                  const std::string& activity,
                                  const rel::ParamMap& spec) const {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  WFRM_ASSIGN_OR_RETURN(std::string res, org_->resources().Canonical(resource));
  WFRM_ASSIGN_OR_RETURN(std::string act,
                        org_->activities().Canonical(activity));
  rel::ParamMap bindings = CanonicalizeSpec(act, spec);
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(auto groups,
                        ListGroupsLocked(kPolicies, kFilter, false));

  std::vector<RequirementDiagnosis> out;
  out.reserve(groups.size());
  for (const auto& g : groups) {
    RequirementDiagnosis d;
    d.group = g.group;
    d.resource = g.resource;
    d.activity = g.activity;
    d.where_clause = g.where_clause;

    WFRM_ASSIGN_OR_RETURN(bool res_ok,
                          org_->resources().IsSubtypeOf(res, g.resource));
    if (!res_ok) {
      d.verdict = RequirementDiagnosis::Verdict::kResourceMismatch;
      d.detail = "'" + res + "' is not a sub-type of '" + g.resource + "'";
      out.push_back(std::move(d));
      continue;
    }
    WFRM_ASSIGN_OR_RETURN(bool act_ok,
                          org_->activities().IsSubtypeOf(act, g.activity));
    if (!act_ok) {
      d.verdict = RequirementDiagnosis::Verdict::kActivityMismatch;
      d.detail = "'" + act + "' is not a sub-type of '" + g.activity + "'";
      out.push_back(std::move(d));
      continue;
    }

    bool inside = false;
    for (const ConjunctiveRange& range : g.range_data) {
      WFRM_ASSIGN_OR_RETURN(bool x, RangeContainsBindings(range, bindings));
      if (x) {
        inside = true;
        break;
      }
    }
    if (!inside) {
      d.verdict = RequirementDiagnosis::Verdict::kRangeMismatch;
      // Point at the first failing attribute of the first disjunct.
      std::string why;
      if (!g.range_data.empty()) {
        for (const auto& [attr, interval] : g.range_data[0]) {
          auto it = bindings.find(attr);
          if (it == bindings.end()) {
            why = attr + " is unbound but constrained to " +
                  interval.ToString();
            break;
          }
          auto contains = interval.Contains(it->second);
          if (contains.ok() && !*contains) {
            why = attr + " = " + it->second.ToString() + " outside " +
                  interval.ToString();
            break;
          }
        }
      }
      d.detail = why.empty() ? "specification outside the activity range"
                             : why;
      out.push_back(std::move(d));
      continue;
    }
    d.verdict = RequirementDiagnosis::Verdict::kApplied;
    d.detail = "all §4.2 conditions hold";
    out.push_back(std::move(d));
  }
  return out;
}

Result<std::vector<PolicyStore::SubstitutionDiagnosis>>
PolicyStore::DiagnoseSubstitutions(const std::string& resource,
                                   const rel::Expr* query_where,
                                   const std::string& activity,
                                   const rel::ParamMap& spec) const {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  WFRM_ASSIGN_OR_RETURN(std::string res, org_->resources().Canonical(resource));
  WFRM_ASSIGN_OR_RETURN(std::string act,
                        org_->activities().Canonical(activity));
  rel::ParamMap bindings = CanonicalizeSpec(act, spec);
  std::vector<ConjunctiveRange> query_ranges =
      QueryRangesForIntersection(query_where);
  std::shared_lock<std::shared_mutex> lock(mu_);
  WFRM_ASSIGN_OR_RETURN(auto groups,
                        ListGroupsLocked(kSubstPolicies, kSubstFilter, true));

  std::vector<SubstitutionDiagnosis> out;
  out.reserve(groups.size());
  for (const auto& g : groups) {
    SubstitutionDiagnosis d;
    d.group = g.group;
    d.substituted_resource = g.resource;
    d.substituting_resource = g.substituting_resource;
    d.activity = g.activity;

    // §4.3 condition 1: common sub-type — in a tree, one must be the
    // other's (in)direct super-type (footnote 1: the query type implies
    // its sub-types).
    WFRM_ASSIGN_OR_RETURN(bool sub_ab,
                          org_->resources().IsSubtypeOf(res, g.resource));
    WFRM_ASSIGN_OR_RETURN(bool sub_ba,
                          org_->resources().IsSubtypeOf(g.resource, res));
    if (!sub_ab && !sub_ba) {
      d.verdict = SubstitutionDiagnosis::Verdict::kResourceUnrelated;
      d.detail = "'" + res + "' and substituted '" + g.resource +
                 "' share no sub-type";
      out.push_back(std::move(d));
      continue;
    }
    // Condition 3: policy activity is a super-type of the query's.
    WFRM_ASSIGN_OR_RETURN(bool act_ok,
                          org_->activities().IsSubtypeOf(act, g.activity));
    if (!act_ok) {
      d.verdict = SubstitutionDiagnosis::Verdict::kActivityMismatch;
      d.detail = "'" + act + "' is not a sub-type of '" + g.activity + "'";
      out.push_back(std::move(d));
      continue;
    }
    // Condition 4: specification inside the activity range.
    bool inside = false;
    for (const ConjunctiveRange& range : g.range_data) {
      WFRM_ASSIGN_OR_RETURN(bool x, RangeContainsBindings(range, bindings));
      if (x) {
        inside = true;
        break;
      }
    }
    if (!inside) {
      d.verdict = SubstitutionDiagnosis::Verdict::kRangeMismatch;
      d.detail = "specification outside the policy's activity range";
      out.push_back(std::move(d));
      continue;
    }
    // Condition 2: resource ranges intersect.
    bool intersects = true;
    if (!g.where_clause.empty()) {
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr parsed,
                            rel::SqlParser::ParseExpr(g.where_clause));
      WFRM_ASSIGN_OR_RETURN(std::vector<ConjunctiveRange> ranges,
                            NormalizeRangeClause(parsed.get()));
      intersects = false;
      for (const ConjunctiveRange& q : query_ranges) {
        for (const ConjunctiveRange& r : ranges) {
          WFRM_ASSIGN_OR_RETURN(bool x, RangesIntersect(q, r));
          if (x) {
            intersects = true;
            break;
          }
        }
        if (intersects) break;
      }
    }
    if (!intersects) {
      d.verdict = SubstitutionDiagnosis::Verdict::kResourceRangeDisjoint;
      d.detail =
          "query range " +
          (query_ranges.empty() ? std::string("(unsatisfiable)")
                                : RangeToString(query_ranges.front())) +
          " never meets substituted range '" + g.where_clause + "'";
      out.push_back(std::move(d));
      continue;
    }
    d.verdict = SubstitutionDiagnosis::Verdict::kApplied;
    d.detail = "all §4.3 conditions hold";
    out.push_back(std::move(d));
  }
  return out;
}

// ---- Introspection ----------------------------------------------------------

namespace {

/// Rebuilds the interval map of one policy row from its Filter rows.
Result<ConjunctiveRange> DecodeIntervalRows(
    const std::vector<const rel::Row*>& rows) {
  ConjunctiveRange range;
  for (const rel::Row* row : rows) {
    Interval iv;
    const std::string& lo = (*row)[2].string_value();
    const std::string& up = (*row)[3].string_value();
    if (lo != EncodedDomainMin()) {
      WFRM_ASSIGN_OR_RETURN(rel::Value v, DecodeKey(lo));
      iv.lower = std::move(v);
      iv.lower_inclusive = (*row)[4].bool_value();
    }
    if (up != EncodedDomainMax()) {
      WFRM_ASSIGN_OR_RETURN(rel::Value v, DecodeKey(up));
      iv.upper = std::move(v);
      iv.upper_inclusive = (*row)[5].bool_value();
    }
    range.emplace((*row)[1].string_value(), std::move(iv));
  }
  return range;
}

}  // namespace

std::vector<PolicyStore::StoredQualification>
PolicyStore::ListQualifications() const {
  // Best effort: the signature cannot report a hydration I/O failure, so
  // a failed load falls back to the (empty) in-memory view.
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<StoredQualification> out;
  db_.GetTable(kQualifications)->ForEach([&](rel::RowId, const rel::Row& row) {
    out.push_back(StoredQualification{
        row[0].int_value(),
        QualificationPolicy{row[1].string_value(), row[2].string_value()}});
  });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return out;
}

Result<std::vector<PolicyStore::StoredPolicyGroup>>
PolicyStore::ListGroupsLocked(const std::string& policy_table,
                              const std::string& filter_table,
                              bool substitution) const {
  const rel::Table* policies = db_.GetTable(policy_table);
  const rel::Table* filter = db_.GetTable(filter_table);

  std::unordered_map<int64_t, std::vector<const rel::Row*>> intervals_by_pid;
  filter->ForEach([&](rel::RowId, const rel::Row& row) {
    intervals_by_pid[row[0].int_value()].push_back(&row);
  });

  std::map<int64_t, StoredPolicyGroup> groups;
  Status st = Status::OK();
  policies->ForEach([&](rel::RowId, const rel::Row& row) {
    if (!st.ok()) return;
    int64_t group = row[1].int_value();
    StoredPolicyGroup& g = groups[group];
    g.group = group;
    g.pids.push_back(row[0].int_value());
    g.activity = row[2].string_value();
    g.resource = row[3].string_value();
    g.where_clause = row[5].string_value();
    if (substitution) {
      g.substituting_resource = row[6].string_value();
      g.substituting_where = row[7].string_value();
    }
    auto decoded = DecodeIntervalRows(intervals_by_pid[row[0].int_value()]);
    if (!decoded.ok()) {
      st = decoded.status();
      return;
    }
    g.ranges.push_back(RangeToString(*decoded));
    g.range_data.push_back(std::move(decoded).ValueOrDie());
  });
  WFRM_RETURN_NOT_OK(st);

  std::vector<StoredPolicyGroup> out;
  out.reserve(groups.size());
  for (auto& [group, g] : groups) out.push_back(std::move(g));
  return out;
}

Result<std::vector<PolicyStore::StoredPolicyGroup>>
PolicyStore::ListRequirements() const {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ListGroupsLocked(kPolicies, kFilter, false);
}

Result<std::vector<PolicyStore::StoredPolicyGroup>>
PolicyStore::ListSubstitutions() const {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ListGroupsLocked(kSubstPolicies, kSubstFilter, true);
}

// ---- Persistence ------------------------------------------------------------

namespace {

std::vector<rel::Row> CopyRows(const rel::Table* table) {
  std::vector<rel::Row> rows;
  rows.reserve(table->num_rows());
  table->ForEach([&](rel::RowId, const rel::Row& row) { rows.push_back(row); });
  return rows;
}

}  // namespace

PolicyStore::Image PolicyStore::ExportImage() const {
  // Best effort: a failed hydration exports whatever is resident.
  // Callers that must see the full base (checkpoint capture) call
  // EnsureHydrated() themselves first and propagate its status.
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  Image image;
  image.qualifications = CopyRows(db_.GetTable(kQualifications));
  image.policies = CopyRows(db_.GetTable(kPolicies));
  image.filter = CopyRows(db_.GetTable(kFilter));
  image.subst_policies = CopyRows(db_.GetTable(kSubstPolicies));
  image.subst_filter = CopyRows(db_.GetTable(kSubstFilter));
  image.next_pid = next_pid_;
  image.next_group = next_group_;
  image.epoch = epoch_.load(std::memory_order_acquire);
  return image;
}

Status PolicyStore::ImportImage(const Image& image) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  WFRM_RETURN_NOT_OK(ImportImageLocked(image));
  // The base was replaced wholesale: per-row deltas no longer describe
  // the durable-to-memory difference, and the in-memory tables are now
  // authoritative regardless of any lazy source.
  if (delta_tracking_) {
    deltas_overflowed_ = true;
    pending_deltas_.clear();
  }
  hydrated_.store(true, std::memory_order_release);
  return Status::OK();
}

Status PolicyStore::ImportImageLocked(const Image& image) {
  struct Load {
    const char* table;
    const std::vector<rel::Row>* rows;
  };
  const Load loads[] = {{kQualifications, &image.qualifications},
                        {kPolicies, &image.policies},
                        {kFilter, &image.filter},
                        {kSubstPolicies, &image.subst_policies},
                        {kSubstFilter, &image.subst_filter}};
  for (const Load& load : loads) {
    rel::Table* table = db_.GetTable(load.table);
    table->Clear();
    for (const rel::Row& row : *load.rows) {
      WFRM_RETURN_NOT_OK(table->Insert(row).status());
    }
  }
  filter_attr_counts_.clear();
  for (const rel::Row& row : image.filter) {
    ++filter_attr_counts_[row[1].string_value()];
  }
  next_pid_ = image.next_pid;
  next_group_ = image.next_group;
  epoch_.store(image.epoch, std::memory_order_release);
  qualified_cache_.Clear();
  requirement_cache_.Clear();
  substitution_cache_.Clear();
  compiled_cache_.Clear();
  plan_cache_.Clear();
  return Status::OK();
}

Status PolicyStore::RemoveQualification(int64_t pid) {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  std::unique_lock<std::shared_mutex> lock(mu_);
  rel::Table* quals = db_.GetTable(kQualifications);
  std::vector<rel::RowId> to_delete;
  std::vector<rel::Row> removed;
  quals->ForEach([&](rel::RowId rid, const rel::Row& row) {
    if (row[0].int_value() == pid) {
      to_delete.push_back(rid);
      removed.push_back(row);
    }
  });
  if (to_delete.empty()) {
    return Status::NotFound("no qualification policy with PID " +
                            std::to_string(pid));
  }
  for (rel::RowId rid : to_delete) WFRM_RETURN_NOT_OK(quals->Delete(rid));
  for (const rel::Row& row : removed) {
    RecordDelta(kQualifications, /*deleted=*/true, row);
  }
  BumpEpoch();
  return Status::OK();
}

namespace {

/// Deletes every row of `group` from the policy/filter pair; the removed
/// rows are reported so the caller can emit checkpoint deltas.
Status RemoveGroupFrom(rel::Table* policies, rel::Table* filter,
                       int64_t group, std::vector<rel::Row>* removed_policies,
                       std::vector<rel::Row>* removed_filter) {
  std::vector<rel::RowId> policy_rids;
  std::unordered_set<int64_t> pids;
  policies->ForEach([&](rel::RowId rid, const rel::Row& row) {
    if (row[1].int_value() == group) {
      policy_rids.push_back(rid);
      pids.insert(row[0].int_value());
      removed_policies->push_back(row);
    }
  });
  if (policy_rids.empty()) {
    return Status::NotFound("no policy group " + std::to_string(group));
  }
  std::vector<rel::RowId> filter_rids;
  filter->ForEach([&](rel::RowId rid, const rel::Row& row) {
    if (pids.count(row[0].int_value()) > 0) {
      filter_rids.push_back(rid);
      removed_filter->push_back(row);
    }
  });
  for (rel::RowId rid : policy_rids) WFRM_RETURN_NOT_OK(policies->Delete(rid));
  for (rel::RowId rid : filter_rids) WFRM_RETURN_NOT_OK(filter->Delete(rid));
  return Status::OK();
}

}  // namespace

Status PolicyStore::RemoveRequirementGroup(int64_t group) {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Capture the interval attributes being removed to keep the adaptive
  // planner's statistics in step.
  rel::Table* policies = db_.GetTable(kPolicies);
  rel::Table* filter = db_.GetTable(kFilter);
  std::unordered_set<int64_t> pids;
  policies->ForEach([&](rel::RowId, const rel::Row& row) {
    if (row[1].int_value() == group) pids.insert(row[0].int_value());
  });
  std::vector<std::string> removed_attrs;
  filter->ForEach([&](rel::RowId, const rel::Row& row) {
    if (pids.count(row[0].int_value()) > 0) {
      removed_attrs.push_back(row[1].string_value());
    }
  });
  std::vector<rel::Row> removed_policies;
  std::vector<rel::Row> removed_filter;
  WFRM_RETURN_NOT_OK(RemoveGroupFrom(policies, filter, group,
                                     &removed_policies, &removed_filter));
  for (const rel::Row& row : removed_policies) {
    RecordDelta(kPolicies, /*deleted=*/true, row);
  }
  for (const rel::Row& row : removed_filter) {
    RecordDelta(kFilter, /*deleted=*/true, row);
  }
  for (const std::string& attr : removed_attrs) {
    auto it = filter_attr_counts_.find(attr);
    if (it != filter_attr_counts_.end() && --it->second == 0) {
      filter_attr_counts_.erase(it);
    }
  }
  BumpEpoch();
  return Status::OK();
}

Status PolicyStore::RemoveSubstitutionGroup(int64_t group) {
  WFRM_RETURN_NOT_OK(EnsureHydrated());
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<rel::Row> removed_policies;
  std::vector<rel::Row> removed_filter;
  WFRM_RETURN_NOT_OK(RemoveGroupFrom(db_.GetTable(kSubstPolicies),
                                     db_.GetTable(kSubstFilter), group,
                                     &removed_policies, &removed_filter));
  for (const rel::Row& row : removed_policies) {
    RecordDelta(kSubstPolicies, /*deleted=*/true, row);
  }
  for (const rel::Row& row : removed_filter) {
    RecordDelta(kSubstFilter, /*deleted=*/true, row);
  }
  BumpEpoch();
  return Status::OK();
}

size_t PolicyStore::num_qualification_rows() const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return db_.GetTable(kQualifications)->num_rows();
}
size_t PolicyStore::num_requirement_rows() const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return db_.GetTable(kPolicies)->num_rows();
}
size_t PolicyStore::num_requirement_interval_rows() const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return db_.GetTable(kFilter)->num_rows();
}
size_t PolicyStore::num_substitution_rows() const {
  (void)EnsureHydrated();
  std::shared_lock<std::shared_mutex> lock(mu_);
  return db_.GetTable(kSubstPolicies)->num_rows();
}

// ---- Lazy hydration and delta tracking ------------------------------------

void PolicyStore::AttachLazySource(std::shared_ptr<PolicyImageSource> source,
                                   int64_t next_pid, int64_t next_group,
                                   uint64_t epoch) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  source_ = std::move(source);
  next_pid_ = next_pid;
  next_group_ = next_group;
  epoch_.store(epoch, std::memory_order_release);
  hydrated_.store(source_ == nullptr, std::memory_order_release);
}

Status PolicyStore::EnsureHydrated() const {
  if (hydrated_.load(std::memory_order_acquire)) return Status::OK();
  // Hydration mutates the tables, but is semantically a const read of
  // the durable policy base into cache.
  return const_cast<PolicyStore*>(this)->HydrateNow();
}

Status PolicyStore::EnsureHydratedForActivity(
    const std::string& activity) const {
  if (hydrated_.load(std::memory_order_acquire)) return Status::OK();
  std::shared_ptr<PolicyImageSource> source;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (hydrated_.load(std::memory_order_acquire)) return Status::OK();
    source = source_;
  }
  if (source == nullptr) return Status::OK();
  stats_.bloom_probes.fetch_add(1, std::memory_order_relaxed);
  // A policy on any ancestor activity can apply to `activity`
  // (retrieval walks the activity hierarchy), so skipping hydration is
  // only safe when the whole ancestor chain is bloom-negative. An
  // activity the org model does not know yields an empty ancestor set;
  // retrieval will fail on canonicalization either way, so answering
  // from the empty resident tables is fine.
  std::vector<std::string> chain;
  if (Result<std::vector<std::string>> anc =
          org_->activities().Ancestors(activity);
      anc.ok()) {
    chain = *std::move(anc);
  }
  if (chain.empty()) chain.push_back(activity);
  for (const std::string& act : chain) {
    if (source->MayHaveActivity(act)) {
      return const_cast<PolicyStore*>(this)->HydrateNow();
    }
  }
  stats_.bloom_skips.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PolicyStore::HydrateNow() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (hydrated_.load(std::memory_order_acquire)) return Status::OK();
  WFRM_ASSIGN_OR_RETURN(Image image, source_->LoadImage());
  // Counters and epoch were already seeded by AttachLazySource and may
  // have advanced past the stored image (WAL-tail replay); keep the
  // live values, not the image's.
  image.next_pid = next_pid_;
  image.next_group = next_group_;
  image.epoch = epoch_.load(std::memory_order_acquire);
  WFRM_RETURN_NOT_OK(ImportImageLocked(image));
  hydrated_.store(true, std::memory_order_release);
  return Status::OK();
}

void PolicyStore::set_delta_tracking(bool enabled) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  delta_tracking_ = enabled;
  if (!enabled) {
    pending_deltas_.clear();
    deltas_overflowed_ = false;
  }
}

PendingPolicyDeltas PolicyStore::TakePendingDeltas() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  PendingPolicyDeltas out;
  out.deltas = std::move(pending_deltas_);
  out.overflowed = deltas_overflowed_;
  pending_deltas_.clear();
  deltas_overflowed_ = false;
  return out;
}

int64_t PolicyStore::next_pid() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return next_pid_;
}

int64_t PolicyStore::next_group() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return next_group_;
}

void PolicyStore::RecordDelta(std::string_view table, bool deleted,
                              const rel::Row& row) {
  if (!delta_tracking_ || deltas_overflowed_) return;
  // Bound the buffer: a checkpoint that never drains (or a bulk load)
  // degrades to a full image rewrite instead of unbounded memory.
  constexpr size_t kMaxPendingDeltas = size_t{1} << 20;
  if (pending_deltas_.size() >= kMaxPendingDeltas) {
    deltas_overflowed_ = true;
    pending_deltas_.clear();
    return;
  }
  PolicyRelation relation;
  if (table == kQualifications) {
    relation = PolicyRelation::kQualifications;
  } else if (table == kPolicies) {
    relation = PolicyRelation::kPolicies;
  } else if (table == kFilter) {
    relation = PolicyRelation::kFilter;
  } else if (table == kSubstPolicies) {
    relation = PolicyRelation::kSubstPolicies;
  } else {
    relation = PolicyRelation::kSubstFilter;
  }
  pending_deltas_.push_back(PolicyRowDelta{relation, deleted, row});
}

}  // namespace wfrm::policy
