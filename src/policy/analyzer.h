#ifndef WFRM_POLICY_ANALYZER_H_
#define WFRM_POLICY_ANALYZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "policy/policy_store.h"

namespace wfrm::policy {

/// Static analysis of a policy base — the management side of §1.2's
/// observation that "all policies in a system constitute a set of
/// constraints upon which 'legal' actions or 'consistent' states are
/// defined". The analyzer surfaces three classes of problems before they
/// bite at allocation time:
///
/// * dead activities: activity types no resource type is qualified for
///   (the CWA makes every request for them fail);
/// * idle resource types: resource types qualified for no activity;
/// * conflicting requirements: And-related requirement policies that can
///   apply to the same query and whose Where conditions are mutually
///   unsatisfiable over their overlapping activity range — every
///   matching request is guaranteed to return nothing.
class PolicyAnalyzer {
 public:
  explicit PolicyAnalyzer(const PolicyStore* store) : store_(store) {}

  /// Leaf-to-root reachable activity types with no qualified resource
  /// type at all.
  Result<std::vector<std::string>> DeadActivities() const;

  /// Resource types (including via inheritance) qualified for nothing.
  Result<std::vector<std::string>> IdleResourceTypes() const;

  /// A pair of requirement groups that can both apply to some query and
  /// whose resource conditions contradict each other (or a single group
  /// whose condition is self-contradictory with another's on the same
  /// attribute).
  struct RequirementConflict {
    int64_t group_a = 0;
    int64_t group_b = 0;
    std::string resource;   // The more specific of the two types.
    std::string activity;   // The more specific of the two types.
    std::string detail;     // Human-readable explanation.
  };

  /// Detects conflicts among requirement policies. The check is sound
  /// but incomplete: it reasons over the interval-decomposable parts of
  /// the Where clauses (the same representation §5.1 uses for ranges),
  /// so conditions like nested sub-queries are treated as opaque and
  /// never reported. A reported conflict is a real one.
  Result<std::vector<RequirementConflict>> RequirementConflicts() const;

  /// Substitution groups whose substituting description can never match
  /// a *qualified* resource: the substituting resource type (with every
  /// sub-type) is not qualified for the policy's activity, so the §2.1
  /// alternative pipeline will always fan out to nothing.
  Result<std::vector<int64_t>> UselessSubstitutions() const;

  /// Runs everything and renders a report.
  Result<std::string> Report() const;

 private:
  const PolicyStore* store_;
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_ANALYZER_H_
