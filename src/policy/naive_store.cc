#include "policy/naive_store.h"

#include <algorithm>
#include <unordered_set>

#include "policy/dnf.h"
#include "rel/parser.h"

namespace wfrm::policy {

Result<int64_t> NaivePolicyStore::AddRequirement(const RequirementPolicy& p) {
  WFRM_ASSIGN_OR_RETURN(std::string resource,
                        org_->resources().Canonical(p.resource));
  WFRM_ASSIGN_OR_RETURN(std::string activity,
                        org_->activities().Canonical(p.activity));
  int64_t pid = next_pid_++;
  rows_.push_back(NaiveRow{pid, activity, resource,
                           p.with ? p.with->ToString() : "",
                           p.where ? p.where->ToString() : ""});
  return pid;
}

Result<std::vector<RelevantRequirement>>
NaivePolicyStore::RelevantRequirements(const std::string& resource,
                                       const std::string& activity,
                                       const rel::ParamMap& spec) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> act_anc,
                        org_->activities().Ancestors(activity));
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> res_anc,
                        org_->resources().Ancestors(resource));
  std::unordered_set<std::string, CaseInsensitiveHash, CaseInsensitiveEq>
      act_set(act_anc.begin(), act_anc.end()),
      res_set(res_anc.begin(), res_anc.end());

  std::vector<RelevantRequirement> out;
  for (const NaiveRow& row : rows_) {
    if (act_set.count(row.activity) == 0 || res_set.count(row.resource) == 0) {
      continue;
    }
    bool applicable = true;
    if (!row.with_clause.empty()) {
      // The naive representation pays a parse + normalize + evaluate on
      // every candidate, every retrieval.
      WFRM_ASSIGN_OR_RETURN(rel::ExprPtr with,
                            rel::SqlParser::ParseExpr(row.with_clause));
      WFRM_ASSIGN_OR_RETURN(std::vector<ConjunctiveRange> ranges,
                            NormalizeRangeClause(with.get()));
      applicable = false;
      for (const ConjunctiveRange& range : ranges) {
        WFRM_ASSIGN_OR_RETURN(bool inside,
                              RangeContainsBindings(range, spec));
        if (inside) {
          applicable = true;
          break;
        }
      }
    }
    if (applicable) {
      out.push_back(RelevantRequirement{row.pid, row.pid, row.where_clause});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.pid < b.pid; });
  return out;
}

}  // namespace wfrm::policy
