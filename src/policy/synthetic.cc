#include "policy/synthetic.h"

#include "rel/parser.h"

namespace wfrm::policy {

namespace {

/// The i attributes owned by activity node k: Act<k>_p0 .. Act<k>_p{i-1}.
/// Giving every activity its own attributes keeps the case ranges of
/// different activities from enclosing each other's specification
/// values, which is the §6 assumption behind the q·i numerator of the
/// Filter selectivity.
std::string ActivityAttr(size_t k, size_t j) {
  return "Act" + std::to_string(k) + "_p" + std::to_string(j);
}

}  // namespace

Result<std::unique_ptr<SyntheticWorkload>> SyntheticWorkload::Build(
    const SyntheticConfig& config) {
  auto w = std::unique_ptr<SyntheticWorkload>(new SyntheticWorkload());
  w->config_ = config;
  w->org_ = std::make_unique<org::OrgModel>();
  org::OrgModel& org = *w->org_;

  // Activity hierarchy: complete binary tree, each node owning its i
  // attributes.
  for (size_t k = 0; k < config.num_activities; ++k) {
    std::vector<org::AttributeDef> attrs;
    for (size_t j = 0; j < config.intervals; ++j) {
      attrs.push_back({ActivityAttr(k, j), rel::DataType::kInt});
    }
    std::string parent = k == 0 ? "" : ActivityName((k - 1) / 2);
    WFRM_RETURN_NOT_OK(
        org.DefineActivityType(ActivityName(k), parent, std::move(attrs)));
    w->activity_names_.push_back(ActivityName(k));
  }
  for (size_t k = 0; k < config.num_activities; ++k) {
    if (2 * k + 1 >= config.num_activities) w->leaf_activities_.push_back(k);
  }

  // Resource hierarchy: complete binary tree; shared attributes at the
  // root keep resource queries simple.
  for (size_t k = 0; k < config.num_resources; ++k) {
    std::vector<org::AttributeDef> attrs;
    if (k == 0) {
      attrs = {{"Location", rel::DataType::kString},
               {"Experience", rel::DataType::kInt}};
    }
    std::string parent = k == 0 ? "" : ResourceName((k - 1) / 2);
    WFRM_RETURN_NOT_OK(
        org.DefineResourceType(ResourceName(k), parent, std::move(attrs)));
    w->resource_names_.push_back(ResourceName(k));
  }

  w->store_ = std::make_unique<PolicyStore>(&org);
  if (config.build_naive_baseline) {
    w->naive_ = std::make_unique<NaivePolicyStore>(&org);
  }

  if (config.with_qualifications) {
    WFRM_RETURN_NOT_OK(
        w->store_
            ->AddQualification(
                QualificationPolicy{ResourceName(0), ActivityName(0)})
            .status());
  }

  // N = |R| · q · c requirement policies.
  std::mt19937 rng(config.seed);
  std::uniform_int_distribution<int64_t> exp_dist(0, 20);
  for (size_t r = 0; r < config.num_resources; ++r) {
    for (size_t t = 0; t < config.q; ++t) {
      size_t a = config.general_activity_placement
                     ? t % config.num_activities
                     : (r + t) % config.num_activities;
      for (size_t k = 0; k < config.c; ++k) {
        // Case k's range: [k·W, (k+1)·W - 1] on each of the activity's
        // own attributes — identical across resource types, pairwise
        // disjoint across cases (§6 assumptions).
        rel::ExprPtr with;
        for (size_t j = 0; j < config.intervals; ++j) {
          int64_t lo = static_cast<int64_t>(k) * config.case_width;
          int64_t hi = lo + config.case_width - 1;
          rel::ExprPtr piece = rel::AndExprs(
              rel::MakeComparison(ActivityAttr(a, j), rel::BinaryOp::kGe,
                                  rel::Value::Int(lo)),
              rel::MakeComparison(ActivityAttr(a, j), rel::BinaryOp::kLe,
                                  rel::Value::Int(hi)));
          with = rel::AndExprs(std::move(with), std::move(piece));
        }
        RequirementPolicy policy;
        policy.resource = ResourceName(r);
        policy.activity = ActivityName(a);
        policy.where = rel::MakeComparison("Experience", rel::BinaryOp::kGe,
                                           rel::Value::Int(exp_dist(rng)));
        policy.with = with ? with->Clone() : nullptr;
        if (w->naive_) {
          WFRM_RETURN_NOT_OK(w->naive_->AddRequirement(policy).status());
        }
        policy.with = std::move(with);
        WFRM_RETURN_NOT_OK(w->store_->AddRequirement(policy).status());
      }
    }
  }

  // Substitution policies: random location-shift alternatives.
  const char* kLocations[] = {"PA", "Cupertino", "Mexico", "Bristol"};
  std::uniform_int_distribution<size_t> res_dist(0,
                                                 config.num_resources - 1);
  std::uniform_int_distribution<size_t> loc_dist(0, 3);
  for (size_t s = 0; s < config.num_substitutions; ++s) {
    size_t r = res_dist(rng);
    size_t a = s % config.num_activities;
    SubstitutionPolicy policy;
    policy.substituted_resource = ResourceName(r);
    policy.substituted_where =
        rel::MakeComparison("Location", rel::BinaryOp::kEq,
                            rel::Value::String(kLocations[loc_dist(rng)]));
    policy.substituting_resource = ResourceName(r);
    policy.substituting_where =
        rel::MakeComparison("Location", rel::BinaryOp::kEq,
                            rel::Value::String(kLocations[loc_dist(rng)]));
    policy.activity = ActivityName(a);
    policy.with = nullptr;
    WFRM_RETURN_NOT_OK(w->store_->AddSubstitution(policy).status());
  }

  // Resource instances for end-to-end benchmarks.
  std::uniform_int_distribution<int64_t> inst_exp(0, 30);
  for (size_t r = 0;
       config.instances_per_resource > 0 && r < config.num_resources; ++r) {
    for (size_t n = 0; n < config.instances_per_resource; ++n) {
      std::map<std::string, rel::Value> values = {
          {"Location", rel::Value::String(kLocations[loc_dist(rng)])},
          {"Experience", rel::Value::Int(inst_exp(rng))}};
      WFRM_RETURN_NOT_OK(
          org.AddResource(ResourceName(r),
                          "res_" + std::to_string(r) + "_" + std::to_string(n),
                          values)
              .status());
    }
  }
  return w;
}

Result<rql::RqlQuery> SyntheticWorkload::RandomQuery(std::mt19937& rng) const {
  std::uniform_int_distribution<size_t> res_dist(0,
                                                 resource_names_.size() - 1);
  std::uniform_int_distribution<size_t> leaf_dist(0,
                                                  leaf_activities_.size() - 1);
  std::uniform_int_distribution<int64_t> value_dist(
      0, static_cast<int64_t>(config_.c) * config_.case_width - 1);

  const std::string& resource = resource_names_[res_dist(rng)];
  size_t act = leaf_activities_[leaf_dist(rng)];

  rql::RqlQuery query;
  auto select = std::make_unique<rel::SelectStatement>();
  rel::SelectItem item;
  item.expr = rel::MakeColumnRef("Id");
  select->items.push_back(std::move(item));
  select->from.push_back(rel::TableRef{resource, ""});
  query.select = std::move(select);
  query.spec.activity = ActivityName(act);

  // Bind every attribute of the leaf activity, own and inherited.
  WFRM_ASSIGN_OR_RETURN(std::vector<org::AttributeDef> attrs,
                        org_->activities().AttributesOf(ActivityName(act)));
  for (const org::AttributeDef& attr : attrs) {
    query.spec.bindings.push_back(
        rql::ActivityBinding{attr.name, rel::Value::Int(value_dist(rng))});
  }
  return rql::BindRql(std::move(query), *org_);
}

}  // namespace wfrm::policy
