#ifndef WFRM_POLICY_POLICY_STORE_H_
#define WFRM_POLICY_POLICY_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "org/org_model.h"
#include "policy/compiled_policy.h"
#include "policy/dnf.h"
#include "policy/enforcement_cache.h"
#include "policy/policy_ast.h"
#include "policy/selectivity_model.h"
#include "rel/database.h"
#include "rel/executor.h"
#include "rel/prepared.h"

namespace wfrm::policy {

/// How relevant-policy retrieval is executed.
enum class RetrievalMode {
  /// Probes the concatenated indexes directly — the "in-memory query
  /// processor not leveraging any commercial in-disk DBMS" the paper's
  /// §6 closing guidance anticipates.
  kDirect,
  /// Builds and runs the literal Figure 13/14/15 view + union SQL on the
  /// embedded relational engine.
  kSql,
};

/// Join order for kDirect retrieval — the execution-plan choice §6's
/// selectivity analysis exists to inform.
enum class DirectPlan {
  /// Drive from Relevant_Filter (Figure 14): per-attribute interval
  /// probes produce enclosure counts per PID, joined against the
  /// candidate policies. Wins when the Filter view is the more
  /// selective one (large c).
  kFilterFirst,
  /// Drive from Relevant_Policies (Figure 13): (Activity, Resource)
  /// index probes produce candidates, each verified against its own
  /// interval rows (hash lookup by PID). Wins when the Policies view is
  /// the more selective one (small c / large q).
  kPoliciesFirst,
  /// Choose per query from the §6 analytic selectivities evaluated on
  /// live catalog statistics (|A|, |R| from the hierarchies; q, c
  /// estimated from the stored pair/row counts).
  kAdaptive,
};

/// Raw relational image of the policy base: the exact rows of the five
/// §5 relations plus the id counters and the store-local epoch (see
/// PolicyStore::Image, its canonical alias).
struct PolicyImage {
  std::vector<rel::Row> qualifications;
  std::vector<rel::Row> policies;
  std::vector<rel::Row> filter;
  std::vector<rel::Row> subst_policies;
  std::vector<rel::Row> subst_filter;
  int64_t next_pid = 100;  // The paper's examples start at PID 100.
  int64_t next_group = 1;
  uint64_t epoch = 0;
};

/// Durable backing for a lazily-hydrated policy base (the paged storage
/// engine implements this). MayHaveActivity is a bloom-filter probe —
/// false negatives are impossible, so a negative answer proves no
/// stored Qualifications/Policies/SubstPolicies row names the activity
/// and retrieval can answer from the (still empty) in-memory relations
/// without touching disk.
class PolicyImageSource {
 public:
  virtual ~PolicyImageSource() = default;
  /// Full durable image; called once, on first hydration.
  virtual Result<PolicyImage> LoadImage() = 0;
  /// May any stored policy row reference `activity` (canonical name)?
  virtual bool MayHaveActivity(const std::string& activity) const = 0;
};

/// Which §5 relation a PolicyRowDelta touches.
enum class PolicyRelation : uint8_t {
  kQualifications = 0,
  kPolicies = 1,
  kFilter = 2,
  kSubstPolicies = 3,
  kSubstFilter = 4,
};

/// One row inserted into or deleted from a policy relation since the
/// last checkpoint. The row is carried whole so the storage layer can
/// derive its tree key without consulting the in-memory tables.
struct PolicyRowDelta {
  PolicyRelation relation = PolicyRelation::kQualifications;
  bool deleted = false;
  rel::Row row;
};

/// Drained by TakePendingDeltas. `overflowed` means the delta log was
/// capped (or the whole base was replaced via ImportImage) and the
/// consumer must fall back to a full image rewrite.
struct PendingPolicyDeltas {
  std::vector<PolicyRowDelta> deltas;
  bool overflowed = false;
};

/// A requirement policy row found relevant for a query (paper §4.2).
struct RelevantRequirement {
  int64_t pid = 0;
  /// Rows produced from the same source policy (one per DNF disjunct of
  /// its With clause) share a group; enforcement applies the WhereClause
  /// once per group.
  int64_t group = 0;
  std::string where_clause;  // Stored SQL text; empty = no condition.
};

/// A substitution policy row found relevant for a query (paper §4.3).
struct RelevantSubstitution {
  int64_t pid = 0;
  int64_t group = 0;
  std::string substituted_resource;
  std::string substituted_where;    // Range-clause text; may be empty.
  std::string substituting_resource;
  std::string substituting_where;   // Range-clause text; may be empty.
};

/// Copyable point-in-time view of StoreStats (the live struct is atomic
/// and therefore non-copyable): benches and tests capture one before and
/// one after a phase and diff them, without racing a concurrent Reset().
struct StoreStatsSnapshot {
  uint64_t retrievals = 0;
  uint64_t candidate_rows = 0;
  uint64_t interval_rows = 0;
  uint64_t plans_filter_first = 0;
  uint64_t plans_policies_first = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t rewrite_cache_hits = 0;
  uint64_t rewrite_cache_misses = 0;
  // Prepared-plan LRU traffic (kSql retrieval).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  // Compiled policy tables (flat interval arrays for warm Enforce).
  uint64_t compiled_builds = 0;
  uint64_t compiled_probes = 0;
  // Lazy-hydration bloom gate (paged backend): pre-hydration retrievals
  // that consulted the per-activity filter, and the subset it answered
  // without touching disk.
  uint64_t bloom_probes = 0;
  uint64_t bloom_skips = 0;
  /// The enforcement epoch at capture time (PolicyStore::StatsSnapshot
  /// stamps it; a bare StoreStats::Snapshot leaves 0). Sharded
  /// deployments compare per-shard epochs across snapshots to prove one
  /// tenant's mutations never invalidated another shard's caches.
  uint64_t epoch = 0;

  /// Counter-wise difference (this - earlier), for before/after diffing.
  /// `epoch` is not a counter: the later capture's value is kept.
  StoreStatsSnapshot operator-(const StoreStatsSnapshot& earlier) const;

  /// Retrieval-cache hit rate over probes that reached the cache.
  double CacheHitRate() const {
    uint64_t probes = cache_hits + cache_misses + cache_invalidations;
    return probes == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(probes);
  }
};

/// Retrieval work counters (complement wall-clock benchmarks). Atomic so
/// concurrent read-only retrievals do not race on bookkeeping.
struct StoreStats {
  std::atomic<uint64_t> retrievals{0};
  std::atomic<uint64_t> candidate_rows{0};   // Policy rows inspected.
  std::atomic<uint64_t> interval_rows{0};    // Filter rows inspected.
  // kDirect retrievals per join order.
  std::atomic<uint64_t> plans_filter_first{0};
  std::atomic<uint64_t> plans_policies_first{0};
  // Enforcement-cache traffic (retrieval-level memo tables).
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// Probes that found an entry tagged with an older epoch: a mutation
  /// invalidated it between the fill and this probe.
  std::atomic<uint64_t> cache_invalidations{0};
  // Rewritten-query LRU traffic (PolicyManager level).
  std::atomic<uint64_t> rewrite_cache_hits{0};
  std::atomic<uint64_t> rewrite_cache_misses{0};
  // Prepared-plan LRU traffic (kSql retrieval).
  std::atomic<uint64_t> plan_cache_hits{0};
  std::atomic<uint64_t> plan_cache_misses{0};
  // Compiled policy tables: lazy builds and warm probes.
  std::atomic<uint64_t> compiled_builds{0};
  std::atomic<uint64_t> compiled_probes{0};
  // Lazy-hydration bloom gate (paged backend).
  std::atomic<uint64_t> bloom_probes{0};
  std::atomic<uint64_t> bloom_skips{0};

  StoreStatsSnapshot Snapshot() const {
    StoreStatsSnapshot s;
    s.retrievals = retrievals.load();
    s.candidate_rows = candidate_rows.load();
    s.interval_rows = interval_rows.load();
    s.plans_filter_first = plans_filter_first.load();
    s.plans_policies_first = plans_policies_first.load();
    s.cache_hits = cache_hits.load();
    s.cache_misses = cache_misses.load();
    s.cache_invalidations = cache_invalidations.load();
    s.rewrite_cache_hits = rewrite_cache_hits.load();
    s.rewrite_cache_misses = rewrite_cache_misses.load();
    s.plan_cache_hits = plan_cache_hits.load();
    s.plan_cache_misses = plan_cache_misses.load();
    s.compiled_builds = compiled_builds.load();
    s.compiled_probes = compiled_probes.load();
    s.bloom_probes = bloom_probes.load();
    s.bloom_skips = bloom_skips.load();
    return s;
  }

  void Reset() {
    retrievals = 0;
    candidate_rows = 0;
    interval_rows = 0;
    plans_filter_first = 0;
    plans_policies_first = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_invalidations = 0;
    rewrite_cache_hits = 0;
    rewrite_cache_misses = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    compiled_builds = 0;
    compiled_probes = 0;
    bloom_probes = 0;
    bloom_skips = 0;
  }
};

/// The policy base (paper §5): policies decomposed into relations inside
/// an embedded in-memory database.
///
///   Qualifications(PID, Resource, Activity)
///   Policies(PID, GroupID, Activity, Resource, NumberOfIntervals,
///            WhereClause)                       — requirement policies
///   Filter(PID, Attribute, LowerBound, UpperBound, LowerInclusive,
///          UpperInclusive)                      — one row per interval
///   SubstPolicies / SubstFilter                 — substitution policies
///
/// On insertion a requirement/substitution policy's With clause is
/// normalized to DNF; each disjunct becomes its own PID row (sharing a
/// GroupID) whose conjunctive range is stored as per-attribute intervals
/// in the filter relation (§5.1). Interval bounds are strings under an
/// order-preserving encoding (key_encoding.h) so one concatenated index
/// on (Attribute, LowerBound, UpperBound) serves every attribute type;
/// Policies carries the §5.2 concatenated index on (Activity, Resource).
///
/// Thread safety and caching: retrieval takes a shared lock — kSql mode
/// included: the Figure 13/14 views are registered once per query shape
/// (parameterized, bucketed by ancestor-list and spec sizes) and then
/// served from a prepared-plan LRU, so only the first query of a new
/// shape takes the exclusive lock — mutation an exclusive one, so
/// concurrent read-only retrievals never serialize on each other. Every mutation — and every hierarchy edit in
/// the backing OrgModel — bumps `epoch()`; qualification fan-out sets and
/// relevant requirement/substitution row sets are memoized per
/// (configuration, activity, resource, spec) tagged with the epoch they
/// were computed at, so a repeated enforcement at an unchanged epoch is
/// answered from the cache without touching the relations.
class PolicyStore {
 public:
  explicit PolicyStore(const org::OrgModel* org);

  PolicyStore(const PolicyStore&) = delete;
  PolicyStore& operator=(const PolicyStore&) = delete;

  // ---- Definition ---------------------------------------------------------

  /// Adds a parsed policy; returns the GroupID assigned to it.
  Result<int64_t> AddPolicy(const ParsedPolicy& policy);

  Result<int64_t> AddQualification(const QualificationPolicy& p);
  Result<int64_t> AddRequirement(const RequirementPolicy& p);
  Result<int64_t> AddSubstitution(const SubstitutionPolicy& p);

  /// Parses and adds every ';'-separated statement in `pl_text`.
  Status AddPolicyText(std::string_view pl_text);

  // ---- Retrieval ----------------------------------------------------------

  /// §4.1: the sub-types of `resource` (including itself) qualified — by
  /// some qualification policy, under the CWA — to carry out `activity`.
  /// The returned order follows the hierarchy's preorder.
  Result<std::vector<std::string>> QualifiedSubtypes(
      const std::string& resource, const std::string& activity) const;

  /// True if (resource, activity) is covered by some qualification
  /// policy through inheritance.
  Result<bool> IsQualified(const std::string& resource,
                           const std::string& activity) const;

  /// §4.2 / Figures 13–16: requirement policies applicable to a query
  /// for `resource`, `activity` with the given activity bindings.
  /// Results are sorted by PID.
  Result<std::vector<RelevantRequirement>> RelevantRequirements(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;

  /// §4.3: substitution policies applicable to a query for `resource`
  /// (whose Where clause is `query_where`, used for the resource-range
  /// intersection test) and `activity` with bindings `spec`.
  Result<std::vector<RelevantSubstitution>> RelevantSubstitutions(
      const std::string& resource, const rel::Expr* query_where,
      const std::string& activity, const rel::ParamMap& spec) const;

  // ---- Consultation and maintenance (Figure 1: the PL interface also
  // lets one "consult existing" policies) --------------------------------

  /// A stored qualification policy with its PID.
  struct StoredQualification {
    int64_t pid = 0;
    QualificationPolicy policy;
  };

  /// A stored requirement/substitution policy group, reassembled from
  /// its DNF rows: one rendered interval range per stored disjunct.
  struct StoredPolicyGroup {
    int64_t group = 0;
    std::vector<int64_t> pids;
    std::string resource;             // Substituted resource for
                                      // substitution policies.
    std::string activity;
    std::string where_clause;         // Requirement Where (may be "").
    std::string substituting_resource;  // Substitution policies only.
    std::string substituting_where;     // Substitution policies only.
    std::vector<std::string> ranges;  // RangeToString per disjunct.
    /// The decoded interval map per disjunct (same order as `ranges`);
    /// feeds DumpPl's reconstruction of the With clause.
    std::vector<ConjunctiveRange> range_data;
  };

  /// Why a requirement group did or did not apply to a query — the
  /// explainability counterpart of RelevantRequirements (same §4.2
  /// conditions, but every group is reported with its verdict).
  struct RequirementDiagnosis {
    enum class Verdict {
      kApplied,
      kResourceMismatch,  // Policy resource is not a super-type.
      kActivityMismatch,  // Policy activity is not a super-type.
      kRangeMismatch,     // Specification outside every disjunct's range.
    };
    int64_t group = 0;
    std::string resource;
    std::string activity;
    std::string where_clause;
    Verdict verdict = Verdict::kApplied;
    std::string detail;
  };
  Result<std::vector<RequirementDiagnosis>> DiagnoseRequirements(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;

  /// Why a substitution group did or did not apply (§4.3's four
  /// conditions, each with its own verdict).
  struct SubstitutionDiagnosis {
    enum class Verdict {
      kApplied,
      kResourceUnrelated,      // No common sub-type with the query's type.
      kResourceRangeDisjoint,  // Query range ∩ substituted range = ∅.
      kActivityMismatch,
      kRangeMismatch,
    };
    int64_t group = 0;
    std::string substituted_resource;
    std::string substituting_resource;
    std::string activity;
    Verdict verdict = Verdict::kApplied;
    std::string detail;
  };
  Result<std::vector<SubstitutionDiagnosis>> DiagnoseSubstitutions(
      const std::string& resource, const rel::Expr* query_where,
      const std::string& activity, const rel::ParamMap& spec) const;

  std::vector<StoredQualification> ListQualifications() const;
  Result<std::vector<StoredPolicyGroup>> ListRequirements() const;
  Result<std::vector<StoredPolicyGroup>> ListSubstitutions() const;

  // ---- Persistence (src/store snapshots) ---------------------------------

  /// Raw relational image of the policy base: the exact rows of the five
  /// §5 relations plus the id counters and the store-local epoch. Unlike
  /// DumpPl (which renumbers PIDs on reload), importing an image
  /// reproduces the store bit-for-bit — PIDs, groups and epoch included —
  /// which is what crash recovery needs to be indistinguishable from
  /// never having crashed.
  using Image = PolicyImage;

  Image ExportImage() const;

  /// Replaces the entire policy base with `image` (rows are re-validated
  /// against the table schemas, so a corrupted snapshot fails cleanly),
  /// rebuilds the planner statistics, restores the counters/epoch and
  /// drops every cache entry — recovered state starts cold.
  Status ImportImage(const Image& image);

  /// The store-local component of epoch() (the backing OrgModel
  /// contributes its hierarchy versions on top). Snapshots persist this
  /// so a recovered store resumes at the epoch it crashed at.
  uint64_t local_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // ---- Lazy hydration (paged storage backend) ---------------------------

  /// Defers loading the policy relations: the store starts with empty
  /// tables plus the durable id counters/epoch, and pulls the full image
  /// from `source` on the first access that could observe policy rows.
  /// Reads whose activity fails the source's bloom probe are answered
  /// from the empty tables without hydrating — correct because the probe
  /// has no false negatives. Call before the store sees traffic.
  void AttachLazySource(std::shared_ptr<PolicyImageSource> source,
                        int64_t next_pid, int64_t next_group, uint64_t epoch);

  /// True when the in-memory relations are authoritative (no lazy
  /// source, or it has been loaded).
  bool hydrated() const {
    return source_ == nullptr || hydrated_.load(std::memory_order_acquire);
  }

  /// Forces hydration now (no-op without a lazy source). Callers that
  /// cannot tolerate a silently-empty view (checkpoint capture, full
  /// exports) invoke this first so I/O failures surface as a Status.
  Status EnsureHydrated() const;

  // ---- Incremental checkpointing (paged storage backend) ----------------

  /// Starts/stops accumulating per-row mutation deltas (insertions and
  /// deletions of relation rows) for incremental checkpoints.
  void set_delta_tracking(bool enabled);

  /// Drains the accumulated deltas since the previous call. When the
  /// log overflowed (or ImportImage replaced the base wholesale) the
  /// result is flagged and the caller must rewrite the full image.
  PendingPolicyDeltas TakePendingDeltas();

  /// Durable id counters (checkpoint metadata).
  int64_t next_pid() const;
  int64_t next_group() const;

  /// Removes a qualification policy by PID.
  Status RemoveQualification(int64_t pid);
  /// Removes every row (and its intervals) of a requirement group.
  Status RemoveRequirementGroup(int64_t group);
  /// Removes every row (and its intervals) of a substitution group.
  Status RemoveSubstitutionGroup(int64_t group);

  // ---- Introspection ------------------------------------------------------

  RetrievalMode retrieval_mode() const {
    return mode_.load(std::memory_order_relaxed);
  }
  void set_retrieval_mode(RetrievalMode mode) {
    mode_.store(mode, std::memory_order_relaxed);
  }

  DirectPlan direct_plan() const {
    return plan_.load(std::memory_order_relaxed);
  }
  void set_direct_plan(DirectPlan plan) {
    plan_.store(plan, std::memory_order_relaxed);
  }

  /// The enforcement epoch: bumped by every policy mutation and every
  /// hierarchy edit of the backing OrgModel. All enforcement caches tag
  /// entries with the epoch they were computed at; an entry from an
  /// older epoch is never served.
  uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire) + org_->hierarchy_version();
  }

  /// Enables/disables the retrieval memo tables (default on). Disabling
  /// is the ablation baseline for bench_cache; it does not clear
  /// existing entries (re-enabling may hit them if the epoch still
  /// matches).
  void set_cache_enabled(bool enabled) {
    cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool cache_enabled() const {
    return cache_enabled_.load(std::memory_order_relaxed);
  }

  /// Enables/disables the compiled policy tables (default on): kDirect
  /// retrieval on a memo miss probes a flat per-attribute interval table
  /// built lazily per (resource, activity) and cached keyed by the
  /// mutation epoch. Disabling is the ablation baseline for benches that
  /// measure the paper's own retrieval paths.
  void set_compiled_enabled(bool enabled) {
    compiled_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool compiled_enabled() const {
    return compiled_enabled_.load(std::memory_order_relaxed);
  }

  /// The kSql prepared-plan LRU (exposed for tests: size/capacity and
  /// the hit/miss/invalidation counters).
  const rel::PlanCache& plan_cache() const { return plan_cache_; }

  /// Records a rewritten-query LRU probe in this store's counters (the
  /// LRU itself lives in PolicyManager; stats are centralized here).
  void NoteRewriteLookup(CacheLookup outcome) const;

  /// Mirrors the StoreStats counters into `registry` (counter family
  /// `wfrm_store_cache_lookups_total{cache,outcome}` plus
  /// `wfrm_store_retrievals_total`), covering the EpochCache memo tables
  /// and the rewrite LRU. Instrument pointers are resolved once here, so
  /// the per-probe cost is one relaxed atomic add. Call before the store
  /// sees concurrent traffic; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Live parameter estimates feeding the kAdaptive plan choice: |A| and
  /// |R| from the hierarchies, distinct (Activity, Resource) pairs from
  /// the concatenated index, q and c derived per §6's N = |R|·q·c.
  SelectivityParams EstimateParams() const;

  /// True when the §6 model predicts the Policies-first join order is
  /// the cheaper driver for a query binding `num_spec_attributes`
  /// activity attributes (used by the kAdaptive plan; exposed for tests
  /// and benches). The cost model compares expected candidate
  /// verifications (Selectivity_Policies · N · i) against expected
  /// interval-probe work (one range probe per bound attribute, each
  /// visiting about half of its attribute's partition of Filter).
  bool PreferPoliciesFirst(size_t num_spec_attributes) const;

  /// Distinct attributes currently carrying interval rows in Filter.
  size_t num_filter_attributes() const;

  /// Disables index usage in both modes (full scans) — the ablation
  /// baseline for §5.2's concatenated-index recommendation.
  void set_use_indexes(bool use) {
    use_indexes_.store(use, std::memory_order_relaxed);
  }
  bool use_indexes() const {
    return use_indexes_.load(std::memory_order_relaxed);
  }

  /// Measured selectivities of the two §5.2 views for one query: the
  /// fraction of Policies rows matched by the Figure 13 predicate and
  /// the fraction of Filter rows matched by the Figure 14 predicate.
  /// This is the empirical counterpart of the §6 analytical model
  /// (bench/fig17_selectivity.cc).
  struct ViewSelectivity {
    double policies_rate = 0;
    double filter_rate = 0;
    size_t policies_matched = 0;
    size_t filter_matched = 0;
  };
  Result<ViewSelectivity> MeasureViewSelectivity(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;

  size_t num_qualification_rows() const;
  size_t num_requirement_rows() const;
  size_t num_requirement_interval_rows() const;
  size_t num_substitution_rows() const;

  const rel::Database& db() const { return db_; }
  const org::OrgModel& org() const { return *org_; }

  const StoreStats& stats() const { return stats_; }
  /// stats().Snapshot() with the current enforcement epoch stamped in:
  /// the per-shard view a router or dashboard diffs to verify epoch
  /// isolation (an unrelated shard's snapshot keeps both its epoch and
  /// its hit counters).
  StoreStatsSnapshot StatsSnapshot() const {
    StoreStatsSnapshot s = stats_.Snapshot();
    s.epoch = epoch();
    return s;
  }
  void ResetStats() { stats_.Reset(); }

 private:
  struct CandidateRow {
    int64_t pid;
    int64_t group;
    int64_t num_intervals;
    const rel::Row* row;
  };

  Status ValidateRangeClause(const std::string& activity,
                             const rel::Expr* with) const;
  Status ValidateResourceRangeClause(const std::string& resource,
                                     const rel::Expr* clause) const;
  Status ValidateRequirementWhere(const std::string& resource,
                                  const std::string& activity,
                                  const rel::Expr* where) const;

  /// Inserts DNF rows for (activity, resource, with) into `policy_table`
  /// + `filter_table` with shared group id; extra columns are appended
  /// to each policy row. Attribute names in the With clause are stored
  /// under their canonical (declared) spelling. Caller holds mu_
  /// exclusively.
  Result<int64_t> InsertDecomposed(const std::string& policy_table,
                                   const std::string& filter_table,
                                   const std::string& activity,
                                   const std::string& resource,
                                   const rel::Expr* with,
                                   std::vector<rel::Value> extra_columns);

  /// Rewrites spec keys to their canonical attribute spelling on the
  /// query's activity type, so lookups match stored rows exactly.
  rel::ParamMap CanonicalizeSpec(const std::string& activity,
                                 const rel::ParamMap& spec) const;

  /// Composite cache key prefixed with the retrieval configuration, so
  /// plan/index ablations never share entries (work counters stay
  /// meaningful per configuration).
  std::string RetrievalCacheKey(const char* tag, const std::string& resource,
                                const std::string& activity,
                                const rel::ParamMap& spec) const;

  // The following helpers assume mu_ is held (shared suffices unless
  // noted) — they are the pre-concurrency retrieval bodies.

  /// Shared candidate scan: policy rows whose Activity/Resource are in
  /// the given ancestor sets, via concatenated index or full scan.
  Result<std::vector<CandidateRow>> CandidatePolicies(
      const std::string& table, const std::vector<std::string>& activities,
      const std::vector<std::string>& resources) const;

  /// Count of enclosing intervals per PID for the spec bindings, via the
  /// filter table's concatenated index (kDirect machinery, also used for
  /// substitution policies).
  Result<std::unordered_map<int64_t, int64_t>> CountEnclosingIntervals(
      const std::string& filter_table, const rel::ParamMap& spec) const;

  Result<std::vector<std::string>> QualifiedSubtypesLocked(
      const std::string& resource, const std::string& activity) const;
  Result<std::vector<RelevantRequirement>> RelevantRequirementsDirect(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;
  Result<std::vector<RelevantRequirement>> RelevantRequirementsPoliciesFirst(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;
  /// Manages its own locking: shared for execution; exclusive only the
  /// first time a (bucketed) query shape registers its parameterized
  /// Figure 13/14 views.
  Result<std::vector<RelevantRequirement>> RelevantRequirementsSql(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;
  /// Registers the parameterized Figure 13/14 views for one shape bucket
  /// (idempotent, double-checked) and returns the Figure 15 union text to
  /// execute against them.
  Result<std::string> EnsureSqlShape(size_t ba, size_t br, size_t bk) const;
  /// Compiled fast path (kDirect + compiled_enabled): probe the flat
  /// interval table for (resource, activity), building it lazily on an
  /// epoch-keyed cache miss. Manages its own locking.
  Result<std::vector<RelevantRequirement>> RelevantRequirementsCompiled(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;
  /// Lowers the candidate policies for (resource, activity) into a
  /// CompiledPolicyTable. Caller holds mu_ (shared suffices).
  Result<std::shared_ptr<const CompiledPolicyTable>> BuildCompiledLocked(
      const std::string& resource, const std::string& activity) const;
  Result<std::vector<RelevantSubstitution>> RelevantSubstitutionsLocked(
      const std::string& resource, const rel::Expr* query_where,
      const std::string& activity, const rel::ParamMap& spec) const;
  Result<std::vector<StoredPolicyGroup>> ListGroupsLocked(
      const std::string& policy_table, const std::string& filter_table,
      bool substitution) const;
  SelectivityParams EstimateParamsLocked() const;
  bool PreferPoliciesFirstLocked(size_t num_spec_attributes) const;

  /// Marks a completed mutation: bumps the epoch so every cached
  /// derivation from before it is invalidated. Caller holds mu_.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_release); }

  /// Hydration gate for an activity-scoped read: hydrates unless the
  /// source's bloom filter proves no stored row involves any ancestor
  /// of `activity`. No-op when already hydrated.
  Status EnsureHydratedForActivity(const std::string& activity) const;
  /// Loads the image from source_ under the exclusive lock (idempotent).
  Status HydrateNow();
  /// ImportImage body; caller holds mu_ exclusively.
  Status ImportImageLocked(const Image& image);
  /// Appends a delta when tracking is on. Caller holds mu_ exclusively.
  void RecordDelta(std::string_view table, bool deleted, const rel::Row& row);

  /// Resolved metric instruments (null when no registry is attached).
  struct RetrievalMetrics {
    obs::Counter* retrievals = nullptr;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* stale = nullptr;
    obs::Counter* rewrite_hits = nullptr;
    obs::Counter* rewrite_misses = nullptr;
    obs::Counter* rewrite_stale = nullptr;
    obs::Counter* plan_hits = nullptr;
    obs::Counter* plan_misses = nullptr;
    obs::Counter* compiled_builds = nullptr;
    obs::Counter* compiled_probes = nullptr;
  };

  /// One retrieval entered the store (stats + optional metrics mirror).
  void NoteRetrieval() const {
    ++stats_.retrievals;
    if (metrics_.retrievals != nullptr) metrics_.retrievals->Increment();
  }
  void NoteRetrievalHit() const {
    ++stats_.cache_hits;
    if (metrics_.hits != nullptr) metrics_.hits->Increment();
  }
  /// Outcome is kMiss or kStale (a hit takes NoteRetrievalHit).
  void NoteRetrievalMiss(CacheLookup outcome) const {
    if (outcome == CacheLookup::kStale) {
      ++stats_.cache_invalidations;
      if (metrics_.stale != nullptr) metrics_.stale->Increment();
    } else {
      ++stats_.cache_misses;
      if (metrics_.misses != nullptr) metrics_.misses->Increment();
    }
  }
  /// One prepared-plan LRU probe (kInvalidated counts as a miss — the
  /// plan was re-prepared).
  void NotePlanLookup(rel::PlanLookup outcome) const {
    if (outcome == rel::PlanLookup::kHit) {
      ++stats_.plan_cache_hits;
      if (metrics_.plan_hits != nullptr) metrics_.plan_hits->Increment();
    } else {
      ++stats_.plan_cache_misses;
      if (metrics_.plan_misses != nullptr) metrics_.plan_misses->Increment();
    }
  }
  void NoteCompiledBuild() const {
    ++stats_.compiled_builds;
    if (metrics_.compiled_builds != nullptr) {
      metrics_.compiled_builds->Increment();
    }
  }
  void NoteCompiledProbe() const {
    ++stats_.compiled_probes;
    if (metrics_.compiled_probes != nullptr) {
      metrics_.compiled_probes->Increment();
    }
  }

  const org::OrgModel* org_;
  /// Mutable: the kSql path registers per-shape parameterized
  /// Relevant_Policies/Relevant_Filter views (Figures 13/14), but only
  /// the first time a shape is seen — steady-state kSql retrieval runs
  /// under the shared lock.
  mutable rel::Database db_;
  /// Live count of Filter rows per attribute, feeding the kAdaptive cost
  /// model. Maintained on insert/remove.
  std::unordered_map<std::string, size_t> filter_attr_counts_;
  std::atomic<RetrievalMode> mode_{RetrievalMode::kDirect};
  std::atomic<DirectPlan> plan_{DirectPlan::kFilterFirst};
  std::atomic<bool> use_indexes_{true};
  int64_t next_pid_ = 100;  // The paper's examples start at PID 100.
  int64_t next_group_ = 1;
  mutable StoreStats stats_;
  RetrievalMetrics metrics_;

  /// Guards db_, filter_attr_counts_, next_pid_, next_group_: shared for
  /// retrieval, exclusive for mutation (and kSql retrieval).
  mutable std::shared_mutex mu_;
  /// Store-local component of epoch() (org_ contributes hierarchy
  /// versions).
  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> cache_enabled_{true};
  std::atomic<bool> compiled_enabled_{true};
  mutable EpochCache<std::vector<std::string>> qualified_cache_;
  mutable EpochCache<std::vector<RelevantRequirement>> requirement_cache_;
  mutable EpochCache<std::vector<RelevantSubstitution>> substitution_cache_;
  /// Compiled flat interval tables per (resource, activity), epoch-keyed;
  /// entries are immutable and shared, so probing needs no store lock.
  mutable EpochCache<std::shared_ptr<const CompiledPolicyTable>>
      compiled_cache_;
  /// Prepared Figure 15 plans keyed by SQL text (one per shape bucket).
  mutable rel::PlanCache plan_cache_;
  /// Shape buckets whose Figure 13/14 views are already registered in
  /// db_. Guarded by mu_.
  mutable std::unordered_set<std::string> sql_shapes_;

  /// Lazy hydration: durable backing and whether the in-memory tables
  /// are authoritative yet. hydrated_ defaults true (no lazy source).
  std::shared_ptr<PolicyImageSource> source_;
  std::atomic<bool> hydrated_{true};
  /// Incremental-checkpoint delta log. Guarded by mu_.
  bool delta_tracking_ = false;
  bool deltas_overflowed_ = false;
  std::vector<PolicyRowDelta> pending_deltas_;
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_POLICY_STORE_H_
