#ifndef WFRM_POLICY_ENFORCEMENT_CACHE_H_
#define WFRM_POLICY_ENFORCEMENT_CACHE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace wfrm::policy {

/// Outcome of one cache probe, for the StoreStats counters.
enum class CacheLookup {
  kHit,    // Entry present at the current epoch.
  kMiss,   // No entry under the key.
  kStale,  // Entry present but tagged with an older epoch (a
           // PolicyStore/OrgModel mutation invalidated it).
};

/// Canonical lower-case name, used as a metrics label and trace
/// attribute value.
inline const char* CacheLookupName(CacheLookup outcome) {
  switch (outcome) {
    case CacheLookup::kHit:
      return "hit";
    case CacheLookup::kMiss:
      return "miss";
    case CacheLookup::kStale:
      return "stale";
  }
  return "unknown";
}

/// Epoch-versioned memo table for enforcement-time derivations
/// (hierarchy fan-out sets, relevant requirement/substitution row sets).
///
/// Entries are tagged with the store epoch observed when they were
/// computed; a probe at a newer epoch reports kStale and the caller
/// recomputes. There is no eager invalidation — writers only bump the
/// epoch, which makes mutations O(1) and keeps the write path off every
/// cache lock. Size is bounded: when an insert would exceed
/// `max_entries`, the entry inserted least recently is evicted (FIFO).
/// Because the epoch only ever advances, insertion order also orders
/// entries by epoch, so stale-epoch entries always leave before
/// current-epoch ones and an insert is O(1) even when the table is full
/// of entries from the live epoch.
///
/// Thread safety: probes take a shared lock, inserts an exclusive one.
template <typename V>
class EpochCache {
 public:
  explicit EpochCache(size_t max_entries = 8192) : max_entries_(max_entries) {}

  std::optional<V> Get(const std::string& key, uint64_t epoch,
                       CacheLookup* outcome) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      *outcome = CacheLookup::kMiss;
      return std::nullopt;
    }
    if (it->second.epoch != epoch) {
      *outcome = CacheLookup::kStale;
      return std::nullopt;
    }
    *outcome = CacheLookup::kHit;
    return it->second.value;
  }

  void Put(const std::string& key, uint64_t epoch, V value) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (max_entries_ == 0) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      // Refresh in place; the key keeps its original queue position.
      it->second = Entry{epoch, std::move(value)};
      return;
    }
    // Every map entry is in order_ exactly once, so popping the front
    // until below the bound both terminates and keeps the invariant.
    while (map_.size() >= max_entries_ && !order_.empty()) {
      map_.erase(order_.front());
      order_.pop_front();
    }
    order_.push_back(key);
    map_.emplace(key, Entry{epoch, std::move(value)});
  }

  void Clear() {
    std::unique_lock<std::shared_mutex> lock(mu_);
    map_.clear();
    order_.clear();
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    uint64_t epoch = 0;
    V value;
  };

  mutable std::shared_mutex mu_;
  size_t max_entries_;
  std::unordered_map<std::string, Entry> map_;
  /// Keys in insertion order — the eviction queue. Since the epoch is
  /// monotone, the front is always the entry most likely to be stale.
  std::deque<std::string> order_;
};

/// Joins cache-key parts with an unlikely separator ('\x1f', ASCII unit
/// separator) so composite keys cannot collide across part boundaries.
inline void AppendCacheKeyPart(std::string* key, const std::string& part) {
  if (!key->empty()) key->push_back('\x1f');
  key->append(part);
}

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_ENFORCEMENT_CACHE_H_
