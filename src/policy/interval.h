#ifndef WFRM_POLICY_INTERVAL_H_
#define WFRM_POLICY_INTERVAL_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "rel/expr.h"
#include "rel/value.h"

namespace wfrm::policy {

/// A one-dimensional interval over an attribute domain (paper §5.1).
///
/// The paper closes all intervals by exploiting finite domains
/// (footnote 4's Min/Max sentinels); we additionally keep open/closed
/// flags so continuous domains are represented exactly. An absent bound
/// means the domain Min (lower) / Max (upper).
struct Interval {
  std::optional<rel::Value> lower;  // nullopt = -infinity (domain Min).
  bool lower_inclusive = true;
  std::optional<rel::Value> upper;  // nullopt = +infinity (domain Max).
  bool upper_inclusive = true;

  /// The unbounded interval (matches everything).
  static Interval All() { return Interval{}; }

  /// The degenerate interval [v, v].
  static Interval Point(rel::Value v);

  /// Interval for a single predicate `attr op value`. op must be a
  /// comparison other than !=: inequality is not convex and is split
  /// into two intervals by the DNF normalizer.
  static Result<Interval> FromComparison(rel::BinaryOp op, rel::Value value);

  bool IsUnbounded() const { return !lower && !upper; }

  /// Membership test; fails with TypeError on incomparable kinds.
  Result<bool> Contains(const rel::Value& v) const;

  /// Intersection; an empty (contradictory) result reports nullopt.
  Result<std::optional<Interval>> Intersect(const Interval& other) const;

  /// True when the two intervals share at least one point. Used for the
  /// substitution-policy relevance test ("the resource range in the
  /// query intersects with the resource range in the policy", §4.3).
  Result<bool> Intersects(const Interval& other) const;

  /// "[10000, +inf)" style rendering.
  std::string ToString() const;

  bool operator==(const Interval& other) const;
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_INTERVAL_H_
