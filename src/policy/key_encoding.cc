#include "policy/key_encoding.h"

#include <cstdint>
#include <cstring>

namespace wfrm::policy {

namespace {

/// Maps a double onto a uint64 whose unsigned order equals the double's
/// numeric order: flip all bits for negatives, flip the sign bit for
/// positives.
uint64_t DoubleToOrderedBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & (1ull << 63)) {
    return ~bits;
  }
  return bits | (1ull << 63);
}

double OrderedBitsToDouble(uint64_t bits) {
  if (bits & (1ull << 63)) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::string ToHex16(uint64_t bits) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[bits & 0xf];
    bits >>= 4;
  }
  return out;
}

Result<uint64_t> FromHex16(const std::string& hex) {
  if (hex.size() != 16) {
    return Status::InvalidArgument("numeric key payload must be 16 hex chars");
  }
  uint64_t bits = 0;
  for (char c : hex) {
    bits <<= 4;
    if (c >= '0' && c <= '9') {
      bits |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      bits |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("invalid hex digit in numeric key");
    }
  }
  return bits;
}

}  // namespace

std::string EncodedDomainMin() { return ""; }

std::string EncodedDomainMax() { return "\x7f"; }

Result<std::string> EncodeKey(const rel::Value& value) {
  if (value.is_null()) {
    return Status::InvalidArgument("cannot encode NULL as an interval bound");
  }
  if (value.is_bool()) {
    return std::string(value.bool_value() ? "b1" : "b0");
  }
  if (value.is_numeric()) {
    return "n" + ToHex16(DoubleToOrderedBits(value.AsDouble()));
  }
  return "s" + value.string_value();
}

Result<rel::Value> DecodeKey(const std::string& encoded) {
  if (encoded == EncodedDomainMin() || encoded == EncodedDomainMax()) {
    return rel::Value::Null();
  }
  switch (encoded[0]) {
    case 'b':
      if (encoded == "b0") return rel::Value::Bool(false);
      if (encoded == "b1") return rel::Value::Bool(true);
      return Status::InvalidArgument("malformed boolean key");
    case 'n': {
      WFRM_ASSIGN_OR_RETURN(uint64_t bits, FromHex16(encoded.substr(1)));
      double d = OrderedBitsToDouble(bits);
      // Present integral doubles as ints for readability.
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) return rel::Value::Int(i);
      return rel::Value::Double(d);
    }
    case 's':
      return rel::Value::String(encoded.substr(1));
    default:
      return Status::InvalidArgument("unknown key encoding tag");
  }
}

}  // namespace wfrm::policy
