#include "policy/policy_manager.h"

#include <memory>
#include <set>
#include <utility>

namespace wfrm::policy {

EnforcedQueries EnforcedQueries::Clone() const {
  EnforcedQueries out;
  out.queries.reserve(queries.size());
  for (const rql::RqlQuery& q : queries) out.queries.push_back(q.Clone());
  out.qualified_types = qualified_types;
  return out;
}

std::shared_ptr<const EnforcedQueries> PolicyManager::RewriteCacheGet(
    const std::string& key, uint64_t epoch, CacheLookup* outcome) const {
  std::lock_guard<std::mutex> lock(rewrite_mu_);
  auto it = rewrite_map_.find(key);
  if (it == rewrite_map_.end()) {
    *outcome = CacheLookup::kMiss;
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    rewrite_lru_.erase(it->second);
    rewrite_map_.erase(it);
    *outcome = CacheLookup::kStale;
    return nullptr;
  }
  rewrite_lru_.splice(rewrite_lru_.begin(), rewrite_lru_, it->second);
  *outcome = CacheLookup::kHit;
  return it->second->value;
}

void PolicyManager::RewriteCachePut(
    const std::string& key, uint64_t epoch,
    std::shared_ptr<const EnforcedQueries> value) const {
  std::lock_guard<std::mutex> lock(rewrite_mu_);
  auto it = rewrite_map_.find(key);
  if (it != rewrite_map_.end()) {
    it->second->epoch = epoch;
    it->second->value = std::move(value);
    rewrite_lru_.splice(rewrite_lru_.begin(), rewrite_lru_, it->second);
    return;
  }
  rewrite_lru_.push_front(RewriteEntry{key, epoch, std::move(value)});
  rewrite_map_[key] = rewrite_lru_.begin();
  while (rewrite_lru_.size() > rewrite_capacity_) {
    rewrite_map_.erase(rewrite_lru_.back().key);
    rewrite_lru_.pop_back();
  }
}

size_t PolicyManager::rewrite_cache_size() const {
  std::lock_guard<std::mutex> lock(rewrite_mu_);
  return rewrite_lru_.size();
}

Result<EnforcedQueries> PolicyManager::EnforcePrimary(
    const rql::RqlQuery& query, obs::TraceSpan* parent) const {
  WFRM_ASSIGN_OR_RETURN(std::shared_ptr<const EnforcedQueries> shared,
                        EnforcePrimaryShared(query, parent));
  return shared->Clone();
}

Result<std::shared_ptr<const EnforcedQueries>>
PolicyManager::EnforcePrimaryShared(const rql::RqlQuery& query,
                                    obs::TraceSpan* parent,
                                    const RequestContext* ctx) const {
  obs::ScopedSpan span(parent, "enforce_primary");
  const bool use_cache = store_->cache_enabled() && rewrite_capacity_ > 0;
  std::string key;
  uint64_t observed_epoch = 0;
  bool cache_hit = false;
  if (use_cache) {
    key = Rewriter::EnforcementKey(query);
    observed_epoch = store_->epoch();
    CacheLookup outcome;
    auto hit = RewriteCacheGet(key, observed_epoch, &outcome);
    store_->NoteRewriteLookup(outcome);
    obs::Attr(span, "rewrite_cache", CacheLookupName(outcome));
    if (hit != nullptr) {
      // Untraced: serve the memo. Traced: record the hit but recompute
      // the stages so the decision log names the policies that fired.
      if (span.get() == nullptr) return hit;
      cache_hit = true;
    }
  } else {
    obs::Attr(span, "rewrite_cache", "off");
  }

  auto out = std::make_shared<EnforcedQueries>();
  WFRM_ASSIGN_OR_RETURN(std::vector<rql::RqlQuery> fanned,
                        rewriter_.RewriteQualification(query, span));
  // Stage boundary (§4.1 → §4.2): the fan-out can be wide, and each
  // fanned query pays a requirement rewrite — don't start them for a
  // request nobody is waiting on.
  WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
  for (rql::RqlQuery& q : fanned) {
    std::string type = q.resource();
    WFRM_ASSIGN_OR_RETURN(rql::RqlQuery enhanced,
                          rewriter_.RewriteRequirement(q, span));
    out->qualified_types.push_back(std::move(type));
    out->queries.push_back(std::move(enhanced));
  }
  std::shared_ptr<const EnforcedQueries> result = std::move(out);
  // Publish only if no mutation interleaved with the rewrite; a torn
  // entry would otherwise survive until the next epoch bump. The entry
  // is immutable, so the cache and the caller share one copy.
  if (use_cache && !cache_hit && store_->epoch() == observed_epoch) {
    RewriteCachePut(key, observed_epoch, result);
  }
  return result;
}

Result<EnforcedQueries> PolicyManager::EnforceAlternatives(
    const rql::RqlQuery& query) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<EnforcedQueries> rounds,
                        EnforceAlternativesRounds(query, 1));
  return std::move(rounds[0]);
}

Result<std::vector<EnforcedQueries>> PolicyManager::EnforceAlternativesRounds(
    const rql::RqlQuery& query, size_t rounds, obs::TraceSpan* parent,
    const RequestContext* ctx) const {
  obs::ScopedSpan alt_span(parent, "enforce_alternatives");
  obs::Attr(alt_span, "max_rounds", static_cast<int64_t>(rounds));
  std::vector<EnforcedQueries> out;
  // Alternatives already explored, keyed by their pre-enforcement text —
  // this is the cycle protection that makes the recursive variant
  // terminate (A substitutable by B and B by A would otherwise ping-pong
  // forever, the paper's "indefinite compromise").
  std::set<std::string> seen_alternatives;
  seen_alternatives.insert(query.ToString());
  // Final enforced queries already emitted in some round.
  std::set<std::string> seen_enforced;

  std::vector<rql::RqlQuery> frontier;
  frontier.push_back(query.Clone());

  for (size_t round = 0; round < rounds && !frontier.empty(); ++round) {
    // Stage boundary: each round re-enters the full primary pipeline per
    // alternative; stop fanning out for a dead request.
    WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
    obs::ScopedSpan round_span(alt_span, "round");
    obs::Attr(round_span, "round", static_cast<int64_t>(round + 1));
    EnforcedQueries this_round;
    std::vector<rql::RqlQuery> next_frontier;
    for (const rql::RqlQuery& source : frontier) {
      WFRM_ASSIGN_OR_RETURN(std::vector<rql::RqlQuery> alternatives,
                            rewriter_.RewriteSubstitution(source, round_span));
      for (rql::RqlQuery& alt : alternatives) {
        if (!seen_alternatives.insert(alt.ToString()).second) continue;
        // Each alternative re-enters the primary pipeline (§2.1).
        WFRM_ASSIGN_OR_RETURN(EnforcedQueries enforced,
                              EnforcePrimary(alt, round_span));
        for (size_t i = 0; i < enforced.queries.size(); ++i) {
          if (!seen_enforced.insert(enforced.queries[i].ToString()).second) {
            continue;
          }
          this_round.queries.push_back(std::move(enforced.queries[i]));
          this_round.qualified_types.push_back(
              std::move(enforced.qualified_types[i]));
        }
        next_frontier.push_back(std::move(alt));
      }
    }
    out.push_back(std::move(this_round));
    frontier = std::move(next_frontier);
  }
  // Pad so callers can index by round even when the frontier dried up.
  while (out.size() < rounds) out.emplace_back();
  return out;
}

}  // namespace wfrm::policy
