#include "policy/policy_manager.h"

#include <set>

namespace wfrm::policy {

Result<EnforcedQueries> PolicyManager::EnforcePrimary(
    const rql::RqlQuery& query) const {
  EnforcedQueries out;
  WFRM_ASSIGN_OR_RETURN(std::vector<rql::RqlQuery> fanned,
                        rewriter_.RewriteQualification(query));
  for (rql::RqlQuery& q : fanned) {
    std::string type = q.resource();
    WFRM_ASSIGN_OR_RETURN(rql::RqlQuery enhanced,
                          rewriter_.RewriteRequirement(q));
    out.qualified_types.push_back(std::move(type));
    out.queries.push_back(std::move(enhanced));
  }
  return out;
}

Result<EnforcedQueries> PolicyManager::EnforceAlternatives(
    const rql::RqlQuery& query) const {
  WFRM_ASSIGN_OR_RETURN(std::vector<EnforcedQueries> rounds,
                        EnforceAlternativesRounds(query, 1));
  return std::move(rounds[0]);
}

Result<std::vector<EnforcedQueries>> PolicyManager::EnforceAlternativesRounds(
    const rql::RqlQuery& query, size_t rounds) const {
  std::vector<EnforcedQueries> out;
  // Alternatives already explored, keyed by their pre-enforcement text —
  // this is the cycle protection that makes the recursive variant
  // terminate (A substitutable by B and B by A would otherwise ping-pong
  // forever, the paper's "indefinite compromise").
  std::set<std::string> seen_alternatives;
  seen_alternatives.insert(query.ToString());
  // Final enforced queries already emitted in some round.
  std::set<std::string> seen_enforced;

  std::vector<rql::RqlQuery> frontier;
  frontier.push_back(query.Clone());

  for (size_t round = 0; round < rounds && !frontier.empty(); ++round) {
    EnforcedQueries this_round;
    std::vector<rql::RqlQuery> next_frontier;
    for (const rql::RqlQuery& source : frontier) {
      WFRM_ASSIGN_OR_RETURN(std::vector<rql::RqlQuery> alternatives,
                            rewriter_.RewriteSubstitution(source));
      for (rql::RqlQuery& alt : alternatives) {
        if (!seen_alternatives.insert(alt.ToString()).second) continue;
        // Each alternative re-enters the primary pipeline (§2.1).
        WFRM_ASSIGN_OR_RETURN(EnforcedQueries enforced, EnforcePrimary(alt));
        for (size_t i = 0; i < enforced.queries.size(); ++i) {
          if (!seen_enforced.insert(enforced.queries[i].ToString()).second) {
            continue;
          }
          this_round.queries.push_back(std::move(enforced.queries[i]));
          this_round.qualified_types.push_back(
              std::move(enforced.qualified_types[i]));
        }
        next_frontier.push_back(std::move(alt));
      }
    }
    out.push_back(std::move(this_round));
    frontier = std::move(next_frontier);
  }
  // Pad so callers can index by round even when the frontier dried up.
  while (out.size() < rounds) out.emplace_back();
  return out;
}

}  // namespace wfrm::policy
