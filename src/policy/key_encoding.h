#ifndef WFRM_POLICY_KEY_ENCODING_H_
#define WFRM_POLICY_KEY_ENCODING_H_

#include <string>

#include "common/result.h"
#include "rel/value.h"

namespace wfrm::policy {

/// Order-preserving key normalization for interval bounds.
///
/// The paper stores interval bounds in the Filter table as strings
/// (footnote 3 proposes one table per data type "in the implementation";
/// footnote 4 introduces Min/Max sentinels). We realize both footnotes
/// with a single Filter relation by normalizing every bound into a string
/// whose lexicographic order matches the value order within each typed
/// attribute domain — the standard key-normalization trick of B-tree
/// engines. Encodings of different kinds never compare equal (distinct
/// leading tag bytes), and within one attribute all bounds share a kind.
///
/// Layout:
///   ""            — the domain Min sentinel (sorts before everything)
///   "b0"/"b1"     — booleans
///   "n" + hex16   — numerics, IEEE-754 double with sign-flip transform
///   "s" + bytes   — strings, raw
///   "\x7f"        — the domain Max sentinel (sorts after everything)
///
/// Numerics are widened to double: exact for |int| <= 2^53, ample for
/// the attribute domains of workflow activity specifications.

/// The Min/Max sentinels (paper footnote 4).
std::string EncodedDomainMin();
std::string EncodedDomainMax();

/// Encodes a non-null value. Fails on NULL.
Result<std::string> EncodeKey(const rel::Value& value);

/// Inverse of EncodeKey for tagged encodings; the Min/Max sentinels
/// decode to NULL (they stand for "unbounded"). Note that ints round-trip
/// as doubles.
Result<rel::Value> DecodeKey(const std::string& encoded);

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_KEY_ENCODING_H_
