#include "policy/interval.h"

namespace wfrm::policy {

Interval Interval::Point(rel::Value v) {
  Interval out;
  out.lower = v;
  out.upper = std::move(v);
  return out;
}

Result<Interval> Interval::FromComparison(rel::BinaryOp op, rel::Value value) {
  Interval out;
  switch (op) {
    case rel::BinaryOp::kEq:
      return Point(std::move(value));
    case rel::BinaryOp::kLt:
      out.upper = std::move(value);
      out.upper_inclusive = false;
      return out;
    case rel::BinaryOp::kLe:
      out.upper = std::move(value);
      return out;
    case rel::BinaryOp::kGt:
      out.lower = std::move(value);
      out.lower_inclusive = false;
      return out;
    case rel::BinaryOp::kGe:
      out.lower = std::move(value);
      return out;
    case rel::BinaryOp::kNe:
      return Status::InvalidArgument(
          "'!=' does not describe a convex interval; split it into two "
          "disjuncts first");
    default:
      return Status::InvalidArgument("operator is not a comparison");
  }
}

Result<bool> Interval::Contains(const rel::Value& v) const {
  if (v.is_null()) return false;
  if (lower) {
    WFRM_ASSIGN_OR_RETURN(int c, v.Compare(*lower));
    if (c < 0 || (c == 0 && !lower_inclusive)) return false;
  }
  if (upper) {
    WFRM_ASSIGN_OR_RETURN(int c, v.Compare(*upper));
    if (c > 0 || (c == 0 && !upper_inclusive)) return false;
  }
  return true;
}

namespace {

/// Compares bound positions; returns the tighter lower bound of the two.
struct BoundPick {
  const std::optional<rel::Value>* value;
  bool inclusive;
};

}  // namespace

Result<std::optional<Interval>> Interval::Intersect(
    const Interval& other) const {
  Interval out;

  // Tighter (larger) lower bound.
  if (!lower) {
    out.lower = other.lower;
    out.lower_inclusive = other.lower_inclusive;
  } else if (!other.lower) {
    out.lower = lower;
    out.lower_inclusive = lower_inclusive;
  } else {
    WFRM_ASSIGN_OR_RETURN(int c, lower->Compare(*other.lower));
    if (c > 0) {
      out.lower = lower;
      out.lower_inclusive = lower_inclusive;
    } else if (c < 0) {
      out.lower = other.lower;
      out.lower_inclusive = other.lower_inclusive;
    } else {
      out.lower = lower;
      out.lower_inclusive = lower_inclusive && other.lower_inclusive;
    }
  }

  // Tighter (smaller) upper bound.
  if (!upper) {
    out.upper = other.upper;
    out.upper_inclusive = other.upper_inclusive;
  } else if (!other.upper) {
    out.upper = upper;
    out.upper_inclusive = upper_inclusive;
  } else {
    WFRM_ASSIGN_OR_RETURN(int c, upper->Compare(*other.upper));
    if (c < 0) {
      out.upper = upper;
      out.upper_inclusive = upper_inclusive;
    } else if (c > 0) {
      out.upper = other.upper;
      out.upper_inclusive = other.upper_inclusive;
    } else {
      out.upper = upper;
      out.upper_inclusive = upper_inclusive && other.upper_inclusive;
    }
  }

  // Emptiness check.
  if (out.lower && out.upper) {
    WFRM_ASSIGN_OR_RETURN(int c, out.lower->Compare(*out.upper));
    if (c > 0) return std::optional<Interval>{};
    if (c == 0 && !(out.lower_inclusive && out.upper_inclusive)) {
      return std::optional<Interval>{};
    }
  }
  return std::optional<Interval>{std::move(out)};
}

Result<bool> Interval::Intersects(const Interval& other) const {
  WFRM_ASSIGN_OR_RETURN(std::optional<Interval> x, Intersect(other));
  return x.has_value();
}

std::string Interval::ToString() const {
  std::string out = lower_inclusive && lower ? "[" : "(";
  out += lower ? lower->ToString() : "-inf";
  out += ", ";
  out += upper ? upper->ToString() : "+inf";
  out += upper_inclusive && upper ? "]" : ")";
  return out;
}

bool Interval::operator==(const Interval& other) const {
  auto bound_eq = [](const std::optional<rel::Value>& a,
                     const std::optional<rel::Value>& b) {
    if (a.has_value() != b.has_value()) return false;
    return !a.has_value() || *a == *b;
  };
  return bound_eq(lower, other.lower) && bound_eq(upper, other.upper) &&
         (!lower || lower_inclusive == other.lower_inclusive) &&
         (!upper || upper_inclusive == other.upper_inclusive);
}

}  // namespace wfrm::policy
