#ifndef WFRM_POLICY_POLICY_MANAGER_H_
#define WFRM_POLICY_POLICY_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/request_context.h"
#include "common/result.h"
#include "policy/enforcement_cache.h"
#include "policy/rewriter.h"

namespace wfrm::policy {

/// What the policy manager hands back for one incoming RQL query: the
/// fully enforced queries to run, plus trace information for
/// explainability.
struct EnforcedQueries {
  /// The enhanced queries (qualification fan-out, then requirement
  /// enhancement of each). Empty means the CWA ruled every resource
  /// type out (§3.1).
  std::vector<rql::RqlQuery> queries;

  /// The qualified sub-types the fan-out produced, aligned with
  /// `queries`.
  std::vector<std::string> qualified_types;

  /// Deep copy (RqlQuery is move-only); what the rewrite cache stores
  /// and serves.
  EnforcedQueries Clone() const;
};

/// The policy manager of Figure 1: receives a resource query from the
/// query processor, rewrites it against the policy base, and (on
/// resource unavailability) generates substitution alternatives — each
/// of which re-enters qualification + requirement rewriting. Substitution
/// is never applied transitively (§1.2/§2.1): alternatives get no second
/// round of substitution.
///
/// EnforcePrimary results are memoized in a bounded LRU keyed by the
/// query's canonical text and tagged with the store epoch: repeated
/// enforcement of the same request at an unchanged epoch skips the
/// fan-out and rewriting entirely. Cached results are immutable and
/// shared — EnforcePrimaryShared serves the stored shared_ptr without a
/// deep copy, which is what the resource manager's hot path uses; the
/// Clone-returning EnforcePrimary remains for callers that mutate the
/// result. The LRU honours the store's `cache_enabled()` switch and
/// reports its traffic through the store's rewrite_cache_* counters.
class PolicyManager {
 public:
  PolicyManager(const org::OrgModel* org, const PolicyStore* store,
                size_t rewrite_cache_capacity = 1024)
      : org_(org), store_(store), rewriter_(org, store),
        rewrite_capacity_(rewrite_cache_capacity) {}

  /// Primary enforcement: §4.1 fan-out then §4.2 enhancement.
  ///
  /// With a non-null `parent` span, an "enforce_primary" child records
  /// the rewrite cache outcome and the full per-stage decision log
  /// (matched policy PIDs, fan-out, conjuncts). Tracing bypasses the
  /// rewrite LRU's serve path — the probe outcome is still recorded and
  /// counted, but the stages recompute so the trace is complete; the
  /// untraced path is byte-for-byte the old one.
  Result<EnforcedQueries> EnforcePrimary(const rql::RqlQuery& query,
                                         obs::TraceSpan* parent = nullptr)
      const;

  /// Copy-free variant of EnforcePrimary: a warm rewrite-cache hit hands
  /// back the cached immutable result by shared_ptr instead of deep-
  /// cloning every RqlQuery. This is the enforcement hot path — callers
  /// that only read the queries (the resource manager) should use it.
  ///
  /// With a non-null `ctx`, the rewrite aborts typed
  /// (kDeadlineExceeded/kCancelled) at the qualification/requirement
  /// stage boundary once the request is no longer worth enforcing for.
  Result<std::shared_ptr<const EnforcedQueries>> EnforcePrimaryShared(
      const rql::RqlQuery& query, obs::TraceSpan* parent = nullptr,
      const RequestContext* ctx = nullptr) const;

  /// Fallback enforcement: §4.3 alternatives from substitution policies,
  /// each then treated as a new query (qualification + requirement).
  /// The input must be the *initial* query, not an enforced one.
  Result<EnforcedQueries> EnforceAlternatives(
      const rql::RqlQuery& query) const;

  /// Extension of the §1.2 discussion: the paper rejects transitive
  /// substitution ("one does not want any compromise to continue
  /// indefinitely") and fixes one round; this implements the recursive
  /// variant with an explicit round bound and cycle protection, so the
  /// trade-off is measurable. Element r of the result holds the enforced
  /// queries reachable after r+1 substitution steps; alternatives seen
  /// in earlier rounds are not revisited. EnforceAlternatives(q) equals
  /// EnforceAlternativesRounds(q, 1)[0].
  /// `ctx` (optional) is checked before every substitution round: an
  /// expired or cancelled request stops fanning out alternatives.
  Result<std::vector<EnforcedQueries>> EnforceAlternativesRounds(
      const rql::RqlQuery& query, size_t rounds,
      obs::TraceSpan* parent = nullptr,
      const RequestContext* ctx = nullptr) const;

  const Rewriter& rewriter() const { return rewriter_; }
  const PolicyStore& store() const { return *store_; }

  /// Entries currently held by the rewrite LRU (tests/benches).
  size_t rewrite_cache_size() const;

 private:
  struct RewriteEntry {
    std::string key;
    uint64_t epoch = 0;
    std::shared_ptr<const EnforcedQueries> value;
  };

  /// Probes the LRU; a hit is refreshed to the front and the stored
  /// immutable value returned by pointer (no copy). nullptr = miss or
  /// stale; a stale-epoch entry is dropped in place.
  std::shared_ptr<const EnforcedQueries> RewriteCacheGet(
      const std::string& key, uint64_t epoch, CacheLookup* outcome) const;
  void RewriteCachePut(const std::string& key, uint64_t epoch,
                       std::shared_ptr<const EnforcedQueries> value) const;

  const org::OrgModel* org_;
  const PolicyStore* store_;
  Rewriter rewriter_;

  size_t rewrite_capacity_;
  mutable std::mutex rewrite_mu_;
  /// Front = most recently used.
  mutable std::list<RewriteEntry> rewrite_lru_;
  mutable std::unordered_map<std::string, std::list<RewriteEntry>::iterator>
      rewrite_map_;
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_POLICY_MANAGER_H_
