#ifndef WFRM_POLICY_DNF_H_
#define WFRM_POLICY_DNF_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/strings.h"
#include "policy/interval.h"
#include "rel/executor.h"
#include "rel/expr.h"

namespace wfrm::policy {

struct CaseInsensitiveLess {
  bool operator()(const std::string& a, const std::string& b) const {
    return AsciiToLower(a) < AsciiToLower(b);
  }
};

/// One conjunct of a DNF-normalized range clause: attribute → interval
/// (intersected when the conjunct constrains an attribute repeatedly).
/// An empty map is the unconstrained range (matches everything).
using ConjunctiveRange = std::map<std::string, Interval, CaseInsensitiveLess>;

/// Normalizes a With/Where range clause into disjunctive normal form
/// (paper §5.1):
///
/// * negations are pushed down; `!=` splits into `<` Or `>`;
/// * each disjunct's predicates group by attribute into one interval;
/// * contradictory disjuncts (empty intervals) are dropped.
///
/// Returns one ConjunctiveRange per surviving disjunct. A null `clause`
/// yields a single unconstrained range. Atoms must be of the form
/// `attribute op constant` (or mirrored); anything else — subqueries,
/// parameters, arithmetic — is rejected, matching the PL grammar's
/// restriction on With clauses ("no nested SQL statements", §3.2).
Result<std::vector<ConjunctiveRange>> NormalizeRangeClause(
    const rel::Expr* clause);

/// Conservative interval extraction from an arbitrary Where clause: only
/// top-level And-connected `attribute op constant` atoms contribute;
/// everything else is ignored (i.e. treated as unconstraining). Used for
/// the §4.3 substitution-relevance test on the *query* side, where the
/// Where clause may contain predicates beyond simple ranges.
ConjunctiveRange ExtractConjunctiveRange(const rel::Expr* clause);

/// The query-side disjunctive range view for the §4.3 substitution
/// intersection test. When the Where clause is a pure range clause the
/// exact DNF is returned, so strict bounds and `!=` exclusions are
/// honored (`Where Age != 30` must NOT intersect a policy range
/// [30, 30]). Clauses the DNF normalizer rejects — subqueries,
/// parameters, arithmetic — fall back to the conservative
/// ExtractConjunctiveRange single conjunct, which can only widen the
/// range (treat a substitution as relevant), never narrow it.
std::vector<ConjunctiveRange> QueryRangesForIntersection(
    const rel::Expr* clause);

/// True when `bindings` (attribute → constant) falls inside `range`:
/// every constrained attribute is bound and its value lies in the
/// interval. Unbound constrained attributes fail the test, mirroring the
/// Figure 14 counting semantics.
Result<bool> RangeContainsBindings(const ConjunctiveRange& range,
                                   const rel::ParamMap& bindings);

/// True when two conjunctive ranges intersect: for every attribute
/// constrained by both, the intervals share a point. Attributes
/// constrained by only one side do not exclude intersection.
Result<bool> RangesIntersect(const ConjunctiveRange& a,
                             const ConjunctiveRange& b);

/// Renders "attr in [lo, hi] And ..." for diagnostics.
std::string RangeToString(const ConjunctiveRange& range);

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_DNF_H_
