#include "policy/dnf.h"

namespace wfrm::policy {

namespace {

/// An atomic range predicate.
struct Atom {
  std::string attribute;
  rel::BinaryOp op;  // Comparison; kNe never survives normalization.
  rel::Value value;
};

/// Extracts `attribute op constant` (or mirrored) from a comparison.
Result<Atom> ExtractAtom(const rel::BinaryExpr& cmp) {
  const rel::Expr* col = &cmp.left();
  const rel::Expr* val = &cmp.right();
  rel::BinaryOp op = cmp.op();
  if (col->kind() != rel::Expr::Kind::kColumnRef) {
    std::swap(col, val);
    op = rel::SwapComparison(op);
  }
  if (col->kind() != rel::Expr::Kind::kColumnRef ||
      val->kind() != rel::Expr::Kind::kLiteral) {
    return Status::InvalidArgument(
        "range clause atoms must have the form 'attribute op constant': " +
        cmp.ToString());
  }
  const auto& ref = static_cast<const rel::ColumnRefExpr&>(*col);
  if (!ref.qualifier().empty()) {
    return Status::InvalidArgument(
        "qualified attribute references are not allowed in range clauses: " +
        ref.ToString());
  }
  const rel::Value& v = static_cast<const rel::LiteralExpr&>(*val).value();
  if (v.is_null()) {
    return Status::InvalidArgument(
        "NULL is not a valid range bound in: " + cmp.ToString());
  }
  return Atom{ref.name(), op, v};
}

/// DNF as a list of conjuncts, each a list of atoms.
using Dnf = std::vector<std::vector<Atom>>;

Dnf CrossProduct(const Dnf& a, const Dnf& b) {
  Dnf out;
  out.reserve(a.size() * b.size());
  for (const auto& ca : a) {
    for (const auto& cb : b) {
      std::vector<Atom> merged = ca;
      merged.insert(merged.end(), cb.begin(), cb.end());
      out.push_back(std::move(merged));
    }
  }
  return out;
}

/// Recursive normalization with a negation flag (negation pushdown and
/// DNF expansion in one pass).
Result<Dnf> ToDnf(const rel::Expr& e, bool negated) {
  switch (e.kind()) {
    case rel::Expr::Kind::kUnary: {
      const auto& u = static_cast<const rel::UnaryExpr&>(e);
      if (u.op() != rel::UnaryOp::kNot) {
        return Status::InvalidArgument(
            "only Not is allowed as a unary operator in range clauses");
      }
      return ToDnf(u.operand(), !negated);
    }
    case rel::Expr::Kind::kBinary: {
      const auto& b = static_cast<const rel::BinaryExpr&>(e);
      if (b.op() == rel::BinaryOp::kAnd || b.op() == rel::BinaryOp::kOr) {
        // De Morgan under negation.
        bool is_and = (b.op() == rel::BinaryOp::kAnd) != negated;
        WFRM_ASSIGN_OR_RETURN(Dnf l, ToDnf(b.left(), negated));
        WFRM_ASSIGN_OR_RETURN(Dnf r, ToDnf(b.right(), negated));
        if (is_and) return CrossProduct(l, r);
        l.insert(l.end(), std::make_move_iterator(r.begin()),
                 std::make_move_iterator(r.end()));
        return l;
      }
      if (!rel::IsComparison(b.op())) {
        return Status::InvalidArgument(
            "range clauses allow only comparisons, And, Or, Not: " +
            b.ToString());
      }
      WFRM_ASSIGN_OR_RETURN(Atom atom, ExtractAtom(b));
      if (negated) atom.op = rel::NegateComparison(atom.op);
      if (atom.op == rel::BinaryOp::kNe) {
        // != v  ≡  (< v) Or (> v)   (paper §5.1).
        Atom lt = atom, gt = atom;
        lt.op = rel::BinaryOp::kLt;
        gt.op = rel::BinaryOp::kGt;
        return Dnf{{lt}, {gt}};
      }
      return Dnf{{std::move(atom)}};
    }
    case rel::Expr::Kind::kInList: {
      // attr In (v1, v2)  ≡  attr = v1 Or attr = v2 (negated: all !=,
      // conjoined — handled by recursion on an equivalent tree would be
      // complex; handle directly).
      const auto& in = static_cast<const rel::InListExpr&>(e);
      if (in.needle().kind() != rel::Expr::Kind::kColumnRef) {
        return Status::InvalidArgument(
            "In-lists in range clauses need an attribute on the left");
      }
      const auto& ref = static_cast<const rel::ColumnRefExpr&>(in.needle());
      Dnf out;
      if (!negated) {
        for (const auto& item : in.haystack()) {
          if (item->kind() != rel::Expr::Kind::kLiteral) {
            return Status::InvalidArgument(
                "In-list members must be constants in range clauses");
          }
          const auto& v = static_cast<const rel::LiteralExpr&>(*item).value();
          out.push_back({Atom{ref.name(), rel::BinaryOp::kEq, v}});
        }
        return out;
      }
      // Not In: conjunction of !=, each of which splits — build by
      // repeated cross product.
      Dnf acc = {{}};
      for (const auto& item : in.haystack()) {
        if (item->kind() != rel::Expr::Kind::kLiteral) {
          return Status::InvalidArgument(
              "In-list members must be constants in range clauses");
        }
        const auto& v = static_cast<const rel::LiteralExpr&>(*item).value();
        Dnf split = {{Atom{ref.name(), rel::BinaryOp::kLt, v}},
                     {Atom{ref.name(), rel::BinaryOp::kGt, v}}};
        acc = CrossProduct(acc, split);
      }
      return acc;
    }
    default:
      return Status::InvalidArgument(
          "range clauses allow only comparisons over constants, And, Or, "
          "Not and In-lists: " + e.ToString());
  }
}

/// Intersects a conjunct's atoms into a per-attribute interval map;
/// nullopt when contradictory.
Result<std::optional<ConjunctiveRange>> ConjunctToRange(
    const std::vector<Atom>& atoms) {
  ConjunctiveRange range;
  for (const Atom& atom : atoms) {
    WFRM_ASSIGN_OR_RETURN(Interval iv,
                          Interval::FromComparison(atom.op, atom.value));
    auto it = range.find(atom.attribute);
    if (it == range.end()) {
      range.emplace(atom.attribute, std::move(iv));
      continue;
    }
    WFRM_ASSIGN_OR_RETURN(std::optional<Interval> merged,
                          it->second.Intersect(iv));
    if (!merged) return std::optional<ConjunctiveRange>{};
    it->second = std::move(*merged);
  }
  return std::optional<ConjunctiveRange>{std::move(range)};
}

}  // namespace

Result<std::vector<ConjunctiveRange>> NormalizeRangeClause(
    const rel::Expr* clause) {
  if (clause == nullptr) return std::vector<ConjunctiveRange>{{}};
  WFRM_ASSIGN_OR_RETURN(Dnf dnf, ToDnf(*clause, /*negated=*/false));
  std::vector<ConjunctiveRange> out;
  for (const auto& conjunct : dnf) {
    WFRM_ASSIGN_OR_RETURN(std::optional<ConjunctiveRange> range,
                          ConjunctToRange(conjunct));
    if (range) out.push_back(std::move(*range));
  }
  return out;
}

ConjunctiveRange ExtractConjunctiveRange(const rel::Expr* clause) {
  ConjunctiveRange range;
  if (clause == nullptr) return range;

  // Collect top-level And-connected atoms.
  std::vector<const rel::Expr*> stack = {clause};
  while (!stack.empty()) {
    const rel::Expr* e = stack.back();
    stack.pop_back();
    if (e->kind() != rel::Expr::Kind::kBinary) continue;
    const auto& b = static_cast<const rel::BinaryExpr&>(*e);
    if (b.op() == rel::BinaryOp::kAnd) {
      stack.push_back(&b.left());
      stack.push_back(&b.right());
      continue;
    }
    if (!rel::IsComparison(b.op()) || b.op() == rel::BinaryOp::kNe) continue;
    auto atom = ExtractAtom(b);
    if (!atom.ok()) continue;
    auto iv = Interval::FromComparison(atom->op, atom->value);
    if (!iv.ok()) continue;
    auto it = range.find(atom->attribute);
    if (it == range.end()) {
      range.emplace(atom->attribute, std::move(*iv));
    } else {
      auto merged = it->second.Intersect(*iv);
      if (merged.ok() && merged.ValueOrDie()) {
        it->second = std::move(*merged.ValueOrDie());
      }
      // Contradictions and type clashes are left as-is: extraction is
      // conservative and only used for relevance pre-filtering.
    }
  }
  return range;
}

std::vector<ConjunctiveRange> QueryRangesForIntersection(
    const rel::Expr* clause) {
  if (clause == nullptr) return {ConjunctiveRange{}};
  if (auto exact = NormalizeRangeClause(clause); exact.ok()) {
    // An empty disjunct list means the clause is unsatisfiable: the
    // query can match nothing, so no substitution range intersects it.
    return *exact;
  }
  return {ExtractConjunctiveRange(clause)};
}

Result<bool> RangeContainsBindings(const ConjunctiveRange& range,
                                   const rel::ParamMap& bindings) {
  for (const auto& [attr, interval] : range) {
    auto it = bindings.find(attr);
    if (it == bindings.end()) return false;
    WFRM_ASSIGN_OR_RETURN(bool inside, interval.Contains(it->second));
    if (!inside) return false;
  }
  return true;
}

Result<bool> RangesIntersect(const ConjunctiveRange& a,
                             const ConjunctiveRange& b) {
  for (const auto& [attr, interval] : a) {
    auto it = b.find(attr);
    if (it == b.end()) continue;
    WFRM_ASSIGN_OR_RETURN(bool x, interval.Intersects(it->second));
    if (!x) return false;
  }
  return true;
}

std::string RangeToString(const ConjunctiveRange& range) {
  if (range.empty()) return "<unconstrained>";
  std::string out;
  for (const auto& [attr, interval] : range) {
    if (!out.empty()) out += " And ";
    out += attr + " in " + interval.ToString();
  }
  return out;
}

}  // namespace wfrm::policy
