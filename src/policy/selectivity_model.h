#ifndef WFRM_POLICY_SELECTIVITY_MODEL_H_
#define WFRM_POLICY_SELECTIVITY_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wfrm::policy {

/// The analytical model of paper §6 ("Analytical Evaluation").
///
/// Parameters (paper's notation):
///   |A| — number of activity types
///   |R| — number of resource types
///   q   — average number of activity types a resource type is
///         qualified for (requirement policies per resource, per case)
///   c   — average number of "cases" per (resource, activity) pair
///   i   — average number of intervals per activity range
///   N   — number of requirement policies; N = |R| · q · c
///
/// Both hierarchies are complete binary trees, so the average number of
/// ancestors of a type is log2 of the hierarchy size (the paper's
/// average-height derivation).
struct SelectivityParams {
  size_t num_activities = 64;  // |A| = 2^6 in Figure 17.
  size_t num_resources = 64;   // |R| = 2^6 in Figure 17.
  double q = 8;
  double c = 8;
  double intervals_per_range = 1;  // i

  double N() const { return static_cast<double>(num_resources) * q * c; }
};

/// Selectivity rate of the Figure 13 Relevant_Policies view:
///   (log2|A| · log2|R|) / (|R| · q)
double SelectivityPolicies(const SelectivityParams& p);

/// Selectivity rate of the Figure 14 Relevant_Filter view:
///   1 / (|R| · c)
double SelectivityFilter(const SelectivityParams& p);

/// One point of the Figure 17 sweep.
struct SelectivityPoint {
  double c = 0;
  double q = 0;
  double policies_rate = 0;
  double filter_rate = 0;
};

/// The Figure 17 experiment: N = 2^12, |A| = |R| = 2^6 fixed, c swept
/// over powers of two (q = N / (|R|·c) anti-proportional to c).
std::vector<SelectivityPoint> Figure17Sweep();

/// Generic sweep with caller-chosen totals.
std::vector<SelectivityPoint> SelectivitySweep(size_t num_activities,
                                               size_t num_resources,
                                               double total_policies,
                                               const std::vector<double>& cs);

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_SELECTIVITY_MODEL_H_
