#include "policy/analyzer.h"

#include <unordered_set>

#include "rel/parser.h"

namespace wfrm::policy {

namespace {

/// Where-clause knowledge for conflict detection: its DNF interval form
/// when expressible, or "opaque" (sub-queries, parameters, ...).
struct WhereInfo {
  bool opaque = true;
  std::vector<ConjunctiveRange> disjuncts;
};

WhereInfo AnalyzeWhere(const std::string& where_clause) {
  WhereInfo info;
  if (where_clause.empty()) {
    info.opaque = false;
    info.disjuncts = {{}};  // Always true.
    return info;
  }
  auto expr = rel::SqlParser::ParseExpr(where_clause);
  if (!expr.ok()) return info;
  auto normalized = NormalizeRangeClause(expr->get());
  if (!normalized.ok()) return info;
  info.opaque = false;
  info.disjuncts = std::move(normalized).ValueOrDie();
  return info;
}

/// True when some pair of disjuncts from the two sides can hold
/// simultaneously (over the interval-representable attributes).
Result<bool> Satisfiable(const std::vector<ConjunctiveRange>& a,
                         const std::vector<ConjunctiveRange>& b) {
  for (const ConjunctiveRange& da : a) {
    for (const ConjunctiveRange& db : b) {
      WFRM_ASSIGN_OR_RETURN(bool x, RangesIntersect(da, db));
      if (x) return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<std::string>> PolicyAnalyzer::DeadActivities() const {
  const org::TypeHierarchy& activities = store_->org().activities();
  std::vector<std::string> out;
  for (const std::string& activity : activities.AllTypes()) {
    // Alive iff some qualification policy covers the activity through
    // inheritance; under the CWA everything else is unservable.
    bool alive = false;
    WFRM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                          activities.Ancestors(activity));
    std::unordered_set<std::string, CaseInsensitiveHash, CaseInsensitiveEq>
        ancestor_set(ancestors.begin(), ancestors.end());
    for (const auto& q : store_->ListQualifications()) {
      if (ancestor_set.count(q.policy.activity) > 0) {
        alive = true;
        break;
      }
    }
    if (!alive) out.push_back(activity);
  }
  return out;
}

Result<std::vector<std::string>> PolicyAnalyzer::IdleResourceTypes() const {
  const org::TypeHierarchy& resources = store_->org().resources();
  std::vector<std::string> out;
  for (const std::string& resource : resources.AllTypes()) {
    bool qualified = false;
    WFRM_ASSIGN_OR_RETURN(std::vector<std::string> ancestors,
                          resources.Ancestors(resource));
    std::unordered_set<std::string, CaseInsensitiveHash, CaseInsensitiveEq>
        ancestor_set(ancestors.begin(), ancestors.end());
    for (const auto& q : store_->ListQualifications()) {
      if (ancestor_set.count(q.policy.resource) > 0) {
        qualified = true;
        break;
      }
    }
    if (!qualified) out.push_back(resource);
  }
  return out;
}

Result<std::vector<PolicyAnalyzer::RequirementConflict>>
PolicyAnalyzer::RequirementConflicts() const {
  WFRM_ASSIGN_OR_RETURN(auto groups, store_->ListRequirements());
  const org::TypeHierarchy& resources = store_->org().resources();
  const org::TypeHierarchy& activities = store_->org().activities();

  // Pre-analyze every group's Where clause once.
  std::vector<WhereInfo> wheres;
  wheres.reserve(groups.size());
  for (const auto& g : groups) wheres.push_back(AnalyzeWhere(g.where_clause));

  std::vector<RequirementConflict> out;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (wheres[i].opaque) continue;
    for (size_t j = i + 1; j < groups.size(); ++j) {
      if (wheres[j].opaque) continue;
      const auto& a = groups[i];
      const auto& b = groups[j];

      // Both policies apply to a common query only when one resource
      // type is a sub-type of the other (tree hierarchy), and likewise
      // for activities.
      WFRM_ASSIGN_OR_RETURN(bool res_ab,
                            resources.IsSubtypeOf(a.resource, b.resource));
      WFRM_ASSIGN_OR_RETURN(bool res_ba,
                            resources.IsSubtypeOf(b.resource, a.resource));
      if (!res_ab && !res_ba) continue;
      WFRM_ASSIGN_OR_RETURN(bool act_ab,
                            activities.IsSubtypeOf(a.activity, b.activity));
      WFRM_ASSIGN_OR_RETURN(bool act_ba,
                            activities.IsSubtypeOf(b.activity, a.activity));
      if (!act_ab && !act_ba) continue;

      // Their activity ranges must overlap for a common query to match
      // both.
      WFRM_ASSIGN_OR_RETURN(bool ranges_overlap,
                            Satisfiable(a.range_data, b.range_data));
      if (!ranges_overlap) continue;

      // And-related conditions: a conflict when no joint assignment of
      // the interval-representable attributes satisfies both.
      WFRM_ASSIGN_OR_RETURN(bool compatible,
                            Satisfiable(wheres[i].disjuncts,
                                        wheres[j].disjuncts));
      if (compatible) continue;

      RequirementConflict conflict;
      conflict.group_a = a.group;
      conflict.group_b = b.group;
      conflict.resource = res_ab ? a.resource : b.resource;
      conflict.activity = act_ab ? a.activity : b.activity;
      conflict.detail =
          "requirements '" + a.where_clause + "' (group " +
          std::to_string(a.group) + ") and '" + b.where_clause +
          "' (group " + std::to_string(b.group) +
          ") are jointly unsatisfiable for " + conflict.resource + " doing " +
          conflict.activity + " on their overlapping activity range";
      out.push_back(std::move(conflict));
    }
  }
  return out;
}

Result<std::vector<int64_t>> PolicyAnalyzer::UselessSubstitutions() const {
  WFRM_ASSIGN_OR_RETURN(auto groups, store_->ListSubstitutions());
  const org::TypeHierarchy& activities = store_->org().activities();
  std::vector<int64_t> out;
  for (const auto& g : groups) {
    // Useful iff for some activity sub-type the substituting resource
    // fans out to at least one qualified type.
    WFRM_ASSIGN_OR_RETURN(std::vector<std::string> acts,
                          activities.Descendants(g.activity));
    bool useful = false;
    for (const std::string& a : acts) {
      WFRM_ASSIGN_OR_RETURN(
          std::vector<std::string> qualified,
          store_->QualifiedSubtypes(g.substituting_resource, a));
      if (!qualified.empty()) {
        useful = true;
        break;
      }
    }
    if (!useful) out.push_back(g.group);
  }
  return out;
}

Result<std::string> PolicyAnalyzer::Report() const {
  std::string out = "Policy base analysis\n====================\n";
  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> dead, DeadActivities());
  out += "Dead activities (no qualified resource type, CWA): " +
         std::to_string(dead.size()) + "\n";
  for (const std::string& a : dead) out += "  " + a + "\n";

  WFRM_ASSIGN_OR_RETURN(std::vector<std::string> idle, IdleResourceTypes());
  out += "Idle resource types (qualified for nothing): " +
         std::to_string(idle.size()) + "\n";
  for (const std::string& r : idle) out += "  " + r + "\n";

  WFRM_ASSIGN_OR_RETURN(auto conflicts, RequirementConflicts());
  out += "Requirement conflicts: " + std::to_string(conflicts.size()) + "\n";
  for (const auto& c : conflicts) out += "  " + c.detail + "\n";

  WFRM_ASSIGN_OR_RETURN(auto useless, UselessSubstitutions());
  out += "Useless substitutions (substitute never qualified): " +
         std::to_string(useless.size()) + "\n";
  for (int64_t g : useless) out += "  group " + std::to_string(g) + "\n";
  return out;
}

}  // namespace wfrm::policy
