#ifndef WFRM_POLICY_NAIVE_STORE_H_
#define WFRM_POLICY_NAIVE_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "org/org_model.h"
#include "policy/policy_ast.h"
#include "policy/policy_store.h"

namespace wfrm::policy {

/// The §5.1 strawman the paper argues against: requirement policies kept
/// in a single 4-column relation
///
///   NaivePolicies(PID, Activity, Resource, WithClause, WhereClause)
///
/// where the activity range is an uninterpreted *string*. Type matching
/// still works by string comparison against the ancestor sets, but range
/// applicability cannot use any index: every retrieval scans all
/// policies, re-parses each stored With clause and evaluates the
/// specification against it. This is the baseline the interval-based
/// representation is measured against (bench/bench_retrieval.cc).
class NaivePolicyStore {
 public:
  explicit NaivePolicyStore(const org::OrgModel* org) : org_(org) {}

  /// Adds a requirement policy; returns its PID.
  Result<int64_t> AddRequirement(const RequirementPolicy& p);

  /// Same relevance semantics as PolicyStore::RelevantRequirements
  /// (group == pid here: no DNF splitting happens).
  Result<std::vector<RelevantRequirement>> RelevantRequirements(
      const std::string& resource, const std::string& activity,
      const rel::ParamMap& spec) const;

  size_t size() const { return rows_.size(); }

 private:
  struct NaiveRow {
    int64_t pid;
    std::string activity;
    std::string resource;
    std::string with_clause;   // Raw text; empty = unconstrained.
    std::string where_clause;  // Raw text; empty = none.
  };

  const org::OrgModel* org_;
  std::vector<NaiveRow> rows_;
  int64_t next_pid_ = 100;
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_NAIVE_STORE_H_
