#include "policy/compiled_policy.h"

#include <algorithm>

#include "policy/policy_store.h"

namespace wfrm::policy {

size_t CompiledPolicyTable::num_interval_rows() const {
  size_t n = 0;
  for (const AttrPartition& p : partitions) n += p.lo.size();
  return n;
}

std::vector<RelevantRequirement> CompiledPolicyTable::Probe(
    const std::vector<std::pair<std::string, std::string>>& encoded_spec)
    const {
  std::vector<int64_t> counts(pids.size(), 0);
  for (const auto& [attr, enc] : encoded_spec) {
    auto it = std::lower_bound(partitions.begin(), partitions.end(), attr,
                               [](const AttrPartition& p,
                                  const std::string& a) {
                                 return p.attribute < a;
                               });
    if (it == partitions.end() || it->attribute != attr) continue;
    const AttrPartition& p = *it;
    // Rows with lo <= enc form a prefix of the lo-sorted arrays.
    const size_t end = static_cast<size_t>(
        std::upper_bound(p.lo.begin(), p.lo.end(), enc) - p.lo.begin());
    for (size_t i = 0; i < end; ++i) {
      const bool lo_ok = p.lo_incl[i] != 0 || p.lo[i] < enc;
      const bool hi_ok =
          enc < p.hi[i] || (enc == p.hi[i] && p.hi_incl[i] != 0);
      counts[p.entry[i]] += static_cast<int64_t>(lo_ok && hi_ok);
    }
  }
  std::vector<RelevantRequirement> out;
  for (size_t i = 0; i < pids.size(); ++i) {
    if (num_intervals[i] == 0 || counts[i] == num_intervals[i]) {
      out.push_back(
          RelevantRequirement{pids[i], groups[i], where_clauses[i]});
    }
  }
  return out;
}

}  // namespace wfrm::policy
