#ifndef WFRM_POLICY_COMPILED_POLICY_H_
#define WFRM_POLICY_COMPILED_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wfrm::policy {

struct RelevantRequirement;

/// The requirement policies applicable to one (resource, activity) pair,
/// lowered out of the relational representation into flat struct-of-arrays
/// interval tables.
///
/// Layout: one entry per candidate policy row (sorted by PID), and per
/// attribute a partition of that candidate set's interval rows sorted by
/// encoded lower bound. A warm Enforce probe is then, per bound
/// attribute, one binary search plus a branch-light linear scan bumping a
/// per-entry enclosure counter — no tree walk, no SQL, no locks. The
/// table is immutable once built and shared via shared_ptr, cached keyed
/// by the store's mutation epoch, so any policy or hierarchy change
/// simply abandons it.
class CompiledPolicyTable {
 public:
  struct AttrPartition {
    std::string attribute;  // Canonical declared spelling.
    // Parallel arrays sorted by `lo` (order-preserving encoded bounds,
    // key_encoding.h).
    std::vector<std::string> lo;
    std::vector<std::string> hi;
    std::vector<uint8_t> lo_incl;
    std::vector<uint8_t> hi_incl;
    std::vector<uint32_t> entry;  // Index into the entry arrays.
  };

  // Entry arrays, sorted by PID so probe output needs no sort.
  std::vector<int64_t> pids;
  std::vector<int64_t> groups;
  std::vector<int64_t> num_intervals;
  std::vector<std::string> where_clauses;
  // Partitions sorted by attribute (probed by binary search).
  std::vector<AttrPartition> partitions;

  size_t num_entries() const { return pids.size(); }
  size_t num_interval_rows() const;

  /// §4.2 probe over an encoded specification (canonical attribute →
  /// EncodeKey'd value): counts enclosing intervals per entry and emits
  /// the entries whose intervals all enclose the specification, or that
  /// constrain no interval — exactly the Figure 15 union, sorted by PID.
  /// Thread-safe (const, immutable data).
  std::vector<RelevantRequirement> Probe(
      const std::vector<std::pair<std::string, std::string>>& encoded_spec)
      const;
};

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_COMPILED_POLICY_H_
