#ifndef WFRM_POLICY_REWRITER_H_
#define WFRM_POLICY_REWRITER_H_

#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "policy/policy_store.h"
#include "rql/rql.h"

namespace wfrm::policy {

/// Implements the three policy-enforcement rewritings of paper §4.
///
/// All rewritings take a *bound* RqlQuery (see rql::BindRql) and produce
/// bound queries. Activity-attribute parameters (`[Attr]`) occurring in
/// policy conditions are substituted with the query's activity
/// specification values, so rewritten queries are self-contained — the
/// textual outputs of Figures 10–12 fall out of ToString().
class Rewriter {
 public:
  Rewriter(const org::OrgModel* org, const PolicyStore* store)
      : org_(org), store_(store) {}

  /// §4.1, Figure 10: replaces the requested resource type by each of
  /// its sub-types qualified (via qualification policies, under the CWA)
  /// for some super-type of the query's activity. An empty result means
  /// no resource type may carry out the activity.
  ///
  /// All three rewritings take an optional trace span: when non-null, a
  /// child span is recorded with the stage's decisions (matched policy
  /// PIDs, fan-out sizes, rendered conjuncts/alternatives). The null
  /// path costs one branch.
  Result<std::vector<rql::RqlQuery>> RewriteQualification(
      const rql::RqlQuery& query, obs::TraceSpan* parent = nullptr) const;

  /// §4.2, Figure 11: conjoins the Where clauses of all relevant
  /// requirement policies onto the query (one per policy group — DNF
  /// splitting must not duplicate enforcement).
  Result<rql::RqlQuery> RewriteRequirement(
      const rql::RqlQuery& query, obs::TraceSpan* parent = nullptr) const;

  /// §4.3, Figure 12: one alternative query per relevant substitution
  /// policy, with the From/Where replaced by the substituting resource
  /// and its description. Alternatives are deduplicated.
  Result<std::vector<rql::RqlQuery>> RewriteSubstitution(
      const rql::RqlQuery& query, obs::TraceSpan* parent = nullptr) const;

  /// Canonical cache key of a bound query — the text every enforcement
  /// cache (PolicyManager's rewrite LRU, cycle protection in
  /// EnforceAlternativesRounds) keys on. Bound queries render type and
  /// attribute names in canonical spelling, so textual equality is
  /// semantic equality.
  static std::string EnforcementKey(const rql::RqlQuery& query) {
    return query.ToString();
  }

 private:
  const org::OrgModel* org_;
  const PolicyStore* store_;
};

/// Replaces every `[Name]` parameter with the constant bound to `Name`
/// in `params`, recursing into subqueries. Fails on unbound parameters.
Result<rel::ExprPtr> SubstituteParameters(const rel::Expr& expr,
                                          const rel::ParamMap& params);

}  // namespace wfrm::policy

#endif  // WFRM_POLICY_REWRITER_H_
