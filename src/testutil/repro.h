#ifndef WFRM_TESTUTIL_REPRO_H_
#define WFRM_TESTUTIL_REPRO_H_

#include <string>

#include "common/result.h"

namespace wfrm::testutil {

/// Failure-repro drop box shared by the seeded CI suites (differential
/// fuzzer, replication/shard chaos): when the WFRM_REPRO_DIR environment
/// variable is set, failing cases write their generating artifacts there
/// and CI uploads the directory; unset, dumping is a no-op.

/// The configured repro directory (created on first use), or "" when
/// WFRM_REPRO_DIR is unset.
std::string ReproDir();

/// Writes `<ReproDir()>/<name>` with `content`. OK-and-no-op when
/// dumping is disabled.
Status WriteRepro(const std::string& name, const std::string& content);

}  // namespace wfrm::testutil

#endif  // WFRM_TESTUTIL_REPRO_H_
