#include "testutil/paper_org.h"

namespace wfrm::testutil {

namespace {

using rel::DataType;
using rel::Value;

Status AddEmployee(org::OrgModel* org, const std::string& type,
                   const std::string& id, const std::string& location,
                   const std::string& language, int64_t experience) {
  std::map<std::string, Value> values = {
      {"ContactInfo", Value::String(id + "@acme.example")},
      {"Location", Value::String(location)},
      {"Language", Value::String(language)},
      {"Experience", Value::Int(experience)}};
  return org->AddResource(type, id, values).status();
}

}  // namespace

const char kPaperPolicies[] = R"(
  Qualify Programmer For Engineering;
  Qualify Analyst For Analysis;
  Qualify Manager For Approval;

  Require Programmer
    Where Experience > 5
    For Programming
    With NumberOfLines > 10000;

  Require Employee
    Where Language = 'Spanish'
    For Activity
    With Location = 'Mexico';

  Require Manager
    Where ID = (Select Mgr From ReportsTo Where Emp = [Requester])
    For Approval
    With Amount < 1000;

  Require Manager
    Where ID = (Select Mgr From ReportsTo Where level = 2
                Start with Emp = [Requester]
                Connect by Prior Mgr = Emp)
    For Approval
    With Amount > 1000 And Amount < 5000;

  Substitute Engineer Where Location = 'PA'
    By Engineer Where Location = 'Cupertino'
    For Programming
    With NumberOfLines < 50000
)";

Result<std::unique_ptr<org::OrgModel>> BuildPaperOrg() {
  auto org = std::make_unique<org::OrgModel>();

  // ---- Resource hierarchy (Figure 2, left) ------------------------------
  WFRM_RETURN_NOT_OK(org->DefineResourceType(
      "Employee", "",
      {{"ContactInfo", DataType::kString},
       {"Location", DataType::kString},
       {"Language", DataType::kString},
       {"Experience", DataType::kInt}}));
  WFRM_RETURN_NOT_OK(org->DefineResourceType("Engineer", "Employee"));
  WFRM_RETURN_NOT_OK(org->DefineResourceType("Programmer", "Engineer"));
  WFRM_RETURN_NOT_OK(org->DefineResourceType("Analyst", "Engineer"));
  WFRM_RETURN_NOT_OK(org->DefineResourceType("Manager", "Employee"));
  WFRM_RETURN_NOT_OK(org->DefineResourceType("Secretary", "Employee"));

  // ---- Activity hierarchy (Figure 2, right) -----------------------------
  WFRM_RETURN_NOT_OK(org->DefineActivityType(
      "Activity", "", {{"Location", DataType::kString}}));
  WFRM_RETURN_NOT_OK(org->DefineActivityType(
      "Engineering", "Activity", {{"NumberOfLines", DataType::kInt}}));
  WFRM_RETURN_NOT_OK(org->DefineActivityType("Programming", "Engineering"));
  WFRM_RETURN_NOT_OK(org->DefineActivityType("Analysis", "Engineering"));
  WFRM_RETURN_NOT_OK(org->DefineActivityType("Administration", "Activity"));
  WFRM_RETURN_NOT_OK(org->DefineActivityType(
      "Approval", "Administration",
      {{"Amount", DataType::kInt}, {"Requester", DataType::kString}}));

  // ---- Relationships and the ReportsTo view (Figure 3, §2.2) ------------
  WFRM_RETURN_NOT_OK(org->DefineRelationship(
      "BelongsTo",
      {{"Employee", DataType::kString}, {"Unit", DataType::kString}}));
  WFRM_RETURN_NOT_OK(org->DefineRelationship(
      "Manages",
      {{"Manager", DataType::kString}, {"Unit", DataType::kString}}));
  WFRM_RETURN_NOT_OK(org->DefineView(
      "ReportsTo", {"Emp", "Mgr"},
      "Select b.Employee, m.Manager From BelongsTo b, Manages m "
      "Where b.Unit = m.Unit"));

  // ---- Resource instances ------------------------------------------------
  // Engineers (exact type).
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Engineer", "gail", "PA",
                                 "English", 12));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Engineer", "hugo", "PA",
                                 "Spanish", 8));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Engineer", "iris", "Cupertino",
                                 "Spanish", 6));
  // Programmers.
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Programmer", "bob", "PA",
                                 "Spanish", 7));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Programmer", "pam", "PA",
                                 "English", 9));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Programmer", "pete", "PA",
                                 "Spanish", 3));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Programmer", "quinn",
                                 "Cupertino", "Spanish", 11));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Programmer", "raul", "Mexico",
                                 "Spanish", 2));
  // Analysts.
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Analyst", "ana", "PA",
                                 "Spanish", 10));
  // Managers: the carol → dave → erin chain.
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Manager", "carol", "PA",
                                 "English", 15));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Manager", "dave", "PA",
                                 "English", 20));
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Manager", "erin", "PA",
                                 "Spanish", 25));
  // The requester.
  WFRM_RETURN_NOT_OK(AddEmployee(org.get(), "Secretary", "alice", "PA",
                                 "English", 5));

  // Units: alice ∈ U1 (carol manages), carol ∈ U2 (dave manages),
  // dave ∈ U3 (erin manages).
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "BelongsTo", {Value::String("alice"), Value::String("U1")}));
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "BelongsTo", {Value::String("carol"), Value::String("U2")}));
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "BelongsTo", {Value::String("dave"), Value::String("U3")}));
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "BelongsTo", {Value::String("bob"), Value::String("U1")}));
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "Manages", {Value::String("carol"), Value::String("U1")}));
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "Manages", {Value::String("dave"), Value::String("U2")}));
  WFRM_RETURN_NOT_OK(org->AddRelationshipTuple(
      "Manages", {Value::String("erin"), Value::String("U3")}));

  return org;
}

Result<PaperWorld> BuildPaperWorld() {
  PaperWorld world;
  WFRM_ASSIGN_OR_RETURN(world.org, BuildPaperOrg());
  world.store = std::make_unique<policy::PolicyStore>(world.org.get());
  WFRM_RETURN_NOT_OK(world.store->AddPolicyText(kPaperPolicies));
  return world;
}

}  // namespace wfrm::testutil
