#ifndef WFRM_TESTUTIL_PAPER_ORG_H_
#define WFRM_TESTUTIL_PAPER_ORG_H_

#include <memory>

#include "common/result.h"
#include "org/org_model.h"
#include "policy/policy_store.h"

namespace wfrm::testutil {

/// Builds the paper's running-example organization (Figures 2 and 3):
///
/// Resource hierarchy:
///   Employee(ContactInfo, Location, Language, Experience)
///     ├─ Engineer
///     │   ├─ Programmer
///     │   └─ Analyst
///     ├─ Manager
///     └─ Secretary
///
/// Activity hierarchy:
///   Activity(Location)
///     ├─ Engineering(NumberOfLines)
///     │   ├─ Programming
///     │   └─ Analysis
///     └─ Administration
///         └─ Approval(Amount, Requester)
///
/// Relationships: BelongsTo(Employee, Unit), Manages(Manager, Unit) and
/// the ReportsTo(Emp, Mgr) view joining them on Unit (§2.2).
///
/// Instances: engineers/programmers/analysts across PA, Cupertino and
/// Mexico; a management chain carol → dave → erin used by the Figure 8
/// approval policies.
Result<std::unique_ptr<org::OrgModel>> BuildPaperOrg();

/// The paper's example policies, in PL text (Figures 5, 6, 8 and 9 plus
/// the qualifications the approval scenario needs).
extern const char kPaperPolicies[];

/// BuildPaperOrg + a PolicyStore loaded with kPaperPolicies.
struct PaperWorld {
  std::unique_ptr<org::OrgModel> org;
  std::unique_ptr<policy::PolicyStore> store;
};
Result<PaperWorld> BuildPaperWorld();

}  // namespace wfrm::testutil

#endif  // WFRM_TESTUTIL_PAPER_ORG_H_
