#include "testutil/repro.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace wfrm::testutil {

std::string ReproDir() {
  const char* dir = std::getenv("WFRM_REPRO_DIR");
  if (dir == nullptr || dir[0] == '\0') return "";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return ec ? "" : std::string(dir);
}

Status WriteRepro(const std::string& name, const std::string& content) {
  std::string dir = ReproDir();
  if (dir.empty()) return Status::OK();
  std::string path = dir + "/" + name;
  std::ofstream stream(path, std::ios::trunc);
  stream << content;
  if (!stream.good()) {
    return Status::ExecutionError("cannot write repro file " + path);
  }
  return Status::OK();
}

}  // namespace wfrm::testutil
