#ifndef WFRM_CORE_RESOURCE_MANAGER_H_
#define WFRM_CORE_RESOURCE_MANAGER_H_

#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/request_context.h"
#include "common/result.h"
#include "core/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "org/org_model.h"
#include "policy/policy_manager.h"
#include "policy/policy_store.h"
#include "rql/rql.h"

namespace wfrm::core {

/// How Acquire() picks among multiple available candidates.
enum class AllocationStrategy {
  /// The first candidate in enforced-query order (deterministic; primary
  /// queries before alternatives).
  kFirst,
  /// Rotate through candidates across calls (fair under contention).
  kRoundRobin,
  /// The candidate least recently allocated by this manager (workload
  /// spreading with memory across releases).
  kLeastRecentlyUsed,
  /// Uniformly random among candidates (seeded, reproducible).
  kRandom,
};

struct ResourceManagerOptions {
  /// Disable to stop after the primary rewriting (no §4.3 fallback).
  bool enable_substitution = true;
  /// How many substitution rounds to attempt when nothing is available.
  /// The paper fixes this at 1 ("we choose not to substitute the
  /// requested resources more than once", §1.2); larger values enable
  /// the recursive variant the paper discusses and rejects — rounds stop
  /// at the first one that yields available resources, and cycles are
  /// never re-explored.
  size_t max_substitution_rounds = 1;
  /// Index usage for resource retrieval (the org database).
  bool use_indexes = true;
  /// Candidate choice in Acquire().
  AllocationStrategy allocation_strategy = AllocationStrategy::kFirst;
  /// Seed for AllocationStrategy::kRandom.
  uint64_t random_seed = 42;

  // ---- Failure model -----------------------------------------------------

  /// Time source for lease deadlines and scheduled faults. nullptr =
  /// SystemClock::Default(). Inject a SimulatedClock for deterministic
  /// expiry/fault replay.
  Clock* clock = nullptr;
  /// How long an allocation's lease lasts before it can be reaped.
  /// 0 = leases never expire (the seed's hold-until-release semantics).
  int64_t lease_duration_micros = 0;
  /// Optional fault source: its schedule drives resource health
  /// transitions (drained on query entry) and its query_fault_rate
  /// injects transient kResourceUnavailable outcomes into Submit().
  /// Not owned; may be shared across managers.
  FaultInjector* fault_injector = nullptr;

  // ---- Observability -----------------------------------------------------

  /// Metric instruments (submit/acquire counters, latency histograms,
  /// allocation gauges) are registered here when non-null. Instrument
  /// pointers are resolved once at construction, so the enabled hot-path
  /// cost is a few relaxed atomic ops and the disabled path one branch.
  /// Not owned; may be shared across managers. To also mirror the policy
  /// store's cache counters, attach the registry to the store with
  /// PolicyStore::set_metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-null, every Submit records an EnforcementTrace decision
  /// log (rewrite stages, matched policy PIDs, cache outcomes,
  /// candidate-set sizes) and delivers it here. Not owned. Tracing is
  /// per query and allocation-heavy; leave null on hot paths and use
  /// Explain() for ad-hoc inspection.
  obs::TraceSink* trace_sink = nullptr;
};

/// A granted allocation: the resource, a unique lease id, and the
/// deadline by which the holder must Complete/Release or RenewLease()
/// before a ReapExpired() pass may reclaim the resource. Value type —
/// copy it freely; the ResourceManager keeps the authoritative record.
struct Lease {
  /// Deadline value for leases that never expire.
  static constexpr int64_t kNoExpiry = std::numeric_limits<int64_t>::max();

  org::ResourceRef resource;
  /// Unique per grant; 0 = invalid/never granted. A reclaimed resource
  /// re-acquired later gets a fresh id, so a stale lease can never
  /// release the new holder's allocation.
  uint64_t id = 0;
  int64_t deadline_micros = kNoExpiry;

  bool valid() const { return id != 0; }
};

/// Per-resource health (paper-era "resource became unavailable" is
/// modelled as kDown; substitution then doubles as graceful
/// degradation).
enum class HealthState { kUp, kDown };

/// Trace + result of one resource request through the Figure 1 pipeline.
struct QueryOutcome {
  /// kOk — resources found (possibly via substitution);
  /// kNoQualifiedResource — the CWA ruled out every resource type (§3.1);
  /// kResourceUnavailable — rewritten queries (and alternatives, §2.1)
  /// matched nothing available, or a transient fault was injected.
  Status status;

  /// The §4.1+§4.2 enforced queries, rendered.
  std::vector<std::string> primary_queries;
  /// The §4.3 alternatives (each re-enforced), rendered; empty when the
  /// primary round succeeded or substitution is disabled.
  std::vector<std::string> alternative_queries;
  bool used_substitution = false;
  /// True when the outcome's failure was manufactured by the fault
  /// injector rather than observed from the org database.
  bool injected_fault = false;

  /// Matching *available* resources: ResourceType, Id, then the query's
  /// select list.
  rel::ResultSet resources;
  /// The same resources as references, aligned with `resources.rows`.
  std::vector<org::ResourceRef> candidates;

  bool ok() const { return status.ok(); }
};

/// The resource manager per se plus the query processor of Figure 1:
/// accepts RQL, runs policy enforcement, executes the enforced queries
/// against the organization's resource tables, applies availability, and
/// falls back to substitution alternatives exactly once.
///
/// Availability is allocation- and health-based: Allocate()/Acquire()
/// mark a resource busy, MarkFailed() marks it down; busy or down
/// resources never appear in query outcomes until released/reaped
/// (busy) or MarkRecovered() (down).
///
/// Every allocation carries a Lease. With lease_duration_micros == 0
/// leases never expire and behave exactly like the original
/// hold-until-release allocations. With a positive duration, a holder
/// that neither completes nor renews within the window loses the claim:
/// ReapExpired() reclaims the resource, and a concurrent acquirer may
/// overwrite an expired record directly. Stale leases are harmless —
/// Release/RenewLease through them fail with kNotAllocated instead of
/// touching the new holder's grant.
///
/// Thread safety: allocation bookkeeping (Allocate / Release /
/// IsAllocated / Acquire / RenewLease / ReapExpired) and health state
/// are internally synchronized, and Acquire claims a candidate
/// atomically (two threads acquiring concurrently never receive the
/// same resource; the loser falls through to the next candidate or to
/// substitution). Queries hold the org model's read lock while executing
/// and the policy store synchronizes internally, so policy/org mutations
/// may run concurrently with Submit — each query observes either the
/// state before or after a given mutation, never a torn mix (the store's
/// epoch keeps cached derivations equally consistent).
class ResourceManager {
 public:
  ResourceManager(org::OrgModel* org, policy::PolicyStore* store,
                  ResourceManagerOptions options = {})
      : org_(org),
        store_(store),
        options_(options),
        clock_(options.clock ? options.clock : SystemClock::Default()),
        policy_manager_(org, store) {
    ResolveMetrics();
  }

  /// Parses, binds, enforces and executes an RQL request.
  Result<QueryOutcome> Submit(std::string_view rql_text) const;

  /// Submit under a request context: the pipeline checks the context's
  /// deadline and cancellation token at every stage boundary (pipeline
  /// entry, after the §4.1/§4.2 rewrite, between enforced-query
  /// executions, before each substitution round) and aborts typed —
  /// kDeadlineExceeded / kCancelled as a failed Result — once the
  /// request is not worth finishing. A default context restores the
  /// plain Submit exactly.
  Result<QueryOutcome> Submit(std::string_view rql_text,
                              const RequestContext& ctx) const;

  /// Same for an already parsed-and-bound query.
  Result<QueryOutcome> Submit(const rql::RqlQuery& query) const;

  /// Submit, recording the full decision log into `trace` (may be null —
  /// then identical to Submit). The caller owns the trace and calls
  /// Finish(); the configured trace_sink is NOT involved. `ctx` (may be
  /// null) is the per-request overload envelope.
  Result<QueryOutcome> Submit(const rql::RqlQuery& query,
                              obs::EnforcementTrace* trace,
                              const RequestContext* ctx = nullptr) const;

  /// Runs the full enforcement pipeline for `rql_text` (no allocation)
  /// and renders a human-readable decision report: which qualification
  /// rows fanned the query out (§4.1), which requirement conjuncts were
  /// appended with their [ActivityAttr] substitutions (§4.2), which
  /// substitution policy — if any — replaced the From/Where (§4.3), and
  /// the availability outcome, each with the responsible policy PIDs.
  Result<std::string> Explain(std::string_view rql_text) const;

  /// Explain's machinery with the raw materials exposed: the outcome
  /// plus the finished trace (for programmatic assertions).
  struct Explanation {
    QueryOutcome outcome;
    std::shared_ptr<const obs::EnforcementTrace> trace;
    std::string report;
  };
  Result<Explanation> ExplainQuery(std::string_view rql_text) const;

  /// Fans a batch of independent RQL requests across a small worker
  /// pool; element i of the result is Submit(rql_texts[i]). Workers
  /// share the enforcement caches and take only shared (reader) locks on
  /// the org model and policy store, so throughput scales with cores.
  /// num_workers == 0 picks min(batch size, hardware concurrency).
  std::vector<Result<QueryOutcome>> SubmitBatch(
      const std::vector<std::string>& rql_texts,
      size_t num_workers = 0) const;

  /// SubmitBatch under one shared request context: entries not yet
  /// started when the context dies fail typed instead of running.
  std::vector<Result<QueryOutcome>> SubmitBatch(
      const std::vector<std::string>& rql_texts, size_t num_workers,
      const RequestContext& ctx) const;

  /// Submits and allocates a candidate chosen by the configured
  /// allocation strategy, atomically with respect to concurrent
  /// Acquire() calls. The returned lease is the receipt for
  /// RenewLease/Release.
  Result<Lease> Acquire(std::string_view rql_text);

  /// Acquire under a request context. Deadlines bound waiting, never
  /// side effects: once a claim lands the lease is returned even if the
  /// deadline passed during the claim.
  Result<Lease> Acquire(std::string_view rql_text, const RequestContext& ctx);

  /// Acquire, but never hands out `excluded` even if the pipeline
  /// offers it — the recovery path after `excluded`'s holder died: the
  /// full enforcement pipeline runs afresh and the replacement is drawn
  /// from that outcome minus the failed resource.
  Result<Lease> AcquireExcluding(std::string_view rql_text,
                                 const org::ResourceRef& excluded,
                                 const RequestContext* ctx = nullptr);

  // ---- Allocation bookkeeping ------------------------------------------

  /// Allocates a specific resource (it must exist and be up), returning
  /// its lease.
  Result<Lease> AllocateLease(const org::ResourceRef& ref);

  /// Back-compat wrapper: AllocateLease, dropping the lease (the record
  /// is still lease-tracked internally; Release(ref) frees it).
  Status Allocate(const org::ResourceRef& ref);

  /// Releases whatever lease currently holds `ref`. kNotAllocated when
  /// the resource is not allocated (never allocated, double-released,
  /// or already reaped).
  Status Release(const org::ResourceRef& ref);

  /// Releases through a lease receipt: fails with kNotAllocated when
  /// the lease is stale (expired+reaped or superseded by a newer
  /// grant), leaving any newer grant untouched.
  Status Release(const Lease& lease);

  /// Extends a live lease by lease_duration_micros from now, returning
  /// the refreshed lease. kNotAllocated when the lease is stale. With
  /// expiry disabled this is a no-op that returns the lease unchanged.
  Result<Lease> RenewLease(const Lease& lease);

  /// Reclaims every allocation whose lease deadline has passed; returns
  /// how many were reaped. Cheap when nothing is expired — callers may
  /// run it on a timer or before allocation-sensitive decisions.
  size_t ReapExpired();

  /// ReapExpired, but returning the reclaimed leases themselves — the
  /// durable layer journals one release per reaped lease so replay
  /// reproduces the reap exactly.
  std::vector<Lease> ReapExpiredLeases();

  /// ReapExpiredLeases with a pinned cutoff: reclaims exactly the
  /// grants whose deadline is <= `now_micros`. The durable layer
  /// journals the expired set first and then reaps it; a cutoff read
  /// from a moving clock could reap more than was journaled.
  std::vector<Lease> ReapExpiredLeasesBefore(int64_t now_micros);

  /// Bounded variant: reclaims at most `max_leases` expired grants, in
  /// resource order (the map's deterministic iteration order, so a
  /// caller that journaled the first-N expired leases reaps exactly
  /// those N). Keeps the critical section O(max_leases) instead of
  /// O(all allocations) when thousands of leases expire at once —
  /// callers loop until a pass reaps fewer than the cap.
  std::vector<Lease> ReapExpiredLeasesBefore(int64_t now_micros,
                                             size_t max_leases);

  /// The first `max_leases` expired grants at the pinned cutoff, in the
  /// same deterministic order ReapExpiredLeasesBefore would reap them —
  /// what the durable layer journals before reaping a batch.
  std::vector<Lease> ExpiredLeasesBefore(int64_t now_micros,
                                         size_t max_leases) const;

  // ---- Persistence (src/store recovery) --------------------------------

  /// Re-installs a persisted grant during recovery, bypassing
  /// availability checks (the journal proves the grant was made). Any
  /// existing grant on the resource is overwritten — replaying a renew
  /// record over its acquire record is the normal case. The resource
  /// must exist in the (already recovered) org model, and the lease-id
  /// high-water mark advances past `lease.id` so later grants never
  /// reuse a persisted id.
  Status RestoreLease(const Lease& lease);

  /// Every current grant as a lease, ordered by resource (snapshots;
  /// expired-but-unreaped grants are included, matching live state).
  std::vector<Lease> ListLeases() const;

  /// The live lease currently recorded on `ref`, if any.
  std::optional<Lease> FindLease(const org::ResourceRef& ref) const;

  /// Lease-id high-water mark: the id the next grant would get.
  /// Persisted in snapshots so recovery never reuses an id already
  /// handed out (stale-lease protection depends on uniqueness).
  uint64_t next_lease_id() const;
  /// Raises the high-water mark to at least `id` (recovery only).
  void AdvanceLeaseId(uint64_t id);

  /// True when `lease` is the current grant on its resource and has not
  /// expired.
  bool IsLeaseActive(const Lease& lease) const;

  bool IsAllocated(const org::ResourceRef& ref) const;
  size_t num_allocated() const;

  // ---- Health ----------------------------------------------------------

  /// Marks a resource down: it stops appearing in query outcomes and
  /// cannot be allocated until MarkRecovered(). An existing allocation
  /// is left in place — the holder's engine notices via IsFailed() and
  /// reassigns, or the lease expires and is reaped.
  Status MarkFailed(const org::ResourceRef& ref);
  Status MarkRecovered(const org::ResourceRef& ref);
  bool IsFailed(const org::ResourceRef& ref) const;
  size_t num_failed() const;

  const policy::PolicyManager& policy_manager() const {
    return policy_manager_;
  }
  /// The policy store this manager enforces from. Callers holding only
  /// an rm (the shard router fans out over many) read per-store cache
  /// stats and the enforcement epoch through here.
  const policy::PolicyStore* policy_store() const { return store_; }
  org::OrgModel& org() { return *org_; }
  Clock& clock() const { return *clock_; }
  const ResourceManagerOptions& options() const { return options_; }

 private:
  struct Grant {
    uint64_t lease_id = 0;
    int64_t deadline_micros = Lease::kNoExpiry;
  };

  /// Executes enforced queries; appends hits to `outcome`. Returns the
  /// number of available resources found. When `parent` is non-null an
  /// "execute" span records matched/available/filtered row counts for
  /// `stage` ("primary" or "alternatives").
  Result<size_t> RunQueries(const std::vector<rql::RqlQuery>& queries,
                            QueryOutcome* outcome, obs::TraceSpan* parent,
                            const char* stage,
                            const RequestContext* ctx) const;

  /// The traced/metered Submit body; `trace` and `ctx` may be null.
  Result<QueryOutcome> SubmitImpl(const rql::RqlQuery& query,
                                  obs::EnforcementTrace* trace,
                                  const RequestContext* ctx) const;

  std::vector<Result<QueryOutcome>> SubmitBatchImpl(
      const std::vector<std::string>& rql_texts, size_t num_workers,
      const RequestContext* ctx) const;

  /// Resolves metric instrument pointers from options_.metrics (no-op
  /// when detached).
  void ResolveMetrics();

  /// Updates the allocation/health gauges. Lock held.
  void UpdateGaugesLocked() const {
    if (metrics_.allocated != nullptr) {
      metrics_.allocated->Set(static_cast<int64_t>(allocated_.size()));
    }
    if (metrics_.failed != nullptr) {
      metrics_.failed->Set(static_cast<int64_t>(failed_.size()));
    }
  }

  /// Applies due scheduled fault-injector health events. Called on
  /// query entry; const because health is a lazily-synchronized view of
  /// the external fault schedule.
  void ApplyScheduledFaults() const;

  /// Busy (under a live lease) or down. Lock held.
  bool IsUnavailableLocked(const org::ResourceRef& ref,
                           int64_t now_micros) const;

  /// Claims `ref` (fresh grant or overwrite of an expired one); returns
  /// the lease, or invalid lease if the resource is held or down. Lock
  /// held.
  Lease TryClaimLocked(const org::ResourceRef& ref, int64_t now_micros);

  /// Applies the configured allocation strategy to a non-empty
  /// candidate list; returns the chosen index.
  size_t PickCandidate(const std::vector<org::ResourceRef>& candidates);

  int64_t LeaseDeadline(int64_t now_micros) const {
    return options_.lease_duration_micros > 0
               ? now_micros + options_.lease_duration_micros
               : Lease::kNoExpiry;
  }

  /// Resolved instruments; all null when options_.metrics is null.
  struct Instruments {
    obs::Counter* submit_ok = nullptr;
    obs::Counter* submit_no_qualified = nullptr;
    obs::Counter* submit_unavailable = nullptr;
    obs::Counter* submit_error = nullptr;
    obs::Counter* submit_deadline_exceeded = nullptr;
    obs::Counter* submit_cancelled = nullptr;
    obs::Counter* substitution_used = nullptr;
    obs::Counter* injected_faults = nullptr;
    obs::Counter* acquire_ok = nullptr;
    obs::Counter* acquire_failed = nullptr;
    obs::Counter* acquire_races = nullptr;
    obs::Counter* leases_reaped = nullptr;
    obs::Histogram* submit_latency = nullptr;
    obs::Gauge* allocated = nullptr;
    obs::Gauge* failed = nullptr;
  };

  org::OrgModel* org_;
  policy::PolicyStore* store_;
  ResourceManagerOptions options_;
  Clock* clock_;
  policy::PolicyManager policy_manager_;
  Instruments metrics_;
  /// Guards allocated_, failed_ and the strategy state.
  mutable std::mutex mutex_;
  std::map<org::ResourceRef, Grant> allocated_;
  /// Down resources (health). Mutable: lazily synchronized from the
  /// fault injector's schedule on (const) query entry.
  mutable std::set<org::ResourceRef> failed_;
  uint64_t next_lease_id_ = 1;
  // Strategy state (guarded by mutex_).
  uint64_t acquire_count_ = 0;
  uint64_t logical_clock_ = 0;
  std::map<org::ResourceRef, uint64_t> last_allocated_;
  std::mt19937_64 rng_{42};
  bool rng_seeded_ = false;
};

}  // namespace wfrm::core

#endif  // WFRM_CORE_RESOURCE_MANAGER_H_
