#ifndef WFRM_CORE_RESOURCE_MANAGER_H_
#define WFRM_CORE_RESOURCE_MANAGER_H_

#include <map>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "org/org_model.h"
#include "policy/policy_manager.h"
#include "policy/policy_store.h"
#include "rql/rql.h"

namespace wfrm::core {

/// How Acquire() picks among multiple available candidates.
enum class AllocationStrategy {
  /// The first candidate in enforced-query order (deterministic; primary
  /// queries before alternatives).
  kFirst,
  /// Rotate through candidates across calls (fair under contention).
  kRoundRobin,
  /// The candidate least recently allocated by this manager (workload
  /// spreading with memory across releases).
  kLeastRecentlyUsed,
  /// Uniformly random among candidates (seeded, reproducible).
  kRandom,
};

struct ResourceManagerOptions {
  /// Disable to stop after the primary rewriting (no §4.3 fallback).
  bool enable_substitution = true;
  /// How many substitution rounds to attempt when nothing is available.
  /// The paper fixes this at 1 ("we choose not to substitute the
  /// requested resources more than once", §1.2); larger values enable
  /// the recursive variant the paper discusses and rejects — rounds stop
  /// at the first one that yields available resources, and cycles are
  /// never re-explored.
  size_t max_substitution_rounds = 1;
  /// Index usage for resource retrieval (the org database).
  bool use_indexes = true;
  /// Candidate choice in Acquire().
  AllocationStrategy allocation_strategy = AllocationStrategy::kFirst;
  /// Seed for AllocationStrategy::kRandom.
  uint64_t random_seed = 42;
};

/// Trace + result of one resource request through the Figure 1 pipeline.
struct QueryOutcome {
  /// kOk — resources found (possibly via substitution);
  /// kNoQualifiedResource — the CWA ruled out every resource type (§3.1);
  /// kResourceUnavailable — rewritten queries (and alternatives, §2.1)
  /// matched nothing available.
  Status status;

  /// The §4.1+§4.2 enforced queries, rendered.
  std::vector<std::string> primary_queries;
  /// The §4.3 alternatives (each re-enforced), rendered; empty when the
  /// primary round succeeded or substitution is disabled.
  std::vector<std::string> alternative_queries;
  bool used_substitution = false;

  /// Matching *available* resources: ResourceType, Id, then the query's
  /// select list.
  rel::ResultSet resources;
  /// The same resources as references, aligned with `resources.rows`.
  std::vector<org::ResourceRef> candidates;

  bool ok() const { return status.ok(); }
};

/// The resource manager per se plus the query processor of Figure 1:
/// accepts RQL, runs policy enforcement, executes the enforced queries
/// against the organization's resource tables, applies availability, and
/// falls back to substitution alternatives exactly once.
///
/// Availability is allocation-based: Allocate() marks a resource busy;
/// busy resources never appear in query outcomes until Release()d.
///
/// Thread safety: allocation bookkeeping (Allocate / Release /
/// IsAllocated / Acquire) is internally synchronized, and Acquire claims
/// a candidate atomically (two threads acquiring concurrently never
/// receive the same resource; the loser falls through to the next
/// candidate or to substitution). The org model and policy store must
/// not be mutated concurrently with queries.
class ResourceManager {
 public:
  ResourceManager(org::OrgModel* org, policy::PolicyStore* store,
                  ResourceManagerOptions options = {})
      : org_(org),
        store_(store),
        options_(options),
        policy_manager_(org, store) {}

  /// Parses, binds, enforces and executes an RQL request.
  Result<QueryOutcome> Submit(std::string_view rql_text) const;

  /// Same for an already parsed-and-bound query.
  Result<QueryOutcome> Submit(const rql::RqlQuery& query) const;

  /// Submits and allocates a candidate chosen by the configured
  /// allocation strategy, atomically with respect to concurrent
  /// Acquire() calls.
  Result<org::ResourceRef> Acquire(std::string_view rql_text);

  // ---- Allocation bookkeeping ------------------------------------------

  Status Allocate(const org::ResourceRef& ref);
  Status Release(const org::ResourceRef& ref);
  bool IsAllocated(const org::ResourceRef& ref) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return allocated_.count(ref) > 0;
  }
  size_t num_allocated() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return allocated_.size();
  }

  const policy::PolicyManager& policy_manager() const {
    return policy_manager_;
  }
  org::OrgModel& org() { return *org_; }

 private:
  /// Executes enforced queries; appends hits to `outcome`. Returns the
  /// number of available resources found.
  Result<size_t> RunQueries(const std::vector<rql::RqlQuery>& queries,
                            QueryOutcome* outcome) const;

  /// Applies the configured allocation strategy to a non-empty
  /// candidate list; returns the chosen index.
  size_t PickCandidate(const std::vector<org::ResourceRef>& candidates);

  org::OrgModel* org_;
  policy::PolicyStore* store_;
  ResourceManagerOptions options_;
  policy::PolicyManager policy_manager_;
  /// Guards allocated_ and the strategy state.
  mutable std::mutex mutex_;
  std::set<org::ResourceRef> allocated_;
  // Strategy state (guarded by mutex_).
  uint64_t acquire_count_ = 0;
  uint64_t logical_clock_ = 0;
  std::map<org::ResourceRef, uint64_t> last_allocated_;
  std::mt19937_64 rng_{42};
  bool rng_seeded_ = false;
};

}  // namespace wfrm::core

#endif  // WFRM_CORE_RESOURCE_MANAGER_H_
