#include "core/resource_manager.h"

#include "rel/executor.h"

namespace wfrm::core {

Result<size_t> ResourceManager::RunQueries(
    const std::vector<rql::RqlQuery>& queries, QueryOutcome* outcome) const {
  rel::ExecOptions opts;
  opts.use_indexes = options_.use_indexes;
  rel::Executor exec(&org_->db(), opts);

  size_t found = 0;
  for (const rql::RqlQuery& query : queries) {
    // Execute with Id prepended so availability and allocation can be
    // tracked; the user's projection follows.
    rel::SelectPtr select = query.select->Clone();
    {
      rel::SelectItem id_item;
      id_item.expr = rel::MakeColumnRef("Id");
      id_item.alias = "Id";
      select->items.insert(select->items.begin(), std::move(id_item));
    }
    WFRM_ASSIGN_OR_RETURN(rel::ResultSet rs,
                          exec.Execute(*select, query.spec.AsParams()));

    // Result schema: ResourceType, Id, then the user's columns.
    if (outcome->resources.schema.num_columns() == 0) {
      rel::Schema schema;
      schema.AddColumn({"ResourceType", rel::DataType::kString});
      for (const rel::Column& c : rs.schema.columns()) schema.AddColumn(c);
      outcome->resources.schema = std::move(schema);
    }
    const std::string& type = query.resource();
    for (rel::Row& row : rs.rows) {
      org::ResourceRef ref{type, row[0].string_value()};
      if (IsAllocated(ref)) continue;  // Busy resources are unavailable.
      rel::Row out;
      out.reserve(row.size() + 1);
      out.push_back(rel::Value::String(type));
      for (rel::Value& v : row) out.push_back(std::move(v));
      outcome->resources.rows.push_back(std::move(out));
      outcome->candidates.push_back(std::move(ref));
      ++found;
    }
  }
  return found;
}

Result<QueryOutcome> ResourceManager::Submit(
    const rql::RqlQuery& query) const {
  QueryOutcome outcome;
  outcome.status = Status::OK();

  // Stage 1+2 (§4.1, §4.2): qualification fan-out, requirement
  // enhancement.
  WFRM_ASSIGN_OR_RETURN(policy::EnforcedQueries primary,
                        policy_manager_.EnforcePrimary(query));
  for (const rql::RqlQuery& q : primary.queries) {
    outcome.primary_queries.push_back(q.ToString());
  }
  if (primary.queries.empty()) {
    // CWA: no resource type is qualified for this activity.
    outcome.status = Status::NoQualifiedResource(
        "no qualification policy permits any sub-type of '" +
        query.resource() + "' to carry out activity '" + query.activity() +
        "'");
    return outcome;
  }

  WFRM_ASSIGN_OR_RETURN(size_t found, RunQueries(primary.queries, &outcome));
  if (found > 0) return outcome;

  // Stage 3 (§4.3): the *initial* query is re-sent for substitution;
  // alternatives re-enter qualification + requirement. By default a
  // single round (never transitive, §1.2); additional rounds are the
  // opt-in recursive extension.
  if (options_.enable_substitution && options_.max_substitution_rounds > 0) {
    WFRM_ASSIGN_OR_RETURN(
        std::vector<policy::EnforcedQueries> rounds,
        policy_manager_.EnforceAlternativesRounds(
            query, options_.max_substitution_rounds));
    for (const policy::EnforcedQueries& alternatives : rounds) {
      if (alternatives.queries.empty()) continue;
      outcome.used_substitution = true;
      for (const rql::RqlQuery& q : alternatives.queries) {
        outcome.alternative_queries.push_back(q.ToString());
      }
      WFRM_ASSIGN_OR_RETURN(found, RunQueries(alternatives.queries, &outcome));
      if (found > 0) return outcome;
    }
  }

  outcome.status = Status::ResourceUnavailable(
      "no available resource satisfies the enforced queries" +
      std::string(outcome.used_substitution ? " (substitution attempted)"
                                            : ""));
  return outcome;
}

Result<QueryOutcome> ResourceManager::Submit(std::string_view rql_text) const {
  WFRM_ASSIGN_OR_RETURN(rql::RqlQuery query,
                        rql::ParseAndBindRql(rql_text, *org_));
  return Submit(query);
}

size_t ResourceManager::PickCandidate(
    const std::vector<org::ResourceRef>& candidates) {
  switch (options_.allocation_strategy) {
    case AllocationStrategy::kFirst:
      return 0;
    case AllocationStrategy::kRoundRobin:
      return static_cast<size_t>(acquire_count_ % candidates.size());
    case AllocationStrategy::kLeastRecentlyUsed: {
      size_t best = 0;
      uint64_t best_time = ~0ull;
      for (size_t i = 0; i < candidates.size(); ++i) {
        auto it = last_allocated_.find(candidates[i]);
        uint64_t t = it == last_allocated_.end() ? 0 : it->second;
        if (t < best_time) {
          best_time = t;
          best = i;
        }
      }
      return best;
    }
    case AllocationStrategy::kRandom: {
      if (!rng_seeded_) {
        rng_.seed(options_.random_seed);
        rng_seeded_ = true;
      }
      std::uniform_int_distribution<size_t> dist(0, candidates.size() - 1);
      return dist(rng_);
    }
  }
  return 0;
}

Result<org::ResourceRef> ResourceManager::Acquire(std::string_view rql_text) {
  // Concurrent acquirers race between Submit's availability snapshot and
  // the allocation; losing a race is handled by trying the remaining
  // candidates and, if all were snapped up, re-submitting (the fresh
  // snapshot excludes them). Bounded to rule out livelock.
  for (int attempt = 0; attempt < 8; ++attempt) {
    WFRM_ASSIGN_OR_RETURN(QueryOutcome outcome, Submit(rql_text));
    if (!outcome.ok()) return outcome.status;

    std::lock_guard<std::mutex> lock(mutex_);
    ++acquire_count_;
    size_t start = PickCandidate(outcome.candidates);
    for (size_t i = 0; i < outcome.candidates.size(); ++i) {
      const org::ResourceRef& ref =
          outcome.candidates[(start + i) % outcome.candidates.size()];
      if (allocated_.insert(ref).second) {
        last_allocated_[ref] = ++logical_clock_;
        return ref;
      }
    }
    // Every candidate was claimed by a concurrent acquirer; retry with a
    // fresh snapshot.
  }
  return Status::ResourceUnavailable(
      "could not claim any candidate under concurrent contention");
}

Status ResourceManager::Allocate(const org::ResourceRef& ref) {
  // The resource must exist.
  WFRM_RETURN_NOT_OK(org_->GetResource(ref).status());
  std::lock_guard<std::mutex> lock(mutex_);
  if (!allocated_.insert(ref).second) {
    return Status::ResourceUnavailable("resource " + ref.ToString() +
                                       " is already allocated");
  }
  return Status::OK();
}

Status ResourceManager::Release(const org::ResourceRef& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (allocated_.erase(ref) == 0) {
    return Status::NotFound("resource " + ref.ToString() +
                            " is not allocated");
  }
  return Status::OK();
}

}  // namespace wfrm::core
