#include "core/resource_manager.h"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "rel/executor.h"

namespace wfrm::core {

namespace {

/// "1 query" / "3 queries" for attr strings that are already rendered
/// decimal counts.
std::string CountNoun(const std::string& count, const char* singular,
                      const char* plural) {
  std::string out = count.empty() ? "0" : count;
  out += ' ';
  out += (count == "1") ? singular : plural;
  return out;
}

/// Renders the Explain() prose report from the finished trace. The attr
/// keys consumed here are the contract produced by PolicyManager /
/// Rewriter / RunQueries (see DESIGN.md).
std::string RenderExplainReport(const QueryOutcome& outcome,
                                const obs::EnforcementTrace& trace) {
  const obs::TraceSpan* root = trace.root();
  std::string out;
  out += "Decision report for: " + trace.query_text() + "\n";
  out += "Status: " + root->Attr("status");
  if (outcome.ok()) {
    out += " (" + CountNoun(std::to_string(outcome.candidates.size()),
                            "candidate available", "candidates available") +
           ")";
  } else if (!outcome.status.message().empty()) {
    out += " -- " + outcome.status.message();
  }
  out += "\n\n";

  int step = 1;
  const obs::TraceSpan* primary = root->Find("enforce_primary");
  if (primary != nullptr) {
    const obs::TraceSpan* qual = primary->Find("qualification");
    out += "[" + std::to_string(step++) + "] Qualification (4.1)";
    if (qual != nullptr) {
      out += " -- resource '" + qual->Attr("resource") + "', activity '" +
             qual->Attr("activity") + "'\n";
      out += "    rewrite cache: " + primary->Attr("rewrite_cache") + "\n";
      std::vector<std::string> types = qual->AttrAll("qualified_type");
      if (types.empty()) {
        out +=
            "    no qualification policy matched: under the closed-world "
            "assumption every sub-type is ruled out (3.1)\n";
      }
      for (const std::string& t : types) {
        out += "    - qualified sub-type: " + t + "\n";
      }
    } else {
      out += "\n";
    }

    bool any_requirement = false;
    for (const auto& child : primary->children()) {
      if (child->name() != "requirement") continue;
      if (!any_requirement) {
        out += "[" + std::to_string(step++) + "] Requirement (4.2)\n";
        any_requirement = true;
      }
      out += "    " + child->Attr("type") + ":\n";
      std::vector<std::string> rows = child->AttrAll("policy");
      if (rows.empty()) {
        out += "    - no requirement policy applies\n";
      }
      for (const std::string& row : rows) out += "    - " + row + "\n";
      out += "      enforced: " + child->Attr("enforced_query") + "\n";
    }
  }

  // Execution and substitution stages, in pipeline order.
  for (const auto& child : root->children()) {
    if (child->name() == "execute") {
      out += "[" + std::to_string(step++) + "] Execution (" +
             child->Attr("stage") + "): ran " +
             CountNoun(child->Attr("queries"), "enforced query",
                       "enforced queries") +
             ", " + child->Attr("rows_matched") + " rows matched, " +
             child->Attr("available") + " available, " +
             child->Attr("filtered") + " filtered as busy or down\n";
    } else if (child->name() == "enforce_alternatives") {
      out += "[" + std::to_string(step++) + "] Substitution (4.3), up to " +
             CountNoun(child->Attr("max_rounds"), "round", "rounds") + "\n";
      for (const auto& round : child->children()) {
        if (round->name() != "round") continue;
        out += "    round " + round->Attr("round") + ":\n";
        for (const auto& stage : round->children()) {
          if (stage->name() == "substitution") {
            std::vector<std::string> rows = stage->AttrAll("policy");
            std::vector<std::string> alts = stage->AttrAll("alternative");
            if (rows.empty()) {
              out += "    - no substitution policy applies to '" +
                     stage->Attr("resource") + "'\n";
            }
            for (size_t i = 0; i < rows.size(); ++i) {
              out += "    - " + rows[i] + "\n";
              if (i < alts.size()) {
                out += "      alternative: " + alts[i] + "\n";
              }
            }
          } else if (stage->name() == "enforce_primary") {
            const obs::TraceSpan* q = stage->Find("qualification");
            out += "      re-enforced";
            if (q != nullptr) {
              out += " '" + q->Attr("resource") + "' with fan-out " +
                     q->Attr("fanout");
            }
            out +=
                " (rewrite cache: " + stage->Attr("rewrite_cache") + ")\n";
          }
        }
      }
    }
  }

  out += "\nOutcome: ";
  if (outcome.ok()) {
    out += outcome.used_substitution
               ? "resources found via substitution alternatives"
               : "resources found by the primary enforcement round";
    if (!outcome.candidates.empty()) {
      out += " --";
      for (const org::ResourceRef& ref : outcome.candidates) {
        out += " " + ref.ToString();
      }
    }
  } else {
    out += outcome.status.ToString();
  }
  out += "\n";
  return out;
}

}  // namespace

void ResourceManager::ResolveMetrics() {
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  const std::string submits_help = "Submit() pipeline outcomes by result.";
  metrics_.submit_ok =
      reg->GetCounter("wfrm_rm_submits_total", {{"result", "ok"}},
                      submits_help);
  metrics_.submit_no_qualified = reg->GetCounter(
      "wfrm_rm_submits_total", {{"result", "no_qualified_resource"}},
      submits_help);
  metrics_.submit_unavailable = reg->GetCounter(
      "wfrm_rm_submits_total", {{"result", "resource_unavailable"}},
      submits_help);
  metrics_.submit_error = reg->GetCounter(
      "wfrm_rm_submits_total", {{"result", "error"}}, submits_help);
  metrics_.submit_deadline_exceeded = reg->GetCounter(
      "wfrm_rm_submits_total", {{"result", "deadline_exceeded"}},
      submits_help);
  metrics_.submit_cancelled = reg->GetCounter(
      "wfrm_rm_submits_total", {{"result", "cancelled"}}, submits_help);
  metrics_.substitution_used = reg->GetCounter(
      "wfrm_rm_substitutions_total", {},
      "Submits that fell back to substitution alternatives (4.3).");
  metrics_.injected_faults = reg->GetCounter(
      "wfrm_rm_injected_faults_total", {},
      "Transient query faults manufactured by the fault injector.");
  const std::string acquires_help = "Acquire() outcomes by result.";
  metrics_.acquire_ok = reg->GetCounter(
      "wfrm_rm_acquires_total", {{"result", "ok"}}, acquires_help);
  metrics_.acquire_failed = reg->GetCounter(
      "wfrm_rm_acquires_total", {{"result", "failed"}}, acquires_help);
  metrics_.acquire_races = reg->GetCounter(
      "wfrm_rm_acquire_races_total", {},
      "Acquire rounds where every candidate was claimed concurrently.");
  metrics_.leases_reaped = reg->GetCounter(
      "wfrm_rm_leases_reaped_total", {},
      "Expired leases reclaimed by ReapExpired().");
  metrics_.submit_latency = reg->GetHistogram(
      "wfrm_rm_submit_latency_micros", obs::Histogram::LatencyBucketsMicros(),
      {}, "End-to-end Submit() latency in microseconds.");
  metrics_.allocated =
      reg->GetGauge("wfrm_rm_allocated_resources", {},
                    "Resources currently held under a lease.");
  metrics_.failed = reg->GetGauge("wfrm_rm_failed_resources", {},
                                  "Resources currently marked down.");
}

void ResourceManager::ApplyScheduledFaults() const {
  if (options_.fault_injector == nullptr) return;
  if (options_.fault_injector->num_scheduled() == 0) return;
  std::vector<FaultInjector::HealthEvent> due =
      options_.fault_injector->DrainDue(clock_->NowMicros());
  if (due.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultInjector::HealthEvent& ev : due) {
    if (ev.down) {
      failed_.insert(ev.resource);
    } else {
      failed_.erase(ev.resource);
    }
  }
  UpdateGaugesLocked();
}

bool ResourceManager::IsUnavailableLocked(const org::ResourceRef& ref,
                                          int64_t now_micros) const {
  if (failed_.count(ref) > 0) return true;  // Down resources are invisible.
  auto it = allocated_.find(ref);
  if (it == allocated_.end()) return false;
  // An expired lease no longer protects the allocation: the resource is
  // available again even before a ReapExpired() pass collects it.
  return it->second.deadline_micros > now_micros;
}

Result<size_t> ResourceManager::RunQueries(
    const std::vector<rql::RqlQuery>& queries, QueryOutcome* outcome,
    obs::TraceSpan* parent, const char* stage,
    const RequestContext* ctx) const {
  obs::ScopedSpan span(parent, "execute");
  obs::Attr(span, "stage", stage);
  obs::Attr(span, "queries", static_cast<int64_t>(queries.size()));

  // Shared lock: concurrent submits execute together; org writers
  // (instance inserts, type definitions) are excluded for the duration.
  auto org_lock = org_->ReadLock();
  rel::ExecOptions opts;
  opts.use_indexes = options_.use_indexes;
  rel::Executor exec(&org_->db(), opts);

  size_t found = 0;
  size_t matched = 0;
  for (const rql::RqlQuery& query : queries) {
    // Stage boundary: a wide fan-out runs many enforced queries; stop
    // between them once the request expired or was cancelled.
    WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
    // Execute with Id prepended so availability and allocation can be
    // tracked; the user's projection follows.
    rel::SelectPtr select = query.select->Clone();
    {
      rel::SelectItem id_item;
      id_item.expr = rel::MakeColumnRef("Id");
      id_item.alias = "Id";
      select->items.insert(select->items.begin(), std::move(id_item));
    }
    WFRM_ASSIGN_OR_RETURN(rel::ResultSet rs,
                          exec.Execute(*select, query.spec.AsParams()));
    matched += rs.rows.size();

    // Result schema: ResourceType, Id, then the user's columns.
    if (outcome->resources.schema.num_columns() == 0) {
      rel::Schema schema;
      schema.AddColumn({"ResourceType", rel::DataType::kString});
      for (const rel::Column& c : rs.schema.columns()) schema.AddColumn(c);
      outcome->resources.schema = std::move(schema);
    }
    const std::string& type = query.resource();
    const int64_t now = clock_->NowMicros();
    for (rel::Row& row : rs.rows) {
      org::ResourceRef ref{type, row[0].string_value()};
      {
        // Busy or down resources are unavailable.
        std::lock_guard<std::mutex> lock(mutex_);
        if (IsUnavailableLocked(ref, now)) continue;
      }
      rel::Row out;
      out.reserve(row.size() + 1);
      out.push_back(rel::Value::String(type));
      for (rel::Value& v : row) out.push_back(std::move(v));
      outcome->resources.rows.push_back(std::move(out));
      outcome->candidates.push_back(std::move(ref));
      ++found;
    }
  }
  obs::Attr(span, "rows_matched", static_cast<int64_t>(matched));
  obs::Attr(span, "available", static_cast<int64_t>(found));
  obs::Attr(span, "filtered", static_cast<int64_t>(matched - found));
  return found;
}

Result<QueryOutcome> ResourceManager::SubmitImpl(
    const rql::RqlQuery& query, obs::EnforcementTrace* trace,
    const RequestContext* ctx) const {
  const bool timed = metrics_.submit_latency != nullptr;
  const int64_t t0 = timed ? clock_->NowMicros() : 0;
  obs::TraceSpan* root = trace != nullptr ? trace->root() : nullptr;

  Result<QueryOutcome> result = [&]() -> Result<QueryOutcome> {
    // Admission boundary: a request that is already dead never enters
    // the pipeline at all.
    WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
    ApplyScheduledFaults();

    QueryOutcome outcome;
    outcome.status = Status::OK();

    // Chaos hook: a transient infrastructure fault before the pipeline
    // even runs. Reported as kResourceUnavailable so callers retry it
    // exactly like a momentarily exhausted resource pool.
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->SampleQueryFault()) {
      outcome.injected_fault = true;
      outcome.status = Status::ResourceUnavailable(
          "injected transient query fault (fault injector)");
      return outcome;
    }

    // Chaos hook: an injected stall (a slow backend, a lost CPU). Slept
    // in slices so cancellation and deadline expiry are noticed
    // mid-stall instead of after it — exactly what the cooperative
    // checks buy on a real slow path.
    if (options_.fault_injector != nullptr) {
      const int64_t stall =
          options_.fault_injector->SampleQueryLatencyMicros();
      if (stall > 0) {
        constexpr int kSlices = 8;
        const int64_t slice = std::max<int64_t>(stall / kSlices, 1);
        int64_t slept = 0;
        while (slept < stall) {
          WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
          const int64_t step = std::min(slice, stall - slept);
          clock_->SleepForMicros(step);
          slept += step;
        }
        WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
      }
    }

    // Stage 1+2 (§4.1, §4.2): qualification fan-out, requirement
    // enhancement. The shared variant serves warm rewrite-cache hits
    // without deep-copying the enforced queries.
    WFRM_ASSIGN_OR_RETURN(
        std::shared_ptr<const policy::EnforcedQueries> primary,
        policy_manager_.EnforcePrimaryShared(query, root, ctx));
    for (const rql::RqlQuery& q : primary->queries) {
      outcome.primary_queries.push_back(q.ToString());
    }
    if (primary->queries.empty()) {
      // CWA: no resource type is qualified for this activity.
      outcome.status = Status::NoQualifiedResource(
          "no qualification policy permits any sub-type of '" +
          query.resource() + "' to carry out activity '" + query.activity() +
          "'");
      return outcome;
    }

    WFRM_ASSIGN_OR_RETURN(
        size_t found,
        RunQueries(primary->queries, &outcome, root, "primary", ctx));
    if (found > 0) return outcome;

    // Stage 3 (§4.3): the *initial* query is re-sent for substitution;
    // alternatives re-enter qualification + requirement. By default a
    // single round (never transitive, §1.2); additional rounds are the
    // opt-in recursive extension.
    if (options_.enable_substitution &&
        options_.max_substitution_rounds > 0) {
      // Stage boundary (§4.2 → §4.3): substitution is the expensive
      // fallback; never start it for a dead request.
      WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
      WFRM_ASSIGN_OR_RETURN(
          std::vector<policy::EnforcedQueries> rounds,
          policy_manager_.EnforceAlternativesRounds(
              query, options_.max_substitution_rounds, root, ctx));
      for (const policy::EnforcedQueries& alternatives : rounds) {
        if (alternatives.queries.empty()) continue;
        outcome.used_substitution = true;
        for (const rql::RqlQuery& q : alternatives.queries) {
          outcome.alternative_queries.push_back(q.ToString());
        }
        WFRM_ASSIGN_OR_RETURN(found,
                              RunQueries(alternatives.queries, &outcome, root,
                                         "alternatives", ctx));
        if (found > 0) return outcome;
      }
    }

    outcome.status = Status::ResourceUnavailable(
        "no available resource satisfies the enforced queries" +
        std::string(outcome.used_substitution ? " (substitution attempted)"
                                              : ""));
    return outcome;
  }();

  if (timed) {
    metrics_.submit_latency->Observe(
        static_cast<double>(clock_->NowMicros() - t0));
  }
  if (result.ok()) {
    const QueryOutcome& o = *result;
    switch (o.status.code()) {
      case StatusCode::kOk:
        if (metrics_.submit_ok != nullptr) metrics_.submit_ok->Increment();
        break;
      case StatusCode::kNoQualifiedResource:
        if (metrics_.submit_no_qualified != nullptr) {
          metrics_.submit_no_qualified->Increment();
        }
        break;
      case StatusCode::kResourceUnavailable:
        if (metrics_.submit_unavailable != nullptr) {
          metrics_.submit_unavailable->Increment();
        }
        break;
      default:
        if (metrics_.submit_error != nullptr) {
          metrics_.submit_error->Increment();
        }
        break;
    }
    if (o.used_substitution && metrics_.substitution_used != nullptr) {
      metrics_.substitution_used->Increment();
    }
    if (o.injected_fault && metrics_.injected_faults != nullptr) {
      metrics_.injected_faults->Increment();
    }
    if (root != nullptr) {
      root->AddAttr("status", StatusCodeToString(o.status.code()));
      root->AddAttr("candidates", static_cast<int64_t>(o.candidates.size()));
      root->AddAttr("used_substitution",
                    o.used_substitution ? "true" : "false");
      if (o.injected_fault) root->AddAttr("injected_fault", "true");
    }
  } else {
    switch (result.status().code()) {
      case StatusCode::kDeadlineExceeded:
        if (metrics_.submit_deadline_exceeded != nullptr) {
          metrics_.submit_deadline_exceeded->Increment();
        }
        break;
      case StatusCode::kCancelled:
        if (metrics_.submit_cancelled != nullptr) {
          metrics_.submit_cancelled->Increment();
        }
        break;
      default:
        if (metrics_.submit_error != nullptr) {
          metrics_.submit_error->Increment();
        }
        break;
    }
    if (root != nullptr) {
      root->AddAttr("status", StatusCodeToString(result.status().code()));
      root->AddAttr("error", result.status().message());
    }
  }
  return result;
}

Result<QueryOutcome> ResourceManager::Submit(const rql::RqlQuery& query,
                                             obs::EnforcementTrace* trace,
                                             const RequestContext* ctx) const {
  return SubmitImpl(query, trace, ctx);
}

Result<QueryOutcome> ResourceManager::Submit(
    const rql::RqlQuery& query) const {
  if (options_.trace_sink != nullptr) {
    auto trace =
        std::make_shared<obs::EnforcementTrace>(query.ToString(), clock_);
    Result<QueryOutcome> result = SubmitImpl(query, trace.get(), nullptr);
    trace->Finish();
    options_.trace_sink->Add(std::move(trace));
    return result;
  }
  return SubmitImpl(query, nullptr, nullptr);
}

Result<QueryOutcome> ResourceManager::Submit(std::string_view rql_text) const {
  WFRM_ASSIGN_OR_RETURN(rql::RqlQuery query,
                        rql::ParseAndBindRql(rql_text, *org_));
  return Submit(query);
}

Result<QueryOutcome> ResourceManager::Submit(std::string_view rql_text,
                                             const RequestContext& ctx) const {
  // Parsing is cheap but not free; a dead request skips even that.
  WFRM_RETURN_NOT_OK(ctx.CheckAlive());
  WFRM_ASSIGN_OR_RETURN(rql::RqlQuery query,
                        rql::ParseAndBindRql(rql_text, *org_));
  if (options_.trace_sink != nullptr) {
    auto trace =
        std::make_shared<obs::EnforcementTrace>(query.ToString(), clock_);
    Result<QueryOutcome> result = SubmitImpl(query, trace.get(), &ctx);
    trace->Finish();
    options_.trace_sink->Add(std::move(trace));
    return result;
  }
  return SubmitImpl(query, nullptr, &ctx);
}

Result<ResourceManager::Explanation> ResourceManager::ExplainQuery(
    std::string_view rql_text) const {
  WFRM_ASSIGN_OR_RETURN(rql::RqlQuery query,
                        rql::ParseAndBindRql(rql_text, *org_));
  auto trace =
      std::make_shared<obs::EnforcementTrace>(query.ToString(), clock_);
  WFRM_ASSIGN_OR_RETURN(QueryOutcome outcome,
                        SubmitImpl(query, trace.get(), nullptr));
  trace->Finish();
  Explanation explanation;
  explanation.report = RenderExplainReport(outcome, *trace);
  explanation.outcome = std::move(outcome);
  explanation.trace = std::move(trace);
  return explanation;
}

Result<std::string> ResourceManager::Explain(std::string_view rql_text) const {
  WFRM_ASSIGN_OR_RETURN(Explanation explanation, ExplainQuery(rql_text));
  return std::move(explanation.report);
}

std::vector<Result<QueryOutcome>> ResourceManager::SubmitBatch(
    const std::vector<std::string>& rql_texts, size_t num_workers,
    const RequestContext& ctx) const {
  return SubmitBatchImpl(rql_texts, num_workers, &ctx);
}

std::vector<Result<QueryOutcome>> ResourceManager::SubmitBatch(
    const std::vector<std::string>& rql_texts, size_t num_workers) const {
  return SubmitBatchImpl(rql_texts, num_workers, nullptr);
}

std::vector<Result<QueryOutcome>> ResourceManager::SubmitBatchImpl(
    const std::vector<std::string>& rql_texts, size_t num_workers,
    const RequestContext* ctx) const {
  // Result<T> has no default constructor: seed every slot with a
  // placeholder error so workers can assign by index.
  std::vector<Result<QueryOutcome>> results;
  results.reserve(rql_texts.size());
  for (size_t i = 0; i < rql_texts.size(); ++i) {
    results.emplace_back(Status::Internal("batch entry not executed"));
  }
  if (rql_texts.empty()) return results;

  auto submit_one = [&](size_t i) {
    results[i] = ctx != nullptr ? Submit(rql_texts[i], *ctx)
                                : Submit(rql_texts[i]);
  };

  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  size_t workers = num_workers == 0 ? std::min(rql_texts.size(), hw)
                                    : std::min(num_workers, rql_texts.size());
  if (workers <= 1) {
    for (size_t i = 0; i < rql_texts.size(); ++i) submit_one(i);
    return results;
  }

  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < rql_texts.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        submit_one(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return results;
}

size_t ResourceManager::PickCandidate(
    const std::vector<org::ResourceRef>& candidates) {
  switch (options_.allocation_strategy) {
    case AllocationStrategy::kFirst:
      return 0;
    case AllocationStrategy::kRoundRobin:
      return static_cast<size_t>(acquire_count_ % candidates.size());
    case AllocationStrategy::kLeastRecentlyUsed: {
      size_t best = 0;
      uint64_t best_time = ~0ull;
      for (size_t i = 0; i < candidates.size(); ++i) {
        auto it = last_allocated_.find(candidates[i]);
        uint64_t t = it == last_allocated_.end() ? 0 : it->second;
        if (t < best_time) {
          best_time = t;
          best = i;
        }
      }
      return best;
    }
    case AllocationStrategy::kRandom: {
      if (!rng_seeded_) {
        rng_.seed(options_.random_seed);
        rng_seeded_ = true;
      }
      std::uniform_int_distribution<size_t> dist(0, candidates.size() - 1);
      return dist(rng_);
    }
  }
  return 0;
}

Lease ResourceManager::TryClaimLocked(const org::ResourceRef& ref,
                                      int64_t now_micros) {
  if (failed_.count(ref) > 0) return Lease{};  // Down: not claimable.
  auto it = allocated_.find(ref);
  if (it != allocated_.end() && it->second.deadline_micros > now_micros) {
    return Lease{};  // Held under a live lease.
  }
  // Fresh grant, or overwrite of an expired one (the stale lease id
  // keeps the previous holder from releasing this new grant).
  Grant grant;
  grant.lease_id = next_lease_id_++;
  grant.deadline_micros = LeaseDeadline(now_micros);
  allocated_[ref] = grant;
  last_allocated_[ref] = ++logical_clock_;
  UpdateGaugesLocked();
  return Lease{ref, grant.lease_id, grant.deadline_micros};
}

Result<Lease> ResourceManager::Acquire(std::string_view rql_text) {
  return AcquireExcluding(rql_text, org::ResourceRef{});
}

Result<Lease> ResourceManager::Acquire(std::string_view rql_text,
                                       const RequestContext& ctx) {
  return AcquireExcluding(rql_text, org::ResourceRef{}, &ctx);
}

Result<Lease> ResourceManager::AcquireExcluding(
    std::string_view rql_text, const org::ResourceRef& excluded,
    const RequestContext* ctx) {
  // Concurrent acquirers race between Submit's availability snapshot and
  // the allocation; losing a race is handled by trying the remaining
  // candidates and, if all were snapped up, re-submitting (the fresh
  // snapshot excludes them). Bounded to rule out livelock.
  for (int attempt = 0; attempt < 8; ++attempt) {
    // Retry boundary: a dead request gets no fresh snapshot. The claim
    // below is atomic, so a deadline passing mid-claim still yields the
    // lease — deadlines bound waiting, never undo grants.
    WFRM_RETURN_NOT_OK(CheckRequestAlive(ctx));
    WFRM_ASSIGN_OR_RETURN(QueryOutcome outcome,
                          ctx != nullptr ? Submit(rql_text, *ctx)
                                         : Submit(rql_text));
    if (!outcome.ok()) {
      if (metrics_.acquire_failed != nullptr) {
        metrics_.acquire_failed->Increment();
      }
      return outcome.status;
    }

    const int64_t now = clock_->NowMicros();
    std::lock_guard<std::mutex> lock(mutex_);
    ++acquire_count_;
    size_t start = PickCandidate(outcome.candidates);
    for (size_t i = 0; i < outcome.candidates.size(); ++i) {
      const org::ResourceRef& ref =
          outcome.candidates[(start + i) % outcome.candidates.size()];
      if (!excluded.id.empty() && ref == excluded) continue;
      Lease lease = TryClaimLocked(ref, now);
      if (lease.valid()) {
        if (metrics_.acquire_ok != nullptr) metrics_.acquire_ok->Increment();
        return lease;
      }
    }
    // Every candidate was claimed by a concurrent acquirer (or was the
    // excluded resource); retry with a fresh snapshot unless exclusion
    // alone exhausted the outcome.
    if (metrics_.acquire_races != nullptr) metrics_.acquire_races->Increment();
    if (!excluded.id.empty() && outcome.candidates.size() == 1 &&
        outcome.candidates[0] == excluded) {
      if (metrics_.acquire_failed != nullptr) {
        metrics_.acquire_failed->Increment();
      }
      return Status::ResourceUnavailable(
          "the only candidate is the excluded resource " +
          excluded.ToString());
    }
  }
  if (metrics_.acquire_failed != nullptr) metrics_.acquire_failed->Increment();
  return Status::ResourceUnavailable(
      "could not claim any candidate under concurrent contention");
}

Result<Lease> ResourceManager::AllocateLease(const org::ResourceRef& ref) {
  // The resource must exist.
  WFRM_RETURN_NOT_OK(org_->GetResource(ref).status());
  ApplyScheduledFaults();
  const int64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_.count(ref) > 0) {
    return Status::ResourceUnavailable("resource " + ref.ToString() +
                                       " is down");
  }
  Lease lease = TryClaimLocked(ref, now);
  if (!lease.valid()) {
    return Status::ResourceUnavailable("resource " + ref.ToString() +
                                       " is already allocated");
  }
  return lease;
}

Status ResourceManager::Allocate(const org::ResourceRef& ref) {
  return AllocateLease(ref).status();
}

Status ResourceManager::Release(const org::ResourceRef& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (allocated_.erase(ref) == 0) {
    return Status::NotAllocated("resource " + ref.ToString() +
                                " is not allocated (never allocated, "
                                "double-released, or reaped)");
  }
  UpdateGaugesLocked();
  return Status::OK();
}

Status ResourceManager::Release(const Lease& lease) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocated_.find(lease.resource);
  if (it == allocated_.end() || it->second.lease_id != lease.id) {
    return Status::NotAllocated(
        "lease " + std::to_string(lease.id) + " on " +
        lease.resource.ToString() +
        " is no longer current (released, reaped, or superseded)");
  }
  allocated_.erase(it);
  UpdateGaugesLocked();
  return Status::OK();
}

Result<Lease> ResourceManager::RenewLease(const Lease& lease) {
  const int64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocated_.find(lease.resource);
  if (it == allocated_.end() || it->second.lease_id != lease.id) {
    return Status::NotAllocated(
        "lease " + std::to_string(lease.id) + " on " +
        lease.resource.ToString() + " cannot be renewed: not current");
  }
  // A renewal that arrives after the deadline but before any reap/claim
  // still wins: the holder proved liveness.
  it->second.deadline_micros = LeaseDeadline(now);
  return Lease{lease.resource, lease.id, it->second.deadline_micros};
}

size_t ResourceManager::ReapExpired() { return ReapExpiredLeases().size(); }

std::vector<Lease> ResourceManager::ReapExpiredLeases() {
  return ReapExpiredLeasesBefore(clock_->NowMicros());
}

std::vector<Lease> ResourceManager::ReapExpiredLeasesBefore(
    int64_t now_micros) {
  return ReapExpiredLeasesBefore(now_micros,
                                 std::numeric_limits<size_t>::max());
}

std::vector<Lease> ResourceManager::ReapExpiredLeasesBefore(
    int64_t now_micros, size_t max_leases) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Lease> reaped;
  for (auto it = allocated_.begin();
       it != allocated_.end() && reaped.size() < max_leases;) {
    if (it->second.deadline_micros <= now_micros) {
      reaped.push_back(
          Lease{it->first, it->second.lease_id, it->second.deadline_micros});
      it = allocated_.erase(it);
    } else {
      ++it;
    }
  }
  if (!reaped.empty()) {
    if (metrics_.leases_reaped != nullptr) {
      metrics_.leases_reaped->Increment(reaped.size());
    }
    UpdateGaugesLocked();
  }
  return reaped;
}

std::vector<Lease> ResourceManager::ExpiredLeasesBefore(
    int64_t now_micros, size_t max_leases) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Lease> expired;
  for (const auto& [ref, grant] : allocated_) {
    if (expired.size() >= max_leases) break;
    if (grant.deadline_micros <= now_micros) {
      expired.push_back(Lease{ref, grant.lease_id, grant.deadline_micros});
    }
  }
  return expired;
}

Status ResourceManager::RestoreLease(const Lease& lease) {
  if (!lease.valid()) {
    return Status::InvalidArgument("cannot restore an invalid lease");
  }
  WFRM_RETURN_NOT_OK(org_->GetResource(lease.resource).status());
  std::lock_guard<std::mutex> lock(mutex_);
  allocated_[lease.resource] = Grant{lease.id, lease.deadline_micros};
  if (next_lease_id_ <= lease.id) next_lease_id_ = lease.id + 1;
  UpdateGaugesLocked();
  return Status::OK();
}

std::vector<Lease> ResourceManager::ListLeases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Lease> leases;
  leases.reserve(allocated_.size());
  for (const auto& [ref, grant] : allocated_) {
    leases.push_back(Lease{ref, grant.lease_id, grant.deadline_micros});
  }
  return leases;
}

std::optional<Lease> ResourceManager::FindLease(
    const org::ResourceRef& ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocated_.find(ref);
  if (it == allocated_.end()) return std::nullopt;
  return Lease{ref, it->second.lease_id, it->second.deadline_micros};
}

uint64_t ResourceManager::next_lease_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_lease_id_;
}

void ResourceManager::AdvanceLeaseId(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (next_lease_id_ < id) next_lease_id_ = id;
}

bool ResourceManager::IsLeaseActive(const Lease& lease) const {
  const int64_t now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocated_.find(lease.resource);
  return it != allocated_.end() && it->second.lease_id == lease.id &&
         it->second.deadline_micros > now;
}

bool ResourceManager::IsAllocated(const org::ResourceRef& ref) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_.count(ref) > 0;
}

size_t ResourceManager::num_allocated() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_.size();
}

Status ResourceManager::MarkFailed(const org::ResourceRef& ref) {
  // Only real resources have health.
  WFRM_RETURN_NOT_OK(org_->GetResource(ref).status());
  std::lock_guard<std::mutex> lock(mutex_);
  failed_.insert(ref);
  UpdateGaugesLocked();
  return Status::OK();
}

Status ResourceManager::MarkRecovered(const org::ResourceRef& ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  failed_.erase(ref);  // Idempotent: recovering an up resource is a no-op.
  UpdateGaugesLocked();
  return Status::OK();
}

bool ResourceManager::IsFailed(const org::ResourceRef& ref) const {
  // Health is a lazily-synchronized view of the fault schedule: sync it
  // so a reader sees transitions that are already due.
  ApplyScheduledFaults();
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_.count(ref) > 0;
}

size_t ResourceManager::num_failed() const {
  ApplyScheduledFaults();
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_.size();
}

}  // namespace wfrm::core
