#include "core/fault_injector.h"

#include <algorithm>

namespace wfrm::core {

FaultInjector::FaultInjector(FaultInjectorOptions options)
    : options_(options), rng_(options.seed) {}

bool FaultInjector::SampleQueryFault() {
  if (options_.query_fault_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  if (dist(rng_) >= options_.query_fault_rate) return false;
  ++query_faults_injected_;
  return true;
}

int64_t FaultInjector::SampleQueryLatencyMicros() {
  if (options_.query_latency_rate <= 0.0 ||
      options_.query_latency_micros <= 0) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  if (dist(rng_) >= options_.query_latency_rate) return 0;
  ++latency_faults_injected_;
  return options_.query_latency_micros;
}

bool FaultInjector::SampleResourceFailure() {
  if (options_.resource_failure_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  if (dist(rng_) >= options_.resource_failure_rate) return false;
  ++resource_failures_injected_;
  return true;
}

bool FaultInjector::SampleStorageFault() {
  if (options_.storage_fault_rate <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  if (dist(rng_) >= options_.storage_fault_rate) return false;
  ++storage_faults_injected_;
  return true;
}

MessageFault FaultInjector::SampleMessageFault() {
  const double drop = options_.message_drop_rate;
  const double dup = options_.message_duplicate_rate;
  const double reorder = options_.message_reorder_rate;
  if (drop + dup + reorder <= 0.0) return MessageFault::kNone;
  std::lock_guard<std::mutex> lock(mutex_);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const double r = dist(rng_);
  MessageFault fault = MessageFault::kNone;
  if (r < drop) {
    fault = MessageFault::kDrop;
  } else if (r < drop + dup) {
    fault = MessageFault::kDuplicate;
  } else if (r < drop + dup + reorder) {
    fault = MessageFault::kReorder;
  }
  if (fault != MessageFault::kNone) ++message_faults_injected_;
  return fault;
}

void FaultInjector::ScheduleDown(const org::ResourceRef& resource,
                                 int64_t at_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_.push_back(HealthEvent{resource, at_micros, /*down=*/true});
}

void FaultInjector::ScheduleUp(const org::ResourceRef& resource,
                               int64_t at_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_.push_back(HealthEvent{resource, at_micros, /*down=*/false});
}

std::vector<FaultInjector::HealthEvent> FaultInjector::DrainDue(
    int64_t now_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HealthEvent> due;
  std::vector<HealthEvent> remaining;
  for (HealthEvent& ev : schedule_) {
    (ev.at_micros <= now_micros ? due : remaining).push_back(std::move(ev));
  }
  schedule_ = std::move(remaining);
  // Insertion order breaks ties, so a down scheduled before an up at the
  // same instant applies first (stable_sort keeps the vector order).
  std::stable_sort(due.begin(), due.end(),
                   [](const HealthEvent& a, const HealthEvent& b) {
                     return a.at_micros < b.at_micros;
                   });
  return due;
}

size_t FaultInjector::num_query_faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return query_faults_injected_;
}

size_t FaultInjector::num_latency_faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latency_faults_injected_;
}

size_t FaultInjector::num_resource_failures_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return resource_failures_injected_;
}

size_t FaultInjector::num_storage_faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return storage_faults_injected_;
}

size_t FaultInjector::num_message_faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return message_faults_injected_;
}

size_t FaultInjector::num_scheduled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return schedule_.size();
}

}  // namespace wfrm::core
