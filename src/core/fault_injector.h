#ifndef WFRM_CORE_FAULT_INJECTOR_H_
#define WFRM_CORE_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <vector>

#include "org/org_model.h"

namespace wfrm::core {

struct FaultInjectorOptions {
  /// Seed for the probability-driven faults: the same seed replays the
  /// same fault sequence.
  uint64_t seed = 42;
  /// Probability that one Submit() suffers a transient query fault
  /// (reported as kResourceUnavailable — retryable).
  double query_fault_rate = 0.0;
  /// Probability that one Submit() is slowed by an injected stall of
  /// query_latency_micros — the overload chaos harness's knob for
  /// driving a pipeline past request deadlines without touching real
  /// load.
  double query_latency_rate = 0.0;
  /// Stall length applied when a latency fault fires.
  int64_t query_latency_micros = 0;
  /// Probability that one SampleResourceFailure() call reports a
  /// failure — callers sample this e.g. once per assigned work item to
  /// decide whether the holder dies mid-flight.
  double resource_failure_rate = 0.0;
  /// Probability that one SampleStorageFault() call reports a failure —
  /// the storage layer's commit hooks (snapshot rename, directory sync)
  /// draw here to exercise their error-unwind paths.
  double storage_fault_rate = 0.0;
  /// Per-message link faults, sampled by SampleMessageFault() — the
  /// replication transport wrapper draws its seeded drops, duplicates
  /// and reorders here. The three rates are cumulative slices of one
  /// uniform draw, so their sum must stay <= 1.
  double message_drop_rate = 0.0;
  double message_duplicate_rate = 0.0;
  double message_reorder_rate = 0.0;
};

/// What happens to one shipped message (link-level chaos).
enum class MessageFault {
  kNone,
  /// The message never arrives (and the sender sees a transport error).
  kDrop,
  /// The message arrives twice — models an ack lost after delivery,
  /// forcing the sender to resend something already applied.
  kDuplicate,
  /// The message is held back and delivered after a later one.
  kReorder,
};

/// Deterministic fault source for chaos tests and benches.
///
/// Two modes, usable together:
///  * probability-driven: seeded coin flips for transient query faults
///    and resource failures;
///  * schedule-driven: "resource R goes down (comes back up) at time T"
///    events against the injected Clock, drained by whoever owns the
///    health states (the ResourceManager polls DrainDue on query entry
///    when wired through ResourceManagerOptions::fault_injector).
///
/// Thread-safe; all entry points are internally synchronized.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options = {});

  /// One health transition of the schedule.
  struct HealthEvent {
    org::ResourceRef resource;
    int64_t at_micros = 0;
    bool down = true;  // false = recovery
  };

  /// Coin flip at query_fault_rate; counts injected faults.
  bool SampleQueryFault();

  /// Coin flip at query_latency_rate: the stall (in micros) to apply to
  /// this query, or 0. Counts injected stalls.
  int64_t SampleQueryLatencyMicros();

  /// Coin flip at resource_failure_rate; counts injected failures.
  bool SampleResourceFailure();

  /// Coin flip at storage_fault_rate; counts injected faults.
  bool SampleStorageFault();

  /// One seeded draw against the three message-fault rates; counts every
  /// non-kNone outcome.
  MessageFault SampleMessageFault();

  /// Schedules `resource` to fail (recover) at `at_micros`.
  void ScheduleDown(const org::ResourceRef& resource, int64_t at_micros);
  void ScheduleUp(const org::ResourceRef& resource, int64_t at_micros);

  /// Removes and returns every scheduled event with at_micros <=
  /// now_micros, ordered by time (ties: schedule insertion order), so
  /// down/up pairs for the same resource apply in the intended order.
  std::vector<HealthEvent> DrainDue(int64_t now_micros);

  size_t num_query_faults_injected() const;
  size_t num_latency_faults_injected() const;
  size_t num_resource_failures_injected() const;
  size_t num_storage_faults_injected() const;
  size_t num_message_faults_injected() const;
  size_t num_scheduled() const;

 private:
  FaultInjectorOptions options_;
  mutable std::mutex mutex_;
  std::mt19937_64 rng_;
  std::vector<HealthEvent> schedule_;
  size_t query_faults_injected_ = 0;
  size_t latency_faults_injected_ = 0;
  size_t resource_failures_injected_ = 0;
  size_t storage_faults_injected_ = 0;
  size_t message_faults_injected_ = 0;
};

}  // namespace wfrm::core

#endif  // WFRM_CORE_FAULT_INJECTOR_H_
