#include "rel/sql_ast.h"

#include "common/strings.h"

namespace wfrm::rel {

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kNone:
      return "";
    case AggregateFn::kCountStar:
    case AggregateFn::kCount:
      return "Count";
    case AggregateFn::kSum:
      return "Sum";
    case AggregateFn::kMin:
      return "Min";
    case AggregateFn::kMax:
      return "Max";
    case AggregateFn::kAvg:
      return "Avg";
  }
  return "";
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  out.is_star = is_star;
  out.aggregate = aggregate;
  out.expr = expr ? expr->Clone() : nullptr;
  out.alias = alias;
  return out;
}

std::string SelectItem::ToString() const {
  std::string out;
  if (is_star) {
    out = "*";
  } else if (aggregate == AggregateFn::kCountStar) {
    out = "Count(*)";
  } else if (aggregate != AggregateFn::kNone) {
    out = std::string(AggregateFnToString(aggregate)) + "(" +
          expr->ToString() + ")";
  } else {
    out = expr->ToString();
  }
  if (!alias.empty()) out += " As " + alias;
  return out;
}

SelectPtr SelectStatement::Clone() const {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = distinct;
  out->items.reserve(items.size());
  for (const auto& it : items) out->items.push_back(it.Clone());
  out->from = from;
  out->where = where ? where->Clone() : nullptr;
  if (connect_by) out->connect_by = connect_by->Clone();
  out->group_by = group_by;
  out->having = having ? having->Clone() : nullptr;
  out->order_by.reserve(order_by.size());
  for (const OrderKey& k : order_by) out->order_by.push_back(k.Clone());
  out->limit = limit;
  out->union_next = union_next ? union_next->Clone() : nullptr;
  return out;
}

std::string SelectStatement::ToString() const {
  std::string out = "Select ";
  if (distinct) out += "Distinct ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += " From ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  if (where) out += " Where " + where->ToString();
  if (connect_by) {
    out += " Start With " + connect_by->start_with->ToString();
    out += " Connect By " + connect_by->connect->ToString();
  }
  if (!group_by.empty()) {
    out += " Group By " + Join(group_by, ", ");
  }
  if (having) out += " Having " + having->ToString();
  if (!order_by.empty()) {
    out += " Order By ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " Desc";
    }
  }
  if (limit) out += " Limit " + std::to_string(*limit);
  if (union_next) out += " Union " + union_next->ToString();
  return out;
}

}  // namespace wfrm::rel
