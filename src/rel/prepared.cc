#include "rel/prepared.h"

#include <utility>

#include "rel/executor.h"

namespace wfrm::rel {

Result<std::shared_ptr<const PreparedQuery>> PlanCache::GetOrPrepare(
    const Executor& exec, const std::string& sql, PlanLookup* outcome) {
  const uint64_t version = exec.db()->catalog_version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(sql);
    if (it != map_.end()) {
      if (it->second.plan->catalog_version() == version) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (outcome != nullptr) *outcome = PlanLookup::kHit;
        return it->second.plan;
      }
      // Planned against an older catalog: drop and re-prepare below.
      lru_.erase(it->second.lru_it);
      map_.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (outcome != nullptr) *outcome = PlanLookup::kMiss;

  // Prepare outside the cache lock: parsing is the expensive part and
  // concurrent misses on different shapes should not serialize. Two
  // threads racing on the same SQL both prepare; last insert wins.
  WFRM_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> plan,
                        exec.Prepare(sql));

  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return plan;
  auto it = map_.find(sql);
  if (it != map_.end()) {
    it->second.plan = plan;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return plan;
  }
  while (map_.size() >= capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(sql);
  map_.emplace(sql, Entry{plan, lru_.begin()});
  return plan;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace wfrm::rel
