#include "rel/database.h"

namespace wfrm::rel {

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  tables_.push_back(std::make_unique<Table>(name, std::move(schema)));
  table_index_[name] = tables_.size() - 1;
  BumpCatalogVersion();
  return tables_.back().get();
}

Status Database::CreateView(const std::string& name,
                            std::vector<std::string> column_names,
                            SelectPtr query) {
  if (HasRelation(name)) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  views_.push_back(std::make_unique<ViewDef>(
      ViewDef{name, std::move(column_names), std::move(query)}));
  view_index_[name] = views_.size() - 1;
  BumpCatalogVersion();
  return Status::OK();
}

void Database::CreateOrReplaceView(const std::string& name,
                                   std::vector<std::string> column_names,
                                   SelectPtr query) {
  auto it = view_index_.find(name);
  if (it != view_index_.end()) {
    views_[it->second] = std::make_unique<ViewDef>(
        ViewDef{name, std::move(column_names), std::move(query)});
    BumpCatalogVersion();
    return;
  }
  views_.push_back(std::make_unique<ViewDef>(
      ViewDef{name, std::move(column_names), std::move(query)}));
  view_index_[name] = views_.size() - 1;
  BumpCatalogVersion();
}

Status Database::DropTable(const std::string& name) {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_[it->second].reset();
  table_index_.erase(it);
  BumpCatalogVersion();
  return Status::OK();
}

Status Database::DropView(const std::string& name) {
  auto it = view_index_.find(name);
  if (it == view_index_.end()) {
    return Status::NotFound("view '" + name + "' does not exist");
  }
  views_[it->second].reset();
  view_index_.erase(it);
  BumpCatalogVersion();
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  auto it = table_index_.find(name);
  return it == table_index_.end() ? nullptr : tables_[it->second].get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = table_index_.find(name);
  return it == table_index_.end() ? nullptr : tables_[it->second].get();
}

const ViewDef* Database::GetView(const std::string& name) const {
  auto it = view_index_.find(name);
  return it == view_index_.end() ? nullptr : views_[it->second].get();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, idx] : table_index_) out.push_back(name);
  return out;
}

std::vector<std::string> Database::ViewNames() const {
  std::vector<std::string> out;
  for (const auto& [name, idx] : view_index_) out.push_back(name);
  return out;
}

}  // namespace wfrm::rel
