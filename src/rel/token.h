#ifndef WFRM_REL_TOKEN_H_
#define WFRM_REL_TOKEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rel/value.h"

namespace wfrm::rel {

/// Lexical token shared by the SQL, RQL and Policy Language parsers.
struct Token {
  enum class Kind {
    kIdentifier,  // foo, Bar_2 (keywords are identifiers; parsers match
                  // them case-insensitively)
    kNumber,      // 42, 3.5 (value carries the parsed constant)
    kString,      // 'text' with '' escaping
    kSymbol,      // ( ) , . ; * + - / = < > <= >= != <>
    kParameter,   // [Name] — activity-attribute reference (paper §3.2)
    kEnd,
  };

  Kind kind = Kind::kEnd;
  std::string text;   // Raw text (identifier spelling, symbol, param name).
  Value value;        // For kNumber / kString.
  size_t offset = 0;  // Byte offset into the input, for error messages.

  bool IsSymbol(std::string_view s) const {
    return kind == Kind::kSymbol && text == s;
  }
  /// Case-insensitive keyword match against an identifier token.
  bool IsKeyword(std::string_view kw) const;
};

/// Splits `input` into tokens. Fails with ParseError (and offset context)
/// on malformed literals or unknown characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// Cursor over a token stream with the helpers recursive-descent parsers
/// need. The terminating kEnd token is always present.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens, std::string input)
      : tokens_(std::move(tokens)), input_(std::move(input)) {}

  /// Tokenizes and wraps in one step.
  static Result<TokenStream> Open(std::string_view input);

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }

  /// Consumes the next token if it is the given keyword.
  bool TryKeyword(std::string_view kw);
  /// Consumes the next token if it is the given symbol.
  bool TrySymbol(std::string_view sym);

  /// Requires and consumes a keyword, else ParseError.
  Status ExpectKeyword(std::string_view kw);
  /// Requires and consumes a symbol, else ParseError.
  Status ExpectSymbol(std::string_view sym);
  /// Requires and consumes an identifier, returning its spelling.
  Result<std::string> ExpectIdentifier(std::string_view what);

  /// ParseError pointing at the current token.
  Status Error(const std::string& message) const;

 private:
  std::vector<Token> tokens_;
  std::string input_;
  size_t pos_ = 0;
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_TOKEN_H_
