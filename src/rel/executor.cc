#include "rel/executor.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "rel/parser.h"
#include "rel/prepared.h"

namespace wfrm::rel {

namespace {

/// One relation bound in a FROM list: a name, a schema, and row storage.
/// Base tables alias the Table's rows; views materialize. Materialized
/// rows are shared so repeated references to the same view within one
/// statement (e.g. both arms of the Figure 15 union) alias one snapshot.
struct Relation {
  std::string binding_name;
  Schema schema;
  const Table* table = nullptr;  // Set for base tables.
  std::shared_ptr<const std::vector<Row>> materialized;  // Set for views.

  size_t NumRows() const {
    return table ? table->num_slots() : materialized->size();
  }
};

/// A row under evaluation: one (schema, row) binding per FROM entry.
struct Binding {
  const std::string* name;
  const Schema* schema;
  const Row* row;
};

struct Scope {
  std::vector<Binding> bindings;
  const Scope* parent = nullptr;
  const ParamMap* params = nullptr;
  // CONNECT BY context.
  std::optional<int64_t> level;
  const Row* prior_row = nullptr;  // Parent row for PRIOR evaluation.
};

bool IsTrue(const Value& v) { return v.is_bool() && v.bool_value(); }

/// SQL LIKE matcher: '%' matches any sequence, '_' any single character.
/// Iterative two-pointer algorithm with backtracking on the last '%'.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

class Executor::Impl {
 public:
  Impl(const Executor& exec) : exec_(exec), db_(*exec.db_) {}

  Result<ResultSet> Execute(const SelectStatement& stmt, const Scope* outer,
                            const ParamMap& params) {
    WFRM_ASSIGN_OR_RETURN(ResultSet rs, ExecuteOne(stmt, outer, params));
    // UNION chain: set semantics over the concatenation.
    if (stmt.union_next) {
      if (!stmt.union_next->order_by.empty() || stmt.union_next->limit) {
        return Status::ExecutionError(
            "Order By / Limit must appear on the outermost select of a "
            "Union");
      }
      WFRM_ASSIGN_OR_RETURN(ResultSet next,
                            Execute(*stmt.union_next, outer, params));
      if (next.schema.num_columns() != rs.schema.num_columns()) {
        return Status::ExecutionError(
            "Union arms have different column counts (" +
            std::to_string(rs.schema.num_columns()) + " vs " +
            std::to_string(next.schema.num_columns()) + ")");
      }
      for (auto& row : next.rows) rs.rows.push_back(std::move(row));
      Dedup(&rs);
    } else if (stmt.distinct) {
      Dedup(&rs);
    }
    // For a Union, ORDER BY applies to the combined result and resolves
    // against the output schema; plain selects were already sorted inside
    // ExecuteOne with source columns in scope.
    if (!stmt.order_by.empty() && stmt.union_next) {
      WFRM_RETURN_NOT_OK(Sort(stmt.order_by, outer, params, &rs));
    }
    if (stmt.limit && rs.rows.size() > *stmt.limit) {
      rs.rows.resize(*stmt.limit);
    }
    return rs;
  }

  Status Sort(const std::vector<OrderKey>& keys, const Scope* outer,
              const ParamMap& params, ResultSet* rs) {
    // Pre-compute the key tuple per row (errors surface here, not inside
    // the comparator).
    static const std::string kRowBinding = "";
    std::vector<std::pair<std::vector<Value>, size_t>> keyed;
    keyed.reserve(rs->rows.size());
    for (size_t i = 0; i < rs->rows.size(); ++i) {
      Scope scope;
      scope.parent = outer;
      scope.params = &params;
      scope.bindings.push_back(
          Binding{&kRowBinding, &rs->schema, &rs->rows[i]});
      std::vector<Value> tuple;
      tuple.reserve(keys.size());
      for (const OrderKey& key : keys) {
        WFRM_ASSIGN_OR_RETURN(Value v, Eval(*key.expr, scope));
        tuple.push_back(std::move(v));
      }
      keyed.push_back({std::move(tuple), i});
    }
    SortKeyed(keys, &keyed, rs);
    return Status::OK();
  }

  /// Stable-sorts rs->rows by the pre-computed key tuples.
  void SortKeyed(const std::vector<OrderKey>& keys,
                 std::vector<std::pair<std::vector<Value>, size_t>>* keyed,
                 ResultSet* rs) {
    std::stable_sort(keyed->begin(), keyed->end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t k = 0; k < keys.size(); ++k) {
                         const Value& va = a.first[k];
                         const Value& vb = b.first[k];
                         if (va < vb) return !keys[k].descending;
                         if (vb < va) return keys[k].descending;
                       }
                       return false;
                     });
    std::vector<Row> sorted;
    sorted.reserve(rs->rows.size());
    for (const auto& [tuple, i] : *keyed) {
      sorted.push_back(std::move(rs->rows[i]));
    }
    rs->rows = std::move(sorted);
  }

  Result<Value> Eval(const Expr& expr, const Scope& scope) {
    switch (expr.kind()) {
      case Expr::Kind::kLiteral:
        return static_cast<const LiteralExpr&>(expr).value();
      case Expr::Kind::kParameter: {
        const auto& p = static_cast<const ParameterExpr&>(expr);
        for (const Scope* s = &scope; s != nullptr; s = s->parent) {
          if (s->params != nullptr) {
            auto it = s->params->find(p.name());
            if (it != s->params->end()) return it->second;
          }
        }
        return Status::ExecutionError("unbound parameter [" + p.name() + "]");
      }
      case Expr::Kind::kColumnRef:
        return EvalColumn(static_cast<const ColumnRefExpr&>(expr), scope);
      case Expr::Kind::kUnary:
        return EvalUnary(static_cast<const UnaryExpr&>(expr), scope);
      case Expr::Kind::kBinary:
        return EvalBinary(static_cast<const BinaryExpr&>(expr), scope);
      case Expr::Kind::kInList:
        return EvalInList(static_cast<const InListExpr&>(expr), scope);
      case Expr::Kind::kSubquery:
        return EvalSubquery(static_cast<const SubqueryExpr&>(expr), scope);
      case Expr::Kind::kInSubquery:
        return EvalInSubquery(static_cast<const InSubqueryExpr&>(expr), scope);
      case Expr::Kind::kFunction:
        return EvalFunction(static_cast<const FunctionExpr&>(expr), scope);
    }
    return Status::Internal("unknown expression kind");
  }

 private:
  // ---- Column and scope resolution -------------------------------------

  Result<Value> EvalColumn(const ColumnRefExpr& ref, const Scope& scope) {
    for (const Scope* s = &scope; s != nullptr; s = s->parent) {
      // LEVEL pseudo-column inside CONNECT BY evaluation.
      if (ref.qualifier().empty() && s->level.has_value() &&
          EqualsIgnoreCase(ref.name(), "level")) {
        return Value::Int(*s->level);
      }
      const Binding* found = nullptr;
      std::optional<size_t> found_col;
      for (const Binding& b : s->bindings) {
        if (!ref.qualifier().empty() &&
            !EqualsIgnoreCase(*b.name, ref.qualifier())) {
          continue;
        }
        if (auto col = b.schema->FindColumn(ref.name())) {
          if (found != nullptr) {
            return Status::ExecutionError("ambiguous column reference '" +
                                          ref.ToString() + "'");
          }
          found = &b;
          found_col = col;
        }
      }
      if (found != nullptr) return (*found->row)[*found_col];
    }
    return Status::NotFound("column '" + ref.ToString() +
                            "' not found in scope");
  }

  // ---- No-copy operand resolution --------------------------------------

  /// Resolves a column reference to the row cell it names, or nullptr
  /// when resolution needs the slow path (LEVEL pseudo-column, absent or
  /// ambiguous reference — EvalColumn carries the diagnostics).
  const Value* FindColumnCell(const ColumnRefExpr& ref, const Scope& scope) {
    for (const Scope* s = &scope; s != nullptr; s = s->parent) {
      if (ref.qualifier().empty() && s->level.has_value() &&
          EqualsIgnoreCase(ref.name(), "level")) {
        return nullptr;
      }
      const Binding* found = nullptr;
      std::optional<size_t> found_col;
      for (const Binding& b : s->bindings) {
        if (!ref.qualifier().empty() &&
            !EqualsIgnoreCase(*b.name, ref.qualifier())) {
          continue;
        }
        if (auto col = b.schema->FindColumn(ref.name())) {
          if (found != nullptr) return nullptr;
          found = &b;
          found_col = col;
        }
      }
      if (found != nullptr) return &(*found->row)[*found_col];
    }
    return nullptr;
  }

  /// Resolves a leaf operand (literal, bound parameter, column) to the
  /// Value it already lives in. Returns nullptr when the operand is not
  /// a leaf or needs the copying slow path for its diagnostics.
  const Value* TryEvalRef(const Expr& expr, const Scope& scope) {
    switch (expr.kind()) {
      case Expr::Kind::kLiteral:
        return &static_cast<const LiteralExpr&>(expr).value();
      case Expr::Kind::kParameter: {
        const auto& p = static_cast<const ParameterExpr&>(expr);
        for (const Scope* s = &scope; s != nullptr; s = s->parent) {
          if (s->params != nullptr) {
            auto it = s->params->find(p.name());
            if (it != s->params->end()) return &it->second;
          }
        }
        return nullptr;
      }
      case Expr::Kind::kColumnRef:
        return FindColumnCell(static_cast<const ColumnRefExpr&>(expr), scope);
      default:
        return nullptr;
    }
  }

  Result<Value> EvalUnary(const UnaryExpr& e, const Scope& scope) {
    if (e.op() == UnaryOp::kPrior) {
      if (scope.prior_row == nullptr || scope.bindings.size() != 1) {
        return Status::ExecutionError(
            "Prior is only valid inside a Connect By condition");
      }
      Scope prior_scope = scope;
      Binding b = scope.bindings[0];
      b.row = scope.prior_row;
      prior_scope.bindings = {b};
      prior_scope.prior_row = nullptr;
      // LEVEL under PRIOR refers to the parent's level.
      if (scope.level) prior_scope.level = *scope.level - 1;
      return Eval(e.operand(), prior_scope);
    }
    WFRM_ASSIGN_OR_RETURN(Value v, Eval(e.operand(), scope));
    if (e.op() == UnaryOp::kNot) {
      if (v.is_null()) return Value::Null();
      if (!v.is_bool()) {
        return Status::TypeError("Not applied to non-boolean " + v.ToString());
      }
      return Value::Bool(!v.bool_value());
    }
    // kNeg
    if (v.is_null()) return Value::Null();
    if (v.is_int()) return Value::Int(-v.int_value());
    if (v.is_double()) return Value::Double(-v.double_value());
    return Status::TypeError("unary minus applied to " + v.ToString());
  }

  Result<Value> EvalBinary(const BinaryExpr& e, const Scope& scope) {
    // Kleene logic with short-circuiting for And/Or.
    if (e.op() == BinaryOp::kAnd || e.op() == BinaryOp::kOr) {
      WFRM_ASSIGN_OR_RETURN(Value l, Eval(e.left(), scope));
      bool is_and = e.op() == BinaryOp::kAnd;
      if (l.is_bool()) {
        if (is_and && !l.bool_value()) return Value::Bool(false);
        if (!is_and && l.bool_value()) return Value::Bool(true);
      } else if (!l.is_null()) {
        return Status::TypeError("boolean operator applied to " + l.ToString());
      }
      WFRM_ASSIGN_OR_RETURN(Value r, Eval(e.right(), scope));
      if (r.is_bool()) {
        if (is_and && !r.bool_value()) return Value::Bool(false);
        if (!is_and && r.bool_value()) return Value::Bool(true);
      } else if (!r.is_null()) {
        return Status::TypeError("boolean operator applied to " + r.ToString());
      }
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Bool(is_and ? (l.bool_value() && r.bool_value())
                                : (l.bool_value() || r.bool_value()));
    }

    // Comparison leaves dominate residual WHERE rechecks (hundreds of
    // candidate rows × dozens of interval predicates per retrieval).
    // When both operands already live somewhere — a row cell, a literal,
    // a bound parameter — compare in place instead of recursing through
    // Eval, which copies each operand's Value (string cells included).
    if (IsComparison(e.op())) {
      const Value* lp = TryEvalRef(e.left(), scope);
      const Value* rp = lp != nullptr ? TryEvalRef(e.right(), scope) : nullptr;
      Value lv;
      Value rv;
      if (rp == nullptr) {
        WFRM_ASSIGN_OR_RETURN(lv, Eval(e.left(), scope));
        WFRM_ASSIGN_OR_RETURN(rv, Eval(e.right(), scope));
        lp = &lv;
        rp = &rv;
      }
      if (lp->is_null() || rp->is_null()) return Value::Null();
      WFRM_ASSIGN_OR_RETURN(int c, lp->Compare(*rp));
      switch (e.op()) {
        case BinaryOp::kEq:
          return Value::Bool(c == 0);
        case BinaryOp::kNe:
          return Value::Bool(c != 0);
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        case BinaryOp::kGe:
          return Value::Bool(c >= 0);
        default:
          return Status::Internal("unexpected comparison operator");
      }
    }

    WFRM_ASSIGN_OR_RETURN(Value l, Eval(e.left(), scope));
    WFRM_ASSIGN_OR_RETURN(Value r, Eval(e.right(), scope));

    if (e.op() == BinaryOp::kLike) {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_string() || !r.is_string()) {
        return Status::TypeError("Like requires string operands, got " +
                                 l.ToString() + " Like " + r.ToString());
      }
      return Value::Bool(LikeMatch(l.string_value(), r.string_value()));
    }

    // Arithmetic.
    if (l.is_null() || r.is_null()) return Value::Null();
    if (e.op() == BinaryOp::kAdd && l.is_string() && r.is_string()) {
      return Value::String(l.string_value() + r.string_value());
    }
    if (!l.is_numeric() || !r.is_numeric()) {
      return Status::TypeError("arithmetic on non-numeric operands " +
                               l.ToString() + " and " + r.ToString());
    }
    bool both_int = l.is_int() && r.is_int();
    switch (e.op()) {
      case BinaryOp::kAdd:
        return both_int ? Value::Int(l.int_value() + r.int_value())
                        : Value::Double(l.AsDouble() + r.AsDouble());
      case BinaryOp::kSub:
        return both_int ? Value::Int(l.int_value() - r.int_value())
                        : Value::Double(l.AsDouble() - r.AsDouble());
      case BinaryOp::kMul:
        return both_int ? Value::Int(l.int_value() * r.int_value())
                        : Value::Double(l.AsDouble() * r.AsDouble());
      case BinaryOp::kDiv:
        if (both_int) {
          if (r.int_value() == 0) {
            return Status::ExecutionError("integer division by zero");
          }
          return Value::Int(l.int_value() / r.int_value());
        }
        return Value::Double(l.AsDouble() / r.AsDouble());
      default:
        return Status::Internal("unexpected binary operator");
    }
  }

  Result<Value> EvalInList(const InListExpr& e, const Scope& scope) {
    WFRM_ASSIGN_OR_RETURN(Value needle, Eval(e.needle(), scope));
    if (needle.is_null()) return Value::Null();
    bool saw_null = false;
    for (const auto& item : e.haystack()) {
      WFRM_ASSIGN_OR_RETURN(Value v, Eval(*item, scope));
      if (v.is_null()) {
        saw_null = true;
        continue;
      }
      WFRM_ASSIGN_OR_RETURN(int c, needle.Compare(v));
      if (c == 0) return Value::Bool(true);
    }
    return saw_null ? Value::Null() : Value::Bool(false);
  }

  Result<Value> EvalSubquery(const SubqueryExpr& e, const Scope& scope) {
    WFRM_ASSIGN_OR_RETURN(ResultSet rs,
                          Execute(e.select(), &scope, ParamMap{}));
    if (rs.schema.num_columns() != 1) {
      return Status::ExecutionError(
          "scalar subquery must produce exactly one column");
    }
    if (rs.rows.empty()) return Value::Null();
    if (rs.rows.size() > 1) {
      return Status::ExecutionError("scalar subquery produced " +
                                    std::to_string(rs.rows.size()) + " rows");
    }
    return rs.rows[0][0];
  }

  Result<Value> EvalInSubquery(const InSubqueryExpr& e, const Scope& scope) {
    WFRM_ASSIGN_OR_RETURN(Value needle, Eval(e.needle(), scope));
    if (needle.is_null()) return Value::Null();
    WFRM_ASSIGN_OR_RETURN(ResultSet rs,
                          Execute(e.select(), &scope, ParamMap{}));
    if (rs.schema.num_columns() != 1) {
      return Status::ExecutionError(
          "In-subquery must produce exactly one column");
    }
    bool saw_null = false;
    for (const Row& row : rs.rows) {
      if (row[0].is_null()) {
        saw_null = true;
        continue;
      }
      WFRM_ASSIGN_OR_RETURN(int c, needle.Compare(row[0]));
      if (c == 0) return Value::Bool(true);
    }
    return saw_null ? Value::Null() : Value::Bool(false);
  }

  Result<Value> EvalFunction(const FunctionExpr& e, const Scope& scope) {
    if (e.star()) {
      return Status::ExecutionError(
          "aggregate '" + e.name() + "(*)' outside a select list");
    }
    std::vector<Value> args;
    args.reserve(e.args().size());
    for (const auto& a : e.args()) {
      WFRM_ASSIGN_OR_RETURN(Value v, Eval(*a, scope));
      args.push_back(std::move(v));
    }
    auto require_args = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::ExecutionError(e.name() + " takes " +
                                      std::to_string(n) + " argument(s)");
      }
      return Status::OK();
    };
    if (EqualsIgnoreCase(e.name(), "upper")) {
      WFRM_RETURN_NOT_OK(require_args(1));
      if (args[0].is_null()) return Value::Null();
      if (!args[0].is_string()) return Status::TypeError("Upper needs string");
      return Value::String(AsciiToUpper(args[0].string_value()));
    }
    if (EqualsIgnoreCase(e.name(), "lower")) {
      WFRM_RETURN_NOT_OK(require_args(1));
      if (args[0].is_null()) return Value::Null();
      if (!args[0].is_string()) return Status::TypeError("Lower needs string");
      return Value::String(AsciiToLower(args[0].string_value()));
    }
    if (EqualsIgnoreCase(e.name(), "length")) {
      WFRM_RETURN_NOT_OK(require_args(1));
      if (args[0].is_null()) return Value::Null();
      if (!args[0].is_string()) return Status::TypeError("Length needs string");
      return Value::Int(static_cast<int64_t>(args[0].string_value().size()));
    }
    if (EqualsIgnoreCase(e.name(), "abs")) {
      WFRM_RETURN_NOT_OK(require_args(1));
      if (args[0].is_null()) return Value::Null();
      if (args[0].is_int()) return Value::Int(std::abs(args[0].int_value()));
      if (args[0].is_double())
        return Value::Double(std::fabs(args[0].double_value()));
      return Status::TypeError("Abs needs a numeric argument");
    }
    return Status::ExecutionError("unknown function '" + e.name() + "'");
  }

  // ---- FROM resolution ---------------------------------------------------

  Result<Relation> ResolveRelation(const TableRef& ref, const Scope* outer,
                                   const ParamMap& params) {
    Relation rel;
    rel.binding_name = ref.BindingName();
    if (const Table* t = db_.GetTable(ref.name)) {
      rel.schema = t->schema();
      rel.table = t;
      return rel;
    }
    if (const ViewDef* v = db_.GetView(ref.name)) {
      // Within one top-level execution a view materializes once: the
      // Figure 15 union references Relevant_Policies in both arms and the
      // catalog cannot change mid-statement. Correlated contexts
      // (outer != nullptr) bypass the memo — their rows may depend on the
      // outer row bindings.
      const bool memoizable = outer == nullptr;
      if (memoizable) {
        auto it = view_memo_.find(v->name);
        if (it != view_memo_.end()) {
          rel.schema = it->second.schema;
          rel.materialized = it->second.rows;
          return rel;
        }
      }
      WFRM_ASSIGN_OR_RETURN(ResultSet rs, Execute(*v->query, outer, params));
      if (!v->column_names.empty()) {
        if (v->column_names.size() != rs.schema.num_columns()) {
          return Status::ExecutionError(
              "view '" + v->name + "' declares " +
              std::to_string(v->column_names.size()) + " columns but query "
              "produces " + std::to_string(rs.schema.num_columns()));
        }
        Schema renamed;
        for (size_t i = 0; i < v->column_names.size(); ++i) {
          renamed.AddColumn({v->column_names[i], rs.schema.column(i).type});
        }
        rs.schema = std::move(renamed);
      }
      rel.schema = std::move(rs.schema);
      rel.materialized =
          std::make_shared<const std::vector<Row>>(std::move(rs.rows));
      if (memoizable) {
        view_memo_[v->name] = ViewSnapshot{rel.schema, rel.materialized};
      }
      return rel;
    }
    return Status::NotFound("relation '" + ref.name + "' does not exist");
  }

  // ---- Index access path ---------------------------------------------------

  /// One conjunct group of the probe normalization: column constraints
  /// that must all hold for the group to match.
  struct ConjGroup {
    std::vector<std::pair<size_t, Value>> equals;
    std::vector<std::pair<size_t, Bound>> lowers;
    std::vector<std::pair<size_t, Bound>> uppers;
  };

  /// A disjunction of conjunct groups whose union covers (a superset of)
  /// the rows matching the WHERE clause; the residual WHERE re-check in
  /// JoinRelations removes false positives. `indexable == false` means no
  /// covering superset could be derived, forcing a full scan.
  struct ProbeSet {
    bool indexable = false;
    std::vector<ConjGroup> groups;
  };

  /// Cap on the disjunct fan-out: beyond this an And keeps only one side
  /// (still a superset) and an Or or In-list gives up.
  static constexpr size_t kMaxProbeGroups = 256;

  /// Normalizes a WHERE subtree into a small DNF of indexable probes.
  /// `col op const` and `col In (const, ...)` are leaves; And crosses the
  /// two sides' groups (or keeps one side — a superset — when the other
  /// is non-indexable or the product is too large); Or unions groups and
  /// is poisoned by any non-indexable disjunct, because the probe union
  /// must cover every row the Or can accept.
  ProbeSet NormalizeProbes(const Expr& e, const Relation& rel,
                           const Scope& const_scope) {
    ProbeSet none;
    if (e.kind() == Expr::Kind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(e);
      if (b.op() == BinaryOp::kAnd) {
        ProbeSet l = NormalizeProbes(b.left(), rel, const_scope);
        ProbeSet r = NormalizeProbes(b.right(), rel, const_scope);
        if (!l.indexable) return r;
        if (!r.indexable) return l;
        if (l.groups.size() * r.groups.size() > kMaxProbeGroups) {
          return l.groups.size() <= r.groups.size() ? l : r;
        }
        ProbeSet out;
        out.indexable = true;
        out.groups.reserve(l.groups.size() * r.groups.size());
        for (const ConjGroup& lg : l.groups) {
          for (const ConjGroup& rg : r.groups) {
            ConjGroup g = lg;
            g.equals.insert(g.equals.end(), rg.equals.begin(),
                            rg.equals.end());
            g.lowers.insert(g.lowers.end(), rg.lowers.begin(),
                            rg.lowers.end());
            g.uppers.insert(g.uppers.end(), rg.uppers.begin(),
                            rg.uppers.end());
            out.groups.push_back(std::move(g));
          }
        }
        return out;
      }
      if (b.op() == BinaryOp::kOr) {
        ProbeSet l = NormalizeProbes(b.left(), rel, const_scope);
        if (!l.indexable) return none;
        ProbeSet r = NormalizeProbes(b.right(), rel, const_scope);
        if (!r.indexable) return none;
        if (l.groups.size() + r.groups.size() > kMaxProbeGroups) return none;
        l.groups.insert(l.groups.end(),
                        std::make_move_iterator(r.groups.begin()),
                        std::make_move_iterator(r.groups.end()));
        return l;
      }
      if (IsComparison(b.op()) && b.op() != BinaryOp::kNe) {
        const Expr* col_side = &b.left();
        const Expr* val_side = &b.right();
        BinaryOp op = b.op();
        if (col_side->kind() != Expr::Kind::kColumnRef) {
          std::swap(col_side, val_side);
          op = SwapComparison(op);
        }
        if (col_side->kind() != Expr::Kind::kColumnRef) return none;
        if (val_side->kind() != Expr::Kind::kLiteral &&
            val_side->kind() != Expr::Kind::kParameter) {
          return none;
        }
        const auto& ref = static_cast<const ColumnRefExpr&>(*col_side);
        if (!ref.qualifier().empty() &&
            !EqualsIgnoreCase(ref.qualifier(), rel.binding_name)) {
          return none;
        }
        auto col = rel.schema.FindColumn(ref.name());
        if (!col) return none;
        auto value = Eval(*val_side, const_scope);
        if (!value.ok() || value.ValueOrDie().is_null()) return none;
        const Value& v = value.ValueOrDie();
        ConjGroup g;
        switch (op) {
          case BinaryOp::kEq:
            g.equals.push_back({*col, v});
            break;
          case BinaryOp::kLt:
            g.uppers.push_back({*col, Bound{v, false}});
            break;
          case BinaryOp::kLe:
            g.uppers.push_back({*col, Bound{v, true}});
            break;
          case BinaryOp::kGt:
            g.lowers.push_back({*col, Bound{v, false}});
            break;
          case BinaryOp::kGe:
            g.lowers.push_back({*col, Bound{v, true}});
            break;
          default:
            return none;
        }
        ProbeSet out;
        out.indexable = true;
        out.groups.push_back(std::move(g));
        return out;
      }
      return none;
    }
    if (e.kind() == Expr::Kind::kInList) {
      // `col In (c1, ..., ck)` becomes k equality probes — the shape the
      // Figure 13 qualification fan-out produces.
      const auto& in = static_cast<const InListExpr&>(e);
      if (in.needle().kind() != Expr::Kind::kColumnRef) return none;
      const auto& ref = static_cast<const ColumnRefExpr&>(in.needle());
      if (!ref.qualifier().empty() &&
          !EqualsIgnoreCase(ref.qualifier(), rel.binding_name)) {
        return none;
      }
      auto col = rel.schema.FindColumn(ref.name());
      if (!col) return none;
      if (in.haystack().size() > kMaxProbeGroups) return none;
      ProbeSet out;
      out.indexable = true;
      for (const auto& item : in.haystack()) {
        if (item->kind() != Expr::Kind::kLiteral &&
            item->kind() != Expr::Kind::kParameter) {
          return none;
        }
        auto value = Eval(*item, const_scope);
        if (!value.ok()) return none;
        // A null element never equates to a non-null needle; skip it.
        if (value.ValueOrDie().is_null()) continue;
        ConjGroup g;
        g.equals.push_back({*col, value.ValueOrDie()});
        out.groups.push_back(std::move(g));
      }
      if (out.groups.empty()) return none;
      return out;
    }
    return none;
  }

  /// The access path chosen for a single-table scan.
  struct IndexChoice {
    const OrderedIndex* index;
    IndexProbe probe;
  };

  /// Row ids to visit for a single-table scan, using the best ordered
  /// index when allowed; nullopt means "full scan". A single probe keeps
  /// the index's key order; a multi-probe union is deduped and restored
  /// to slot order (the order a full scan would visit).
  std::optional<std::vector<RowId>> TryIndexAccess(const Relation& rel,
                                                   const Expr* where,
                                                   const Scope& const_scope) {
    std::optional<std::vector<IndexChoice>> choices =
        ChooseMultiIndexAccess(rel, where, const_scope);
    if (!choices) return std::nullopt;
    std::vector<RowId> rids;
    for (const IndexChoice& choice : *choices) {
      ++exec_.stats_.index_probes;
      std::vector<RowId> part = choice.index->Scan(choice.probe);
      if (rids.empty()) {
        rids = std::move(part);
      } else {
        rids.insert(rids.end(), part.begin(), part.end());
      }
    }
    if (choices->size() > 1) {
      std::sort(rids.begin(), rids.end());
      rids.erase(std::unique(rids.begin(), rids.end()), rids.end());
    }
    exec_.stats_.rows_from_index += rids.size();
    return rids;
  }

  /// Access-path selection only (shared by execution and Explain): one
  /// IndexChoice per probe group, or nullopt for a full scan. Every
  /// group must be servable by some index — the union of probes has to
  /// cover every disjunct or it is not a superset of the WHERE result.
  std::optional<std::vector<IndexChoice>> ChooseMultiIndexAccess(
      const Relation& rel, const Expr* where, const Scope& const_scope) {
    if (!exec_.options_.use_indexes || rel.table == nullptr ||
        where == nullptr) {
      return std::nullopt;
    }
    ProbeSet ps = NormalizeProbes(*where, rel, const_scope);
    if (!ps.indexable || ps.groups.empty()) return std::nullopt;
    std::vector<IndexChoice> choices;
    choices.reserve(ps.groups.size());
    for (const ConjGroup& g : ps.groups) {
      std::optional<IndexChoice> c = ChooseIndexForGroup(rel, g);
      if (!c) return std::nullopt;
      // Distinct conjunct groups often lower to the same physical probe
      // (e.g. the inclusive/exclusive bound disjuncts of an interval
      // check differ only in residual columns). Scanning it twice would
      // double the fetched rows just to dedup them afterwards.
      bool duplicate = false;
      for (const IndexChoice& seen : choices) {
        if (SameChoice(seen, *c)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) choices.push_back(std::move(*c));
    }
    return choices;
  }

  static bool SameBound(const std::optional<Bound>& a,
                        const std::optional<Bound>& b) {
    if (a.has_value() != b.has_value()) return false;
    if (!a) return true;
    return a->inclusive == b->inclusive && !(a->value < b->value) &&
           !(b->value < a->value);
  }

  static bool SameChoice(const IndexChoice& a, const IndexChoice& b) {
    if (a.index != b.index) return false;
    if (a.probe.equals.size() != b.probe.equals.size()) return false;
    for (size_t i = 0; i < a.probe.equals.size(); ++i) {
      if (a.probe.equals[i] < b.probe.equals[i] ||
          b.probe.equals[i] < a.probe.equals[i]) {
        return false;
      }
    }
    return SameBound(a.probe.lower, b.probe.lower) &&
           SameBound(a.probe.upper, b.probe.upper);
  }

  /// Picks the best ordered index and probe for one conjunct group.
  std::optional<IndexChoice> ChooseIndexForGroup(const Relation& rel,
                                                 const ConjGroup& group) {
    const auto& equals = group.equals;
    const auto& lowers = group.lowers;
    const auto& uppers = group.uppers;
    if (equals.empty() && lowers.empty() && uppers.empty()) {
      return std::nullopt;
    }
    std::vector<size_t> eq_cols;
    for (const auto& [col, v] : equals) eq_cols.push_back(col);

    // Candidate range columns: any column carrying a bound.
    std::vector<size_t> range_candidates;
    for (const auto& [col, b] : lowers) range_candidates.push_back(col);
    for (const auto& [col, b] : uppers) range_candidates.push_back(col);
    std::sort(range_candidates.begin(), range_candidates.end());
    range_candidates.erase(
        std::unique(range_candidates.begin(), range_candidates.end()),
        range_candidates.end());

    const OrderedIndex* best = nullptr;
    std::optional<size_t> best_range;
    {
      // Prefer an index that can take a range column after the equality
      // prefix; fall back to equality-only.
      for (size_t rc : range_candidates) {
        const OrderedIndex* idx = rel.table->FindBestOrderedIndex(eq_cols, rc);
        if (idx != nullptr) {
          // Only pick it over `best` if it actually uses the range column.
          best = idx;
          best_range = rc;
          break;
        }
      }
      if (best == nullptr) {
        best = rel.table->FindBestOrderedIndex(eq_cols, std::nullopt);
        best_range = std::nullopt;
      }
    }
    if (best == nullptr) return std::nullopt;

    // Build the probe along the index's key order.
    IndexProbe probe;
    const auto& key_cols = best->key_columns();
    size_t k = 0;
    for (; k < key_cols.size(); ++k) {
      auto it = std::find_if(equals.begin(), equals.end(),
                             [&](const auto& p) { return p.first == key_cols[k]; });
      if (it == equals.end()) break;
      probe.equals.push_back(it->second);
    }
    if (probe.equals.empty() && k < key_cols.size()) {
      // No equality prefix: a pure range on the first key column is still
      // usable; otherwise the index is useless.
      bool has_bound_on_first =
          std::any_of(lowers.begin(), lowers.end(),
                      [&](const auto& p) { return p.first == key_cols[0]; }) ||
          std::any_of(uppers.begin(), uppers.end(),
                      [&](const auto& p) { return p.first == key_cols[0]; });
      if (!has_bound_on_first) return std::nullopt;
    }
    if (k < key_cols.size()) {
      size_t range_col = key_cols[k];
      // Tightest bounds on the range column.
      for (const auto& [col, b] : lowers) {
        if (col != range_col) continue;
        if (!probe.lower || probe.lower->value < b.value ||
            (probe.lower->value == b.value && !b.inclusive)) {
          probe.lower = b;
        }
      }
      for (const auto& [col, b] : uppers) {
        if (col != range_col) continue;
        if (!probe.upper || b.value < probe.upper->value ||
            (probe.upper->value == b.value && !b.inclusive)) {
          probe.upper = b;
        }
      }
    }
    return IndexChoice{best, std::move(probe)};
  }

  // ---- Explain ---------------------------------------------------------------

 public:
  Result<std::string> Explain(const SelectStatement& stmt, const Scope* outer,
                              const ParamMap& params, int depth) {
    std::string pad(static_cast<size_t>(depth) * 2, ' ');
    std::string out;
    // Projection header.
    out += pad + "Select";
    if (stmt.distinct) out += " Distinct";
    {
      std::string items;
      for (const auto& item : stmt.items) {
        if (!items.empty()) items += ", ";
        items += item.ToString();
      }
      out += " [" + items + "]\n";
    }

    bool has_aggregate =
        !stmt.group_by.empty() ||
        std::any_of(stmt.items.begin(), stmt.items.end(), [](const auto& it) {
          return it.aggregate != AggregateFn::kNone;
        });
    if (has_aggregate) {
      out += pad + "  Aggregate";
      if (!stmt.group_by.empty()) {
        out += " group by " + Join(stmt.group_by, ", ");
      }
      out += "\n";
    }
    if (!stmt.order_by.empty()) {
      std::string keys;
      for (const auto& k : stmt.order_by) {
        if (!keys.empty()) keys += ", ";
        keys += k.expr->ToString();
        if (k.descending) keys += " Desc";
      }
      out += pad + "  Sort [" + keys + "]\n";
    }
    if (stmt.limit) {
      out += pad + "  Limit " + std::to_string(*stmt.limit) + "\n";
    }
    if (stmt.where) {
      out += pad + "  Filter: " + stmt.where->ToString() + "\n";
    }
    if (stmt.connect_by) {
      out += pad + "  ConnectBy start with " +
             stmt.connect_by->start_with->ToString() + " connect by " +
             stmt.connect_by->connect->ToString() + "\n";
    }
    Scope const_scope;
    const_scope.parent = outer;
    const_scope.params = &params;
    std::vector<Relation> rels;
    rels.reserve(stmt.from.size());
    for (const TableRef& ref : stmt.from) {
      WFRM_ASSIGN_OR_RETURN(Relation rel, ResolveRelation(ref, outer, params));
      rels.push_back(std::move(rel));
    }
    if (stmt.from.size() > 1) {
      std::vector<std::pair<size_t, size_t>> equi;
      if (rels.size() == 2 && stmt.where != nullptr) {
        CollectEquiJoinKeys(*stmt.where, rels, &equi);
      }
      if (equi.empty()) {
        out += pad + "  NestedLoopJoin\n";
      } else {
        out += pad + "  HashJoin (" + std::to_string(equi.size()) +
               " key(s))\n";
      }
    }
    for (size_t ri = 0; ri < rels.size(); ++ri) {
      const TableRef& ref = stmt.from[ri];
      const Relation& rel = rels[ri];
      std::string line = pad + "  ";
      if (rel.table == nullptr) {
        line += "View " + ref.name + " (materialized, " +
                std::to_string(rel.materialized->size()) + " rows)";
      } else {
        std::optional<std::vector<IndexChoice>> choices;
        if (stmt.from.size() == 1 && !stmt.connect_by) {
          choices = ChooseMultiIndexAccess(rel, stmt.where.get(), const_scope);
        }
        if (choices && choices->size() == 1) {
          const IndexChoice& choice = choices->front();
          line += "IndexScan " + ref.name + " using " +
                  choice.index->name() + " (eq prefix: " +
                  std::to_string(choice.probe.equals.size());
          if (choice.probe.lower || choice.probe.upper) {
            line += ", range on next column";
          }
          line += ")";
        } else if (choices) {
          line += "MultiIndexScan " + ref.name + " using " +
                  choices->front().index->name() + " (" +
                  std::to_string(choices->size()) + " probes)";
        } else {
          line += "SeqScan " + ref.name + " (" +
                  std::to_string(rel.table->num_rows()) + " rows)";
        }
      }
      if (!ref.alias.empty()) line += " as " + ref.alias;
      out += line + "\n";
    }

    if (stmt.union_next) {
      out += pad + "Union\n";
      WFRM_ASSIGN_OR_RETURN(
          std::string rest, Explain(*stmt.union_next, outer, params, depth));
      out += rest;
    }
    return out;
  }

 private:
  // ---- Statement execution -------------------------------------------------

  Result<ResultSet> ExecuteOne(const SelectStatement& stmt, const Scope* outer,
                               const ParamMap& params) {
    if (stmt.from.empty()) {
      return Status::ExecutionError("statement has no From clause");
    }
    std::vector<Relation> relations;
    relations.reserve(stmt.from.size());
    for (const TableRef& ref : stmt.from) {
      WFRM_ASSIGN_OR_RETURN(Relation rel, ResolveRelation(ref, outer, params));
      relations.push_back(std::move(rel));
    }

    // Scope used for evaluating constant-only subexpressions (access path).
    Scope const_scope;
    const_scope.parent = outer;
    const_scope.params = &params;

    // Enumerate joined rows (or hierarchy rows for CONNECT BY).
    std::vector<std::vector<const Row*>> joined;
    std::vector<int64_t> levels;  // Parallel to joined when connect_by.

    if (stmt.connect_by) {
      if (relations.size() != 1) {
        return Status::ExecutionError(
            "Connect By requires a single From relation");
      }
      WFRM_RETURN_NOT_OK(
          RunConnectBy(stmt, relations[0], outer, params, &joined, &levels));
    } else {
      WFRM_RETURN_NOT_OK(
          JoinRelations(stmt, relations, outer, params, &joined));
    }

    // Apply WHERE (for connect-by, WHERE filters the hierarchy output and
    // may reference LEVEL; for joins it was already applied inside
    // JoinRelations for efficiency -- re-checking is harmless and keeps
    // the logic uniform, so JoinRelations leaves filtering to us when
    // connect_by is absent only for the index/join fast path).

    // Build output.
    bool has_aggregate =
        !stmt.group_by.empty() ||
        std::any_of(stmt.items.begin(), stmt.items.end(), [](const auto& it) {
          return it.aggregate != AggregateFn::kNone;
        });

    if (has_aggregate) {
      return Aggregate(stmt, relations, joined, levels, outer, params);
    }
    if (stmt.having) {
      return Status::ExecutionError(
          "Having requires Group By or aggregates");
    }
    return Project(stmt, relations, joined, levels, outer, params);
  }

  /// Nested-loop join with WHERE applied at the innermost level; uses an
  /// index access path for the first (often only) relation.
  Status JoinRelations(const SelectStatement& stmt,
                       const std::vector<Relation>& relations,
                       const Scope* outer, const ParamMap& params,
                       std::vector<std::vector<const Row*>>* joined) {
    Scope const_scope;
    const_scope.parent = outer;
    const_scope.params = &params;

    // Candidate row lists per relation.
    std::vector<std::vector<const Row*>> candidates(relations.size());
    for (size_t i = 0; i < relations.size(); ++i) {
      const Relation& rel = relations[i];
      std::optional<std::vector<RowId>> rids;
      if (i == 0 && relations.size() == 1) {
        rids = TryIndexAccess(rel, stmt.where.get(), const_scope);
      }
      if (rids) {
        for (RowId rid : *rids) {
          if (rel.table->IsLive(rid)) {
            candidates[i].push_back(&rel.table->row(rid));
          }
        }
      } else if (rel.table != nullptr) {
        rel.table->ForEach([&](RowId, const Row& row) {
          candidates[i].push_back(&row);
          ++exec_.stats_.rows_scanned;
        });
      } else {
        for (const Row& row : *rel.materialized) {
          candidates[i].push_back(&row);
          ++exec_.stats_.rows_scanned;
        }
      }
    }

    // Two-relation equi-joins (the Figure 15 Relevant_Policies ⋈
    // Relevant_Filter shape) build a key map over the inner side instead
    // of enumerating the cross product.
    if (relations.size() == 2 && stmt.where != nullptr) {
      std::vector<std::pair<size_t, size_t>> keys;
      CollectEquiJoinKeys(*stmt.where, relations, &keys);
      if (!keys.empty()) {
        return HashJoin(stmt, relations, candidates, keys, outer, params,
                        joined);
      }
    }

    // Depth-first enumeration of the cross product.
    std::vector<const Row*> current(relations.size(), nullptr);
    Status st = Status::OK();
    std::function<void(size_t)> recurse = [&](size_t depth) {
      if (!st.ok()) return;
      if (depth == relations.size()) {
        if (stmt.where) {
          Scope scope;
          scope.parent = outer;
          scope.params = &params;
          for (size_t i = 0; i < relations.size(); ++i) {
            scope.bindings.push_back(Binding{&relations[i].binding_name,
                                             &relations[i].schema, current[i]});
          }
          auto v = Eval(*stmt.where, scope);
          if (!v.ok()) {
            st = v.status();
            return;
          }
          if (!IsTrue(v.ValueOrDie())) return;
        }
        ++exec_.stats_.rows_filtered;
        joined->push_back(current);
        return;
      }
      for (const Row* row : candidates[depth]) {
        current[depth] = row;
        recurse(depth + 1);
        if (!st.ok()) return;
      }
    };
    recurse(0);
    return st;
  }

  /// Collects top-level ANDed `a.col = b.col` conjuncts joining the two
  /// relations, as (column in relations[0], column in relations[1])
  /// pairs. Conjuncts that do not fit the shape are simply not collected
  /// — they stay covered by the residual WHERE evaluation.
  void CollectEquiJoinKeys(const Expr& e,
                           const std::vector<Relation>& relations,
                           std::vector<std::pair<size_t, size_t>>* keys) {
    if (e.kind() != Expr::Kind::kBinary) return;
    const auto& b = static_cast<const BinaryExpr&>(e);
    if (b.op() == BinaryOp::kAnd) {
      CollectEquiJoinKeys(b.left(), relations, keys);
      CollectEquiJoinKeys(b.right(), relations, keys);
      return;
    }
    if (b.op() != BinaryOp::kEq) return;
    if (b.left().kind() != Expr::Kind::kColumnRef ||
        b.right().kind() != Expr::Kind::kColumnRef) {
      return;
    }
    // Resolve a column ref to (relation index, column index); fails on
    // ambiguity or no match.
    auto resolve = [&](const ColumnRefExpr& ref)
        -> std::optional<std::pair<size_t, size_t>> {
      std::optional<std::pair<size_t, size_t>> found;
      for (size_t r = 0; r < relations.size(); ++r) {
        if (!ref.qualifier().empty() &&
            !EqualsIgnoreCase(ref.qualifier(), relations[r].binding_name)) {
          continue;
        }
        if (auto col = relations[r].schema.FindColumn(ref.name())) {
          if (found) return std::nullopt;  // Ambiguous.
          found = {r, *col};
        }
      }
      return found;
    };
    auto l = resolve(static_cast<const ColumnRefExpr&>(b.left()));
    auto r = resolve(static_cast<const ColumnRefExpr&>(b.right()));
    if (!l || !r) return;
    if (l->first == 0 && r->first == 1) {
      keys->push_back({l->second, r->second});
    } else if (l->first == 1 && r->first == 0) {
      keys->push_back({r->second, l->second});
    }
  }

  /// Equi-join of two relations: builds a key → rows map over the inner
  /// (second) relation, probes it per outer row, and re-checks the full
  /// WHERE on every matched pair (3VL-safe; non-equi residual conjuncts
  /// are handled there). Rows with a null key component are skipped on
  /// both sides — an equality with Null is never true. Emission order
  /// matches the nested-loop enumeration: outer rows in candidate order,
  /// matches in inner candidate order.
  Status HashJoin(const SelectStatement& stmt,
                  const std::vector<Relation>& relations,
                  const std::vector<std::vector<const Row*>>& candidates,
                  const std::vector<std::pair<size_t, size_t>>& keys,
                  const Scope* outer, const ParamMap& params,
                  std::vector<std::vector<const Row*>>* joined) {
    std::map<IndexKey, std::vector<const Row*>, IndexKeyLess> inner;
    for (const Row* row : candidates[1]) {
      IndexKey key;
      key.reserve(keys.size());
      bool has_null = false;
      for (const auto& [lcol, rcol] : keys) {
        const Value& v = (*row)[rcol];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (has_null) continue;
      inner[std::move(key)].push_back(row);
    }

    Scope scope;
    scope.parent = outer;
    scope.params = &params;
    scope.bindings.push_back(Binding{&relations[0].binding_name,
                                     &relations[0].schema, nullptr});
    scope.bindings.push_back(Binding{&relations[1].binding_name,
                                     &relations[1].schema, nullptr});
    for (const Row* lrow : candidates[0]) {
      IndexKey key;
      key.reserve(keys.size());
      bool has_null = false;
      for (const auto& [lcol, rcol] : keys) {
        const Value& v = (*lrow)[lcol];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (has_null) continue;
      auto it = inner.find(key);
      if (it == inner.end()) continue;
      for (const Row* rrow : it->second) {
        scope.bindings[0].row = lrow;
        scope.bindings[1].row = rrow;
        WFRM_ASSIGN_OR_RETURN(Value v, Eval(*stmt.where, scope));
        if (!IsTrue(v)) continue;
        ++exec_.stats_.rows_filtered;
        joined->push_back({lrow, rrow});
      }
    }
    return Status::OK();
  }

  /// START WITH / CONNECT BY evaluation: breadth-first expansion from the
  /// START WITH roots, joining each frontier row to its children through
  /// the CONNECT BY condition with PRIOR bound to the parent.
  Status RunConnectBy(const SelectStatement& stmt, const Relation& rel,
                      const Scope* outer, const ParamMap& params,
                      std::vector<std::vector<const Row*>>* joined,
                      std::vector<int64_t>* levels) {
    const ConnectByClause& cb = *stmt.connect_by;
    // Materialize candidate rows once.
    std::vector<const Row*> all;
    if (rel.table != nullptr) {
      rel.table->ForEach([&](RowId, const Row& row) {
        all.push_back(&row);
        ++exec_.stats_.rows_scanned;
      });
    } else {
      for (const Row& row : *rel.materialized) all.push_back(&row);
    }

    std::deque<std::pair<const Row*, int64_t>> frontier;
    for (const Row* row : all) {
      Scope scope;
      scope.parent = outer;
      scope.params = &params;
      scope.bindings.push_back(
          Binding{&rel.binding_name, &rel.schema, row});
      scope.level = 1;
      WFRM_ASSIGN_OR_RETURN(Value v, Eval(*cb.start_with, scope));
      if (IsTrue(v)) frontier.push_back({row, 1});
    }

    while (!frontier.empty()) {
      auto [row, level] = frontier.front();
      frontier.pop_front();
      if (static_cast<size_t>(level) > exec_.options_.max_connect_by_depth) {
        return Status::ExecutionError(
            "Connect By hierarchy exceeded depth limit (" +
            std::to_string(exec_.options_.max_connect_by_depth) +
            "); possible loop in the data");
      }
      // Emit, subject to WHERE (checked later by caller? We filter here
      // so LEVEL is in scope).
      bool keep = true;
      if (stmt.where) {
        Scope scope;
        scope.parent = outer;
        scope.params = &params;
        scope.bindings.push_back(Binding{&rel.binding_name, &rel.schema, row});
        scope.level = level;
        WFRM_ASSIGN_OR_RETURN(Value v, Eval(*stmt.where, scope));
        keep = IsTrue(v);
      }
      if (keep) {
        ++exec_.stats_.rows_filtered;
        joined->push_back({row});
        levels->push_back(level);
      }
      // Expand children.
      for (const Row* child : all) {
        Scope scope;
        scope.parent = outer;
        scope.params = &params;
        scope.bindings.push_back(
            Binding{&rel.binding_name, &rel.schema, child});
        scope.level = level + 1;
        scope.prior_row = row;
        WFRM_ASSIGN_OR_RETURN(Value v, Eval(*cb.connect, scope));
        if (IsTrue(v)) frontier.push_back({child, level + 1});
      }
    }
    return Status::OK();
  }

  /// Output schema + row synthesis for the non-aggregate case.
  Result<ResultSet> Project(const SelectStatement& stmt,
                            const std::vector<Relation>& relations,
                            const std::vector<std::vector<const Row*>>& joined,
                            const std::vector<int64_t>& levels,
                            const Scope* outer, const ParamMap& params) {
    ResultSet rs;
    // Expand the select list: star becomes every column of every relation.
    struct OutCol {
      std::string name;
      const Expr* expr;          // Null for star-expanded columns.
      size_t rel_index = 0;      // For star-expanded columns.
      size_t col_index = 0;
    };
    std::vector<OutCol> out_cols;
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        for (size_t r = 0; r < relations.size(); ++r) {
          for (size_t c = 0; c < relations[r].schema.num_columns(); ++c) {
            out_cols.push_back(
                OutCol{relations[r].schema.column(c).name, nullptr, r, c});
          }
        }
      } else {
        std::string name = item.alias;
        if (name.empty()) {
          if (item.expr->kind() == Expr::Kind::kColumnRef) {
            name = static_cast<const ColumnRefExpr*>(item.expr.get())->name();
          } else {
            name = item.expr->ToString();
          }
        }
        out_cols.push_back(OutCol{std::move(name), item.expr.get(), 0, 0});
      }
    }

    rs.rows.reserve(joined.size());
    for (size_t j = 0; j < joined.size(); ++j) {
      Scope scope;
      scope.parent = outer;
      scope.params = &params;
      for (size_t i = 0; i < relations.size(); ++i) {
        scope.bindings.push_back(Binding{&relations[i].binding_name,
                                         &relations[i].schema, joined[j][i]});
      }
      if (!levels.empty()) scope.level = levels[j];
      Row out;
      out.reserve(out_cols.size());
      for (const OutCol& oc : out_cols) {
        if (oc.expr == nullptr) {
          out.push_back((*joined[j][oc.rel_index])[oc.col_index]);
        } else {
          WFRM_ASSIGN_OR_RETURN(Value v, Eval(*oc.expr, scope));
          out.push_back(std::move(v));
        }
      }
      rs.rows.push_back(std::move(out));
    }

    rs.schema = InferSchema(out_cols.size(), rs.rows,
                            [&](size_t i) { return out_cols[i].name; });
    // Star-expanded columns can carry their true declared types.
    {
      size_t i = 0;
      Schema fixed;
      for (const OutCol& oc : out_cols) {
        if (oc.expr == nullptr) {
          fixed.AddColumn({oc.name,
                           relations[oc.rel_index].schema.column(oc.col_index)
                               .type});
        } else {
          fixed.AddColumn(rs.schema.column(i));
        }
        ++i;
      }
      rs.schema = std::move(fixed);
    }

    // ORDER BY for plain selects: keys resolve against the output row
    // first (aliases), then fall back to the source row, so both
    // `Order By alias` and `Order By unprojected_column` work.
    if (!stmt.order_by.empty() && stmt.union_next == nullptr) {
      static const std::string kRowBinding = "";
      std::vector<std::pair<std::vector<Value>, size_t>> keyed;
      keyed.reserve(rs.rows.size());
      for (size_t j = 0; j < rs.rows.size(); ++j) {
        Scope source;
        source.parent = outer;
        source.params = &params;
        for (size_t i = 0; i < relations.size(); ++i) {
          source.bindings.push_back(Binding{&relations[i].binding_name,
                                            &relations[i].schema,
                                            joined[j][i]});
        }
        if (!levels.empty()) source.level = levels[j];
        Scope output;
        output.parent = &source;
        output.bindings.push_back(
            Binding{&kRowBinding, &rs.schema, &rs.rows[j]});
        std::vector<Value> tuple;
        tuple.reserve(stmt.order_by.size());
        for (const OrderKey& key : stmt.order_by) {
          WFRM_ASSIGN_OR_RETURN(Value v, Eval(*key.expr, output));
          tuple.push_back(std::move(v));
        }
        keyed.push_back({std::move(tuple), j});
      }
      SortKeyed(stmt.order_by, &keyed, &rs);
    }
    return rs;
  }

  /// GROUP BY + aggregate evaluation.
  Result<ResultSet> Aggregate(const SelectStatement& stmt,
                              const std::vector<Relation>& relations,
                              const std::vector<std::vector<const Row*>>& joined,
                              const std::vector<int64_t>& levels,
                              const Scope* outer, const ParamMap& params) {
    // Validate select items.
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        return Status::ExecutionError("'*' not allowed with Group By");
      }
    }

    struct Accumulator {
      int64_t count = 0;
      bool any = false;
      Value min, max;
      double sum = 0;
      bool sum_is_int = true;
      int64_t isum = 0;
    };

    auto make_scope = [&](size_t j, Scope* scope) {
      scope->parent = outer;
      scope->params = &params;
      for (size_t i = 0; i < relations.size(); ++i) {
        scope->bindings.push_back(Binding{&relations[i].binding_name,
                                          &relations[i].schema, joined[j][i]});
      }
      if (!levels.empty()) scope->level = levels[j];
    };

    // Group key: values of the group_by columns.
    std::map<std::vector<Value>, std::vector<size_t>> groups;
    for (size_t j = 0; j < joined.size(); ++j) {
      Scope scope;
      make_scope(j, &scope);
      std::vector<Value> key;
      key.reserve(stmt.group_by.size());
      for (const std::string& col : stmt.group_by) {
        ColumnRefExpr ref("", col);
        WFRM_ASSIGN_OR_RETURN(Value v, EvalColumn(ref, scope));
        key.push_back(std::move(v));
      }
      groups[key].push_back(j);
    }
    // A global aggregate with no rows still produces one (empty) group.
    if (groups.empty() && stmt.group_by.empty()) {
      groups[{}] = {};
    }

    ResultSet rs;
    for (const auto& [key, row_indexes] : groups) {
      Row out;
      for (const SelectItem& item : stmt.items) {
        if (item.aggregate == AggregateFn::kNone) {
          // Must be (functionally) a group key: evaluate on the first row.
          if (row_indexes.empty()) {
            out.push_back(Value::Null());
            continue;
          }
          Scope scope;
          make_scope(row_indexes[0], &scope);
          WFRM_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, scope));
          out.push_back(std::move(v));
          continue;
        }
        Accumulator acc;
        for (size_t j : row_indexes) {
          if (item.aggregate == AggregateFn::kCountStar) {
            ++acc.count;
            continue;
          }
          Scope scope;
          make_scope(j, &scope);
          WFRM_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, scope));
          if (v.is_null()) continue;
          ++acc.count;
          if (!acc.any) {
            acc.min = v;
            acc.max = v;
            acc.any = true;
          } else {
            WFRM_ASSIGN_OR_RETURN(int cmin, v.Compare(acc.min));
            if (cmin < 0) acc.min = v;
            WFRM_ASSIGN_OR_RETURN(int cmax, v.Compare(acc.max));
            if (cmax > 0) acc.max = v;
          }
          if (v.is_numeric()) {
            acc.sum += v.AsDouble();
            if (v.is_int()) {
              acc.isum += v.int_value();
            } else {
              acc.sum_is_int = false;
            }
          } else if (item.aggregate == AggregateFn::kSum ||
                     item.aggregate == AggregateFn::kAvg) {
            return Status::TypeError("Sum/Avg over non-numeric value " +
                                     v.ToString());
          }
        }
        switch (item.aggregate) {
          case AggregateFn::kCountStar:
          case AggregateFn::kCount:
            out.push_back(Value::Int(acc.count));
            break;
          case AggregateFn::kSum:
            if (acc.count == 0) {
              out.push_back(Value::Null());
            } else {
              out.push_back(acc.sum_is_int ? Value::Int(acc.isum)
                                           : Value::Double(acc.sum));
            }
            break;
          case AggregateFn::kAvg:
            out.push_back(acc.count == 0
                              ? Value::Null()
                              : Value::Double(acc.sum / acc.count));
            break;
          case AggregateFn::kMin:
            out.push_back(acc.any ? acc.min : Value::Null());
            break;
          case AggregateFn::kMax:
            out.push_back(acc.any ? acc.max : Value::Null());
            break;
          case AggregateFn::kNone:
            break;
        }
      }
      rs.rows.push_back(std::move(out));
    }

    rs.schema = InferSchema(stmt.items.size(), rs.rows, [&](size_t i) {
      const SelectItem& item = stmt.items[i];
      if (!item.alias.empty()) return item.alias;
      if (item.aggregate != AggregateFn::kNone) return item.ToString();
      if (item.expr && item.expr->kind() == Expr::Kind::kColumnRef) {
        return static_cast<const ColumnRefExpr*>(item.expr.get())->name();
      }
      return item.expr ? item.expr->ToString() : std::string("?");
    });
    // HAVING filters the aggregate output rows (select aliases and group
    // keys are in scope).
    if (stmt.having) {
      static const std::string kRowBinding = "";
      std::vector<Row> kept;
      kept.reserve(rs.rows.size());
      for (Row& row : rs.rows) {
        Scope scope;
        scope.parent = outer;
        scope.params = &params;
        scope.bindings.push_back(Binding{&kRowBinding, &rs.schema, &row});
        WFRM_ASSIGN_OR_RETURN(Value v, Eval(*stmt.having, scope));
        if (IsTrue(v)) kept.push_back(std::move(row));
      }
      rs.rows = std::move(kept);
    }
    // ORDER BY over aggregate output resolves against the output row
    // (aliases and group keys).
    if (!stmt.order_by.empty() && stmt.union_next == nullptr) {
      WFRM_RETURN_NOT_OK(Sort(stmt.order_by, outer, params, &rs));
    }
    return rs;
  }

  template <typename NameFn>
  Schema InferSchema(size_t num_cols, const std::vector<Row>& rows,
                     NameFn name_of) {
    Schema schema;
    for (size_t i = 0; i < num_cols; ++i) {
      DataType type = DataType::kString;
      for (const Row& row : rows) {
        if (i < row.size() && !row[i].is_null()) {
          type = row[i].type();
          break;
        }
      }
      schema.AddColumn({name_of(i), type});
    }
    return schema;
  }

  void Dedup(ResultSet* rs) {
    std::set<std::vector<Value>> seen;
    std::vector<Row> unique;
    unique.reserve(rs->rows.size());
    for (Row& row : rs->rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    rs->rows = std::move(unique);
  }

  const Executor& exec_;
  const Database& db_;
  /// Per-execution memo of materialized view snapshots (top-level,
  /// uncorrelated references only). One Impl spans one statement, so the
  /// memo can never serve stale rows across statements.
  struct ViewSnapshot {
    Schema schema;
    std::shared_ptr<const std::vector<Row>> rows;
  };
  std::unordered_map<std::string, ViewSnapshot, CaseInsensitiveHash,
                     CaseInsensitiveEq>
      view_memo_;
};

Result<ResultSet> Executor::Query(std::string_view sql,
                                  const ParamMap& params) const {
  WFRM_ASSIGN_OR_RETURN(SelectPtr stmt, SqlParser::ParseSelect(sql));
  return Execute(*stmt, params);
}

Result<ResultSet> Executor::Execute(const SelectStatement& stmt,
                                    const ParamMap& params) const {
  Impl impl(*this);
  return impl.Execute(stmt, nullptr, params);
}

Result<std::shared_ptr<const PreparedQuery>> Executor::Prepare(
    std::string_view sql) const {
  // Record the catalog version BEFORE validation: if a concurrent DDL
  // lands mid-prepare, the plan is stamped stale and a version-checking
  // cache will re-prepare rather than serve it.
  const uint64_t version = db_->catalog_version();
  WFRM_ASSIGN_OR_RETURN(SelectPtr stmt, SqlParser::ParseSelect(sql));
  for (const SelectStatement* s = stmt.get(); s != nullptr;
       s = s->union_next.get()) {
    for (const TableRef& ref : s->from) {
      if (!db_->HasRelation(ref.name)) {
        return Status::NotFound("relation '" + ref.name +
                                "' does not exist");
      }
    }
  }
  return std::make_shared<const PreparedQuery>(std::string(sql),
                                               std::move(stmt), version);
}

Result<ResultSet> Executor::Execute(const PreparedQuery& prepared,
                                    const ParamMap& params) const {
  Impl impl(*this);
  return impl.Execute(prepared.stmt(), nullptr, params);
}

Result<std::string> Executor::Explain(const SelectStatement& stmt,
                                      const ParamMap& params) const {
  Impl impl(*this);
  return impl.Explain(stmt, nullptr, params, 0);
}

Result<Value> Executor::EvalWithRow(const Expr& expr, const Schema& schema,
                                    const Row& row,
                                    const ParamMap& params) const {
  Impl impl(*this);
  Scope scope;
  scope.params = &params;
  static const std::string kRowBinding = "";
  Binding b{&kRowBinding, &schema, &row};
  scope.bindings.push_back(b);
  return impl.Eval(expr, scope);
}

Result<Value> Executor::EvalConst(const Expr& expr,
                                  const ParamMap& params) const {
  Impl impl(*this);
  Scope scope;
  scope.params = &params;
  return impl.Eval(expr, scope);
}

}  // namespace wfrm::rel
