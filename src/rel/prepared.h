#ifndef WFRM_REL_PREPARED_H_
#define WFRM_REL_PREPARED_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "rel/sql_ast.h"

namespace wfrm::rel {

class Executor;

/// A SELECT statement planned once and executed many times: the parsed
/// AST plus the catalog version it was validated against. Parameters
/// (`[Name]`) are bound at execution time, so one prepared query serves
/// every enforcement of the same shape — the Figure 13/14/15 view +
/// union query parses once per shape instead of once per call.
///
/// Immutable after construction; share freely across threads.
class PreparedQuery {
 public:
  PreparedQuery(std::string sql, SelectPtr stmt, uint64_t catalog_version)
      : sql_(std::move(sql)),
        stmt_(std::move(stmt)),
        catalog_version_(catalog_version) {}

  PreparedQuery(const PreparedQuery&) = delete;
  PreparedQuery& operator=(const PreparedQuery&) = delete;

  const std::string& sql() const { return sql_; }
  const SelectStatement& stmt() const { return *stmt_; }

  /// Database::catalog_version() at preparation time. A mismatch means a
  /// relation was created/replaced/dropped since: name resolution may
  /// now bind differently, so cached plans must be re-prepared.
  uint64_t catalog_version() const { return catalog_version_; }

 private:
  std::string sql_;
  SelectPtr stmt_;
  uint64_t catalog_version_;
};

/// Outcome of one PlanCache probe.
enum class PlanLookup {
  kHit,          // Entry present at the current catalog version.
  kMiss,         // No entry under the SQL text.
  kInvalidated,  // Entry present but planned against an older catalog.
};

/// Bounded LRU of prepared queries keyed by SQL text. An entry is served
/// only while its recorded catalog version matches the database's
/// current one; a DDL change (e.g. a view re-registration) silently
/// re-prepares on the next lookup. Thread-safe; entries are shared
/// immutable plans, so a hit is one mutex-guarded map probe plus a
/// shared_ptr copy.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `sql`, preparing (and caching) it
  /// through `exec` on a miss or after a catalog change. `outcome`
  /// (optional) reports how the probe was served.
  Result<std::shared_ptr<const PreparedQuery>> GetOrPrepare(
      const Executor& exec, const std::string& sql,
      PlanLookup* outcome = nullptr);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Subset of misses() caused by a catalog-version mismatch.
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::shared_ptr<const PreparedQuery> plan;
    std::list<std::string>::iterator lru_it;
  };

  size_t capacity_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> map_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_PREPARED_H_
