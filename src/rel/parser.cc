#include "rel/parser.h"

#include <array>

#include "common/strings.h"

namespace wfrm::rel {

namespace {

/// Identifiers that terminate a FROM-list alias or an expression because
/// they introduce the next clause of an enclosing statement (SQL, RQL or
/// PL grammar).
constexpr std::array<std::string_view, 16> kClauseKeywords = {
    "where", "start",  "connect", "group", "union", "for",  "with", "by",
    "having", "order", "as",      "then",  "else",  "limit", "desc", "asc"};

bool IsClauseKeyword(const Token& t) {
  if (t.kind != Token::Kind::kIdentifier) return false;
  for (std::string_view kw : kClauseKeywords) {
    if (EqualsIgnoreCase(t.text, kw)) return true;
  }
  return false;
}

bool IsAggregateName(std::string_view name, AggregateFn* fn) {
  if (EqualsIgnoreCase(name, "count")) {
    *fn = AggregateFn::kCount;
    return true;
  }
  if (EqualsIgnoreCase(name, "sum")) {
    *fn = AggregateFn::kSum;
    return true;
  }
  if (EqualsIgnoreCase(name, "min")) {
    *fn = AggregateFn::kMin;
    return true;
  }
  if (EqualsIgnoreCase(name, "max")) {
    *fn = AggregateFn::kMax;
    return true;
  }
  if (EqualsIgnoreCase(name, "avg")) {
    *fn = AggregateFn::kAvg;
    return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(TokenStream& ts) : ts_(ts) {}

  Result<SelectPtr> ParseSelect() {
    WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStatement>();
    stmt->distinct = ts_.TryKeyword("distinct");

    // Select list.
    do {
      WFRM_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (ts_.TrySymbol(","));

    WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("from"));
    do {
      WFRM_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
    } while (ts_.TrySymbol(","));

    // Trailing clauses, in flexible order (Oracle accepts WHERE before
    // START WITH; the paper's Figure 8 writes WHERE first).
    while (true) {
      if (ts_.TryKeyword("where")) {
        if (stmt->where) return ts_.Error("duplicate Where clause");
        WFRM_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
      } else if (ts_.Peek().IsKeyword("start") &&
                 ts_.Peek(1).IsKeyword("with")) {
        ts_.Next();
        ts_.Next();
        if (stmt->connect_by) return ts_.Error("duplicate Start With clause");
        ConnectByClause cb;
        WFRM_ASSIGN_OR_RETURN(cb.start_with, ParseExpr());
        WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("connect"));
        WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("by"));
        WFRM_ASSIGN_OR_RETURN(cb.connect, ParseExpr());
        stmt->connect_by = std::move(cb);
      } else if (ts_.Peek().IsKeyword("connect") &&
                 ts_.Peek(1).IsKeyword("by")) {
        // CONNECT BY may precede START WITH in Oracle syntax.
        ts_.Next();
        ts_.Next();
        ConnectByClause cb;
        WFRM_ASSIGN_OR_RETURN(cb.connect, ParseExpr());
        WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("start"));
        WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("with"));
        WFRM_ASSIGN_OR_RETURN(cb.start_with, ParseExpr());
        stmt->connect_by = std::move(cb);
      } else if (ts_.Peek().IsKeyword("group") &&
                 ts_.Peek(1).IsKeyword("by")) {
        ts_.Next();
        ts_.Next();
        do {
          WFRM_ASSIGN_OR_RETURN(std::string col,
                                ts_.ExpectIdentifier("group-by column"));
          stmt->group_by.push_back(std::move(col));
        } while (ts_.TrySymbol(","));
      } else if (ts_.TryKeyword("having")) {
        if (stmt->having) return ts_.Error("duplicate Having clause");
        WFRM_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
      } else if (ts_.Peek().IsKeyword("order") && ts_.Peek(1).IsKeyword("by")) {
        ts_.Next();
        ts_.Next();
        do {
          OrderKey key;
          WFRM_ASSIGN_OR_RETURN(key.expr, ParseExpr());
          if (ts_.TryKeyword("desc")) {
            key.descending = true;
          } else {
            ts_.TryKeyword("asc");
          }
          stmt->order_by.push_back(std::move(key));
        } while (ts_.TrySymbol(","));
      } else if (ts_.TryKeyword("limit")) {
        const Token& t = ts_.Peek();
        if (t.kind != Token::Kind::kNumber || !t.value.is_int() ||
            t.value.int_value() < 0) {
          return ts_.Error("Limit expects a non-negative integer");
        }
        stmt->limit = static_cast<size_t>(t.value.int_value());
        ts_.Next();
      } else if (ts_.TryKeyword("union")) {
        WFRM_ASSIGN_OR_RETURN(stmt->union_next, ParseSelect());
        break;  // UNION consumes the rest of the statement.
      } else {
        break;
      }
    }
    return stmt;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

 private:
  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (ts_.TrySymbol("*")) {
      item.is_star = true;
      return item;
    }
    WFRM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    // Recognize aggregate calls at the top of a select item.
    if (e->kind() == Expr::Kind::kFunction) {
      auto* fn = static_cast<FunctionExpr*>(e.get());
      AggregateFn agg;
      if (IsAggregateName(fn->name(), &agg)) {
        if (fn->star()) {
          if (agg != AggregateFn::kCount) {
            return ts_.Error("'*' argument only valid in Count");
          }
          item.aggregate = AggregateFn::kCountStar;
        } else {
          if (fn->args().size() != 1) {
            return ts_.Error("aggregate takes exactly one argument");
          }
          item.aggregate = agg;
          item.expr = fn->args()[0]->Clone();
        }
        e = nullptr;
      }
    }
    if (e) item.expr = std::move(e);
    if (ts_.TryKeyword("as")) {
      WFRM_ASSIGN_OR_RETURN(item.alias, ts_.ExpectIdentifier("alias"));
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    WFRM_ASSIGN_OR_RETURN(ref.name, ts_.ExpectIdentifier("table name"));
    const Token& t = ts_.Peek();
    if (t.kind == Token::Kind::kIdentifier && !IsClauseKeyword(t)) {
      ref.alias = t.text;
      ts_.Next();
    }
    return ref;
  }

  Result<ExprPtr> ParseOr() {
    WFRM_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ts_.TryKeyword("or")) {
      WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    WFRM_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ts_.TryKeyword("and")) {
      WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ts_.TryKeyword("not")) {
      WFRM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    WFRM_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

    // BETWEEN desugars to a pair of comparisons; the inner And is
    // consumed here, before the And-level parser can see it.
    {
      bool between_negated = false;
      if (ts_.Peek().IsKeyword("not") && ts_.Peek(1).IsKeyword("between")) {
        ts_.Next();
        between_negated = true;
      }
      if (ts_.TryKeyword("between")) {
        WFRM_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        WFRM_RETURN_NOT_OK(ts_.ExpectKeyword("and"));
        WFRM_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        ExprPtr left_copy = left->Clone();
        ExprPtr range = MakeBinary(
            BinaryOp::kAnd,
            MakeBinary(BinaryOp::kGe, std::move(left_copy), std::move(lo)),
            MakeBinary(BinaryOp::kLe, std::move(left), std::move(hi)));
        if (between_negated) {
          return ExprPtr(
              std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(range)));
        }
        return range;
      }
      if (between_negated) {
        return ts_.Error("expected Between after Not");
      }
    }

    // LIKE / NOT LIKE.
    {
      bool like_negated = false;
      if (ts_.Peek().IsKeyword("not") && ts_.Peek(1).IsKeyword("like")) {
        ts_.Next();
        like_negated = true;
      }
      if (ts_.TryKeyword("like")) {
        WFRM_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
        ExprPtr like =
            MakeBinary(BinaryOp::kLike, std::move(left), std::move(pattern));
        if (like_negated) {
          return ExprPtr(
              std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(like)));
        }
        return like;
      }
      if (like_negated) {
        return ts_.Error("expected Like after Not");
      }
    }

    // IN-list / IN-subquery, with optional NOT.
    bool negated = false;
    if (ts_.Peek().IsKeyword("not") && ts_.Peek(1).IsKeyword("in")) {
      ts_.Next();
      negated = true;
    }
    if (ts_.TryKeyword("in")) {
      WFRM_RETURN_NOT_OK(ts_.ExpectSymbol("("));
      ExprPtr in;
      if (ts_.Peek().IsKeyword("select")) {
        WFRM_ASSIGN_OR_RETURN(SelectPtr sub, ParseSelect());
        in = std::make_unique<InSubqueryExpr>(std::move(left), std::move(sub));
      } else {
        std::vector<ExprPtr> list;
        do {
          WFRM_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          list.push_back(std::move(e));
        } while (ts_.TrySymbol(","));
        in = std::make_unique<InListExpr>(std::move(left), std::move(list));
      }
      WFRM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
      if (negated) {
        return ExprPtr(
            std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(in)));
      }
      return in;
    }

    const Token& t = ts_.Peek();
    BinaryOp op;
    if (t.IsSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (t.IsSymbol("!=")) {
      op = BinaryOp::kNe;
    } else if (t.IsSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (t.IsSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (t.IsSymbol(">")) {
      op = BinaryOp::kGt;
    } else if (t.IsSymbol(">=")) {
      op = BinaryOp::kGe;
    } else {
      return left;
    }
    ts_.Next();
    WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    WFRM_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (ts_.TrySymbol("+")) {
        WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kAdd, std::move(left), std::move(right));
      } else if (ts_.TrySymbol("-")) {
        WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kSub, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    WFRM_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      if (ts_.TrySymbol("*")) {
        WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = MakeBinary(BinaryOp::kMul, std::move(left), std::move(right));
      } else if (ts_.TrySymbol("/")) {
        WFRM_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = MakeBinary(BinaryOp::kDiv, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = ts_.Peek();
    switch (t.kind) {
      case Token::Kind::kNumber:
      case Token::Kind::kString: {
        Value v = t.value;
        ts_.Next();
        return MakeLiteral(std::move(v));
      }
      case Token::Kind::kParameter: {
        std::string name = t.text;
        ts_.Next();
        return ExprPtr(std::make_unique<ParameterExpr>(std::move(name)));
      }
      case Token::Kind::kSymbol:
        if (t.IsSymbol("-")) {
          ts_.Next();
          WFRM_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
          // Fold negation of numeric literals.
          if (operand->kind() == Expr::Kind::kLiteral) {
            const Value& v = static_cast<LiteralExpr*>(operand.get())->value();
            if (v.is_int()) return MakeLiteral(Value::Int(-v.int_value()));
            if (v.is_double())
              return MakeLiteral(Value::Double(-v.double_value()));
          }
          return ExprPtr(
              std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
        }
        if (t.IsSymbol("(")) {
          ts_.Next();
          if (ts_.Peek().IsKeyword("select")) {
            WFRM_ASSIGN_OR_RETURN(SelectPtr sub, ParseSelect());
            WFRM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
            return ExprPtr(std::make_unique<SubqueryExpr>(std::move(sub)));
          }
          WFRM_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          WFRM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
          return inner;
        }
        return ts_.Error("expected expression");
      case Token::Kind::kIdentifier: {
        if (t.IsKeyword("null")) {
          ts_.Next();
          return MakeLiteral(Value::Null());
        }
        if (t.IsKeyword("true")) {
          ts_.Next();
          return MakeLiteral(Value::Bool(true));
        }
        if (t.IsKeyword("false")) {
          ts_.Next();
          return MakeLiteral(Value::Bool(false));
        }
        if (t.IsKeyword("prior")) {
          ts_.Next();
          WFRM_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
          return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kPrior,
                                                     std::move(operand)));
        }
        std::string name = t.text;
        ts_.Next();
        if (ts_.TrySymbol("(")) {
          // Function call, possibly Count(*).
          if (ts_.TrySymbol("*")) {
            WFRM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
            return ExprPtr(std::make_unique<FunctionExpr>(
                std::move(name), std::vector<ExprPtr>{}, /*star=*/true));
          }
          std::vector<ExprPtr> args;
          if (!ts_.TrySymbol(")")) {
            do {
              WFRM_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              args.push_back(std::move(arg));
            } while (ts_.TrySymbol(","));
            WFRM_RETURN_NOT_OK(ts_.ExpectSymbol(")"));
          }
          return ExprPtr(std::make_unique<FunctionExpr>(std::move(name),
                                                        std::move(args)));
        }
        if (ts_.TrySymbol(".")) {
          WFRM_ASSIGN_OR_RETURN(std::string col,
                                ts_.ExpectIdentifier("column name"));
          return MakeColumnRef(std::move(name), std::move(col));
        }
        return MakeColumnRef(std::move(name));
      }
      case Token::Kind::kEnd:
        return ts_.Error("unexpected end of expression");
    }
    return ts_.Error("expected expression");
  }

  TokenStream& ts_;
};

Status ExpectFullyConsumed(TokenStream& ts) {
  if (!ts.AtEnd() && !ts.Peek().IsSymbol(";")) {
    return ts.Error("unexpected trailing input");
  }
  return Status::OK();
}

}  // namespace

Result<SelectPtr> SqlParser::ParseSelect(std::string_view sql) {
  WFRM_ASSIGN_OR_RETURN(TokenStream ts, TokenStream::Open(sql));
  WFRM_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSelectFrom(ts));
  WFRM_RETURN_NOT_OK(ExpectFullyConsumed(ts));
  return stmt;
}

Result<ExprPtr> SqlParser::ParseExpr(std::string_view text) {
  WFRM_ASSIGN_OR_RETURN(TokenStream ts, TokenStream::Open(text));
  WFRM_ASSIGN_OR_RETURN(ExprPtr e, ParseExprFrom(ts));
  WFRM_RETURN_NOT_OK(ExpectFullyConsumed(ts));
  return e;
}

Result<SelectPtr> SqlParser::ParseSelectFrom(TokenStream& ts) {
  Parser p(ts);
  return p.ParseSelect();
}

Result<ExprPtr> SqlParser::ParseExprFrom(TokenStream& ts) {
  Parser p(ts);
  return p.ParseExpr();
}

}  // namespace wfrm::rel
