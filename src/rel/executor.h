#ifndef WFRM_REL_EXECUTOR_H_
#define WFRM_REL_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/strings.h"
#include "rel/database.h"
#include "rel/sql_ast.h"

namespace wfrm::rel {

class PreparedQuery;

/// Named parameter bindings (`[Name]` → value), case-insensitive.
/// The policy rewriters bind activity attributes through this map.
using ParamMap = std::unordered_map<std::string, Value, CaseInsensitiveHash,
                                    CaseInsensitiveEq>;

/// Work counters exposed for the benchmark harness: how execution was
/// served, independent of wall-clock time.
struct ExecStats {
  uint64_t rows_scanned = 0;     // Rows read by full scans.
  uint64_t index_probes = 0;     // Ordered-index probes issued.
  uint64_t rows_from_index = 0;  // Rows fetched through an index probe.
  uint64_t rows_filtered = 0;    // Rows surviving WHERE.

  void Reset() { *this = ExecStats{}; }
};

struct ExecOptions {
  /// When false, every access is a full scan — the ablation baseline for
  /// the paper's concatenated-index recommendation (§5.2, §6).
  bool use_indexes = true;
  /// Hierarchy depth cap for CONNECT BY; exceeding it reports a loop.
  size_t max_connect_by_depth = 128;
};

/// Executes SELECT statements against a Database.
///
/// Supported surface: multi-table FROM (nested-loop join), WHERE with
/// three-valued logic, scalar and IN subqueries (correlated), GROUP BY
/// with Count/Sum/Min/Max/Avg, DISTINCT, UNION, Oracle-style
/// START WITH / CONNECT BY PRIOR with the LEVEL pseudo-column, views,
/// and single-table index access-path selection over ordered indexes.
class Executor {
 public:
  explicit Executor(const Database* db, ExecOptions options = ExecOptions())
      : db_(db), options_(options) {}

  /// Parses and executes `sql`.
  Result<ResultSet> Query(std::string_view sql,
                          const ParamMap& params = {}) const;

  /// Executes a parsed statement.
  Result<ResultSet> Execute(const SelectStatement& stmt,
                            const ParamMap& params = {}) const;

  /// Parses `sql` once and validates that every relation referenced in
  /// the FROM clauses of the union chain exists, returning a reusable
  /// handle stamped with the current catalog version. Parameters are
  /// bound per execution, so one plan serves every query of the shape.
  Result<std::shared_ptr<const PreparedQuery>> Prepare(
      std::string_view sql) const;

  /// Executes a previously prepared query with fresh parameter bindings.
  /// Tolerant of a stale catalog version (names re-resolve against the
  /// current catalog); PlanCache is what enforces version matching.
  Result<ResultSet> Execute(const PreparedQuery& prepared,
                            const ParamMap& params = {}) const;

  /// Renders the execution plan without running the query: access path
  /// per relation (index probe vs full scan), join shape, hierarchy
  /// evaluation, aggregation, ordering and union arms. One node per
  /// line, children indented.
  Result<std::string> Explain(const SelectStatement& stmt,
                              const ParamMap& params = {}) const;

  /// Evaluates an expression against a single row of `schema`, binding
  /// `[params]`; used by the policy manager to test activity ranges and
  /// by property tests as an oracle.
  Result<Value> EvalWithRow(const Expr& expr, const Schema& schema,
                            const Row& row, const ParamMap& params = {}) const;

  /// Evaluates a constant expression (no row bindings).
  Result<Value> EvalConst(const Expr& expr,
                          const ParamMap& params = {}) const;

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  const ExecOptions& options() const { return options_; }

  const Database* db() const { return db_; }

 private:
  class Impl;
  friend class Impl;

  const Database* db_;
  ExecOptions options_;
  mutable ExecStats stats_;
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_EXECUTOR_H_
