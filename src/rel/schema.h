#ifndef WFRM_REL_SCHEMA_H_
#define WFRM_REL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/value.h"

namespace wfrm::rel {

/// A named, typed column.
struct Column {
  std::string name;
  DataType type;
};

/// Ordered list of columns with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name` (ASCII case-insensitive), if any.
  std::optional<size_t> FindColumn(std::string_view name) const;

  /// Like FindColumn but fails with NotFound naming the column.
  Result<size_t> ResolveColumn(std::string_view name) const;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// "name TYPE, name TYPE, ..." — used in error messages and dumps.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// A tuple of values laid out per some Schema.
using Row = std::vector<Value>;

/// Stable identifier of a row within a Table (survives other deletions).
using RowId = size_t;

/// Schema + materialized rows: the result of executing a query.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }

  /// Tabular rendering for examples and debugging.
  std::string ToString() const;
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_SCHEMA_H_
