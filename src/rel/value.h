#ifndef WFRM_REL_VALUE_H_
#define WFRM_REL_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/status.h"

namespace wfrm::rel {

/// Static column types understood by the relational engine.
enum class DataType {
  kBool,
  kInt,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType type);

/// Runtime value: a tagged union over the supported column types plus
/// SQL NULL. Values are small, copyable and totally ordered within a
/// comparable kind (numerics compare across int/double).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : rep_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  bool is_null() const { return std::holds_alternative<NullTag>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool bool_value() const { return std::get<bool>(rep_); }
  int64_t int_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }

  /// Numeric value widened to double; requires is_numeric().
  double AsDouble() const {
    return is_int() ? static_cast<double>(int_value()) : double_value();
  }

  /// The dynamic type; requires !is_null().
  DataType type() const;

  /// True if this value can be stored in a column of `type`
  /// (NULL is storable anywhere; ints are storable in double columns).
  bool CompatibleWith(DataType type) const;

  /// Three-way comparison. Fails with TypeError on incomparable kinds
  /// (e.g. string vs int). NULL compares only against NULL (equal) —
  /// SQL three-valued logic is handled by the expression evaluator,
  /// which never calls Compare on NULL operands.
  Result<int> Compare(const Value& other) const;

  /// Equality as value identity (NULL == NULL here); used by containers.
  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Strict weak ordering across kinds (kind rank, then value); used by
  /// ordered indexes, where a column has a single kind in practice.
  bool operator<(const Value& other) const;

  /// SQL-literal-ish rendering: NULL, TRUE, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Hash consistent with operator==.
  size_t Hash() const;

 private:
  struct NullTag {
    bool operator==(const NullTag&) const { return true; }
  };
  using Rep = std::variant<NullTag, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_VALUE_H_
