#include "rel/schema.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace wfrm::rel {

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::ResolveColumn(std::string_view name) const {
  if (auto i = FindColumn(name)) return *i;
  return Status::NotFound("column '" + std::string(name) +
                          "' not in schema (" + ToString() + ")");
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeToString(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

std::string ResultSet::ToString() const {
  // Compute column widths over header + all cells.
  std::vector<std::string> header;
  std::vector<size_t> width;
  for (const Column& c : schema.columns()) {
    header.push_back(c.name);
    width.push_back(c.name.size());
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      std::string s = row[i].ToString();
      if (i < width.size()) width[i] = std::max(width[i], s.size());
      line.push_back(std::move(s));
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& line) {
    os << "|";
    for (size_t i = 0; i < width.size(); ++i) {
      std::string cell = i < line.size() ? line[i] : "";
      os << " " << cell << std::string(width[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(header);
  os << "|";
  for (size_t w : width) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& line : cells) emit_row(line);
  os << "(" << rows.size() << " row" << (rows.size() == 1 ? "" : "s") << ")\n";
  return os.str();
}

}  // namespace wfrm::rel
