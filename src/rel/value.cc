#include "rel/value.h"

#include <cmath>
#include <functional>
#include <ostream>
#include <sstream>

namespace wfrm::rel {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

bool Value::CompatibleWith(DataType t) const {
  if (is_null()) return true;
  if (t == DataType::kDouble && is_int()) return true;
  return type() == t;
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

// Rank used for the cross-kind strict weak ordering only.
int KindRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;
}

}  // namespace

Result<int> Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null() || other.is_null()) {
    return Status::TypeError("cannot compare NULL with a value");
  }
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = int_value(), b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return CompareDoubles(AsDouble(), other.AsDouble());
  }
  if (is_string() && other.is_string()) {
    int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
  }
  return Status::TypeError("cannot compare " +
                           std::string(DataTypeToString(type())) + " with " +
                           std::string(DataTypeToString(other.type())));
}

bool Value::operator<(const Value& other) const {
  int ra = KindRank(*this), rb = KindRank(other);
  if (ra != rb) return ra < rb;
  if (is_null()) return false;
  if (is_bool()) return bool_value() < other.bool_value();
  if (is_numeric()) {
    // Mixed int/double within the numeric rank compares by magnitude,
    // then by kind so that distinct representations stay distinct.
    double a = AsDouble(), b = other.AsDouble();
    if (a != b) return a < b;
    return is_int() && other.is_double();
  }
  return string_value() < other.string_value();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "TRUE" : "FALSE";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) {
    std::ostringstream os;
    os << double_value();
    return os.str();
  }
  // Escape embedded quotes SQL-style.
  std::string out = "'";
  for (char c : string_value()) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_bool()) return std::hash<bool>()(bool_value());
  if (is_int()) return std::hash<int64_t>()(int_value());
  if (is_double()) return std::hash<double>()(double_value());
  return std::hash<std::string>()(string_value());
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace wfrm::rel
