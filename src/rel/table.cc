#include "rel/table.h"

#include <algorithm>

namespace wfrm::rel {

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema (" +
        schema_.ToString() + ") of table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].CompatibleWith(schema_.column(i).type)) {
      return Status::TypeError(
          "value " + row[i].ToString() + " not compatible with column " +
          schema_.column(i).name + " " +
          DataTypeToString(schema_.column(i).type) + " of table " + name_);
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  WFRM_RETURN_NOT_OK(ValidateRow(row));
  RowId rid = rows_.size();
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  for (auto& idx : ordered_indexes_) idx->Insert(rows_[rid], rid);
  for (auto& idx : hash_indexes_) idx->Insert(rows_[rid], rid);
  return rid;
}

Status Table::Delete(RowId rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) +
                            " is not live in table " + name_);
  }
  for (auto& idx : ordered_indexes_) idx->Erase(rows_[rid], rid);
  for (auto& idx : hash_indexes_) idx->Erase(rows_[rid], rid);
  live_[rid] = false;
  --live_count_;
  return Status::OK();
}

Status Table::Update(RowId rid, Row row) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) +
                            " is not live in table " + name_);
  }
  WFRM_RETURN_NOT_OK(ValidateRow(row));
  for (auto& idx : ordered_indexes_) idx->Erase(rows_[rid], rid);
  for (auto& idx : hash_indexes_) idx->Erase(rows_[rid], rid);
  rows_[rid] = std::move(row);
  for (auto& idx : ordered_indexes_) idx->Insert(rows_[rid], rid);
  for (auto& idx : hash_indexes_) idx->Insert(rows_[rid], rid);
  return Status::OK();
}

void Table::ForEach(const std::function<void(RowId, const Row&)>& fn) const {
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (live_[rid]) fn(rid, rows_[rid]);
  }
}

std::vector<RowId> Table::AllRowIds() const {
  std::vector<RowId> out;
  out.reserve(live_count_);
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (live_[rid]) out.push_back(rid);
  }
  return out;
}

namespace {

Result<std::vector<size_t>> ResolveColumns(
    const Schema& schema, const std::vector<std::string>& columns) {
  std::vector<size_t> out;
  out.reserve(columns.size());
  for (const std::string& c : columns) {
    WFRM_ASSIGN_OR_RETURN(size_t i, schema.ResolveColumn(c));
    out.push_back(i);
  }
  return out;
}

}  // namespace

Status Table::CreateOrderedIndex(const std::string& index_name,
                                 const std::vector<std::string>& columns) {
  for (const auto& idx : ordered_indexes_) {
    if (idx->name() == index_name) {
      return Status::AlreadyExists("index " + index_name + " on " + name_);
    }
  }
  WFRM_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                        ResolveColumns(schema_, columns));
  auto idx = std::make_unique<OrderedIndex>(index_name, std::move(cols));
  ForEach([&](RowId rid, const Row& row) { idx->Insert(row, rid); });
  ordered_indexes_.push_back(std::move(idx));
  return Status::OK();
}

Status Table::CreateHashIndex(const std::string& index_name,
                              const std::vector<std::string>& columns) {
  for (const auto& idx : hash_indexes_) {
    if (idx->name() == index_name) {
      return Status::AlreadyExists("index " + index_name + " on " + name_);
    }
  }
  WFRM_ASSIGN_OR_RETURN(std::vector<size_t> cols,
                        ResolveColumns(schema_, columns));
  auto idx = std::make_unique<HashIndex>(index_name, std::move(cols));
  ForEach([&](RowId rid, const Row& row) { idx->Insert(row, rid); });
  hash_indexes_.push_back(std::move(idx));
  return Status::OK();
}

const OrderedIndex* Table::FindBestOrderedIndex(
    const std::vector<size_t>& equality_columns,
    std::optional<size_t> range_column) const {
  const OrderedIndex* best = nullptr;
  size_t best_score = 0;
  for (const auto& idx : ordered_indexes_) {
    const auto& key_cols = idx->key_columns();
    // Count how many leading key columns are covered by equality
    // predicates, in any order of the predicate list.
    size_t covered = 0;
    while (covered < key_cols.size() &&
           std::find(equality_columns.begin(), equality_columns.end(),
                     key_cols[covered]) != equality_columns.end()) {
      ++covered;
    }
    size_t score = covered * 2;
    // A range predicate on the next key column extends the probe.
    if (range_column && covered < key_cols.size() &&
        key_cols[covered] == *range_column) {
      ++score;
    }
    if (score > best_score) {
      best_score = score;
      best = idx.get();
    }
  }
  return best;
}

void Table::Clear() {
  rows_.clear();
  live_.clear();
  live_count_ = 0;
  // Rebuild empty indexes preserving definitions.
  for (auto& idx : ordered_indexes_) {
    idx = std::make_unique<OrderedIndex>(idx->name(), idx->key_columns());
  }
  for (auto& idx : hash_indexes_) {
    idx = std::make_unique<HashIndex>(idx->name(), idx->key_columns());
  }
}

}  // namespace wfrm::rel
