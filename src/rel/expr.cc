#include "rel/expr.h"

#include "rel/sql_ast.h"

namespace wfrm::rel {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "And";
    case BinaryOp::kOr:
      return "Or";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kLike:
      return "Like";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp SwapComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and != are symmetric.
  }
}

BinaryOp NegateComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    case BinaryOp::kNe:
      return BinaryOp::kEq;
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
    default:
      return op;
  }
}

namespace {

// Precedence for parenthesization in ToString: higher binds tighter.
int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return 1;
    case BinaryOp::kAnd:
      return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kLike:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 6;
}

std::string ChildToString(const Expr& child, int parent_prec) {
  if (child.kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(child);
    if (Precedence(b.op()) < parent_prec) {
      return "(" + child.ToString() + ")";
    }
  }
  return child.ToString();
}

}  // namespace

std::string BinaryExpr::ToString() const {
  int prec = Precedence(op_);
  return ChildToString(*left_, prec) + " " + BinaryOpToString(op_) + " " +
         ChildToString(*right_, prec);
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot:
      return "Not (" + operand_->ToString() + ")";
    case UnaryOp::kNeg:
      return "-" + operand_->ToString();
    case UnaryOp::kPrior:
      return "Prior " + operand_->ToString();
  }
  return operand_->ToString();
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> list;
  list.reserve(haystack_.size());
  for (const auto& e : haystack_) list.push_back(e->Clone());
  return std::make_unique<InListExpr>(needle_->Clone(), std::move(list));
}

std::string InListExpr::ToString() const {
  std::string out = needle_->ToString() + " In (";
  for (size_t i = 0; i < haystack_.size(); ++i) {
    if (i > 0) out += ", ";
    out += haystack_[i]->ToString();
  }
  return out + ")";
}

SubqueryExpr::SubqueryExpr(std::unique_ptr<SelectStatement> select)
    : Expr(Kind::kSubquery), select_(std::move(select)) {}

SubqueryExpr::~SubqueryExpr() = default;

ExprPtr SubqueryExpr::Clone() const {
  return std::make_unique<SubqueryExpr>(select_->Clone());
}

std::string SubqueryExpr::ToString() const {
  return "(" + select_->ToString() + ")";
}

InSubqueryExpr::InSubqueryExpr(ExprPtr needle,
                               std::unique_ptr<SelectStatement> select)
    : Expr(Kind::kInSubquery),
      needle_(std::move(needle)),
      select_(std::move(select)) {}

InSubqueryExpr::~InSubqueryExpr() = default;

ExprPtr InSubqueryExpr::Clone() const {
  return std::make_unique<InSubqueryExpr>(needle_->Clone(), select_->Clone());
}

std::string InSubqueryExpr::ToString() const {
  return needle_->ToString() + " In (" + select_->ToString() + ")";
}

ExprPtr FunctionExpr::Clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_unique<FunctionExpr>(name_, std::move(args), star_);
}

std::string FunctionExpr::ToString() const {
  if (star_) return name_ + "(*)";
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

ExprPtr MakeLiteral(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }

ExprPtr MakeColumnRef(std::string name) {
  return std::make_unique<ColumnRefExpr>("", std::move(name));
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  return std::make_unique<ColumnRefExpr>(std::move(qualifier), std::move(name));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}

ExprPtr MakeComparison(std::string column, BinaryOp op, Value v) {
  return MakeBinary(op, MakeColumnRef(std::move(column)),
                    MakeLiteral(std::move(v)));
}

ExprPtr AndExprs(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

}  // namespace wfrm::rel
