#ifndef WFRM_REL_TABLE_H_
#define WFRM_REL_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "rel/index.h"
#include "rel/schema.h"

namespace wfrm::rel {

/// An in-memory heap table with optional secondary indexes.
///
/// Rows get stable RowIds (slot numbers); deletion tombstones the slot.
/// All mutations keep every attached index synchronized.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Validates arity and column-type compatibility, then appends.
  Result<RowId> Insert(Row row);

  /// Tombstones `rid`. Fails if the slot is already dead or out of range.
  Status Delete(RowId rid);

  /// Replaces the row at `rid`, revalidating and reindexing.
  Status Update(RowId rid, Row row);

  bool IsLive(RowId rid) const {
    return rid < rows_.size() && live_[rid];
  }
  /// Requires IsLive(rid).
  const Row& row(RowId rid) const { return rows_[rid]; }

  size_t num_rows() const { return live_count_; }
  size_t num_slots() const { return rows_.size(); }

  /// Invokes `fn` for every live row, in slot order.
  void ForEach(const std::function<void(RowId, const Row&)>& fn) const;

  /// Collects all live RowIds.
  std::vector<RowId> AllRowIds() const;

  /// Creates an ordered (B-tree-like) index over the named columns and
  /// backfills it from existing rows.
  Status CreateOrderedIndex(const std::string& index_name,
                            const std::vector<std::string>& columns);

  /// Creates a hash index over the named columns and backfills it.
  Status CreateHashIndex(const std::string& index_name,
                         const std::vector<std::string>& columns);

  const std::vector<std::unique_ptr<OrderedIndex>>& ordered_indexes() const {
    return ordered_indexes_;
  }
  const std::vector<std::unique_ptr<HashIndex>>& hash_indexes() const {
    return hash_indexes_;
  }

  /// Ordered index whose key columns start with the longest usable prefix
  /// of `equality_columns` (+ optionally one range column after them).
  /// Returns nullptr if no index matches at least one leading column.
  const OrderedIndex* FindBestOrderedIndex(
      const std::vector<size_t>& equality_columns,
      std::optional<size_t> range_column) const;

  /// Removes all rows (indexes are cleared too). Slots are reused.
  void Clear();

 private:
  Status ValidateRow(const Row& row) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_TABLE_H_
