#ifndef WFRM_REL_PARSER_H_
#define WFRM_REL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "rel/sql_ast.h"
#include "rel/token.h"

namespace wfrm::rel {

/// Recursive-descent parser for the SQL subset (see sql_ast.h).
///
/// The entry points taking a TokenStream are reused by the RQL and Policy
/// Language parsers, which embed SQL select statements and where-clause
/// expressions in their own grammars (paper Appendix).
class SqlParser {
 public:
  /// Parses a complete SELECT statement; input must be fully consumed.
  static Result<SelectPtr> ParseSelect(std::string_view sql);

  /// Parses a standalone expression (e.g. a stored WhereClause string);
  /// input must be fully consumed.
  static Result<ExprPtr> ParseExpr(std::string_view text);

  /// Parses a SELECT starting at the current token. Leaves the stream
  /// positioned after the statement.
  static Result<SelectPtr> ParseSelectFrom(TokenStream& ts);

  /// Parses an expression starting at the current token. Stops at the
  /// first token that cannot continue an expression (e.g. the RQL `For`
  /// keyword), leaving it unconsumed.
  static Result<ExprPtr> ParseExprFrom(TokenStream& ts);
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_PARSER_H_
