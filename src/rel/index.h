#ifndef WFRM_REL_INDEX_H_
#define WFRM_REL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace wfrm::rel {

/// Composite key: one Value per indexed column, in index column order.
using IndexKey = std::vector<Value>;

/// Lexicographic ordering of composite keys by Value::operator<.
struct IndexKeyLess {
  bool operator()(const IndexKey& a, const IndexKey& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  }
};

struct IndexKeyHash {
  size_t operator()(const IndexKey& key) const {
    size_t h = 0x9ddfea08eb382d69ull;
    for (const Value& v : key) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// One bound of a one-dimensional range probe.
struct Bound {
  Value value;
  bool inclusive = true;
};

/// A probe against an ordered index: equality on the first
/// `equals.size()` columns, then an optional range on the next column.
///
/// This mirrors how a B-tree serves a concatenated index: the probe uses
/// the longest usable prefix (the paper's concatenated indexes on
/// (Activity, Resource) and (Attribute, LowerBound, UpperBound) are both
/// driven through this shape).
struct IndexProbe {
  std::vector<Value> equals;
  std::optional<Bound> lower;
  std::optional<Bound> upper;
};

/// Ordered secondary index over a composite column list.
///
/// Implemented as a sorted map from composite key to posting list. This is
/// the in-memory stand-in for the concatenated B-tree indexes the paper
/// creates on its Policies and Filter tables (Section 5.2).
class OrderedIndex {
 public:
  OrderedIndex(std::string name, std::vector<size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  /// Extracts this index's key from a full table row.
  IndexKey KeyFor(const Row& row) const;

  void Insert(const Row& row, RowId rid);
  void Erase(const Row& row, RowId rid);

  /// All row ids matching the probe, in key order.
  std::vector<RowId> Scan(const IndexProbe& probe) const;

  /// Number of distinct keys currently indexed.
  size_t num_keys() const { return entries_.size(); }

  /// Monotone count of index entries visited by Scan; used by the
  /// benchmark harness to report work done, independent of wall time.
  /// Atomic: concurrent read-only scans may update it.
  uint64_t entries_visited() const { return entries_visited_.load(); }
  void ResetStats() { entries_visited_ = 0; }

 private:
  std::string name_;
  std::vector<size_t> key_columns_;
  std::map<IndexKey, std::vector<RowId>, IndexKeyLess> entries_;
  mutable std::atomic<uint64_t> entries_visited_{0};
};

/// Hash secondary index: equality-only probes over the full key.
class HashIndex {
 public:
  HashIndex(std::string name, std::vector<size_t> key_columns)
      : name_(std::move(name)), key_columns_(std::move(key_columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& key_columns() const { return key_columns_; }

  IndexKey KeyFor(const Row& row) const;

  void Insert(const Row& row, RowId rid);
  void Erase(const Row& row, RowId rid);

  /// Row ids whose key equals `key` exactly.
  std::vector<RowId> Lookup(const IndexKey& key) const;

  size_t num_keys() const { return entries_.size(); }

 private:
  std::string name_;
  std::vector<size_t> key_columns_;
  std::unordered_map<IndexKey, std::vector<RowId>, IndexKeyHash> entries_;
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_INDEX_H_
