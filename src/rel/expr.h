#ifndef WFRM_REL_EXPR_H_
#define WFRM_REL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "rel/value.h"

namespace wfrm::rel {

struct SelectStatement;

/// Binary operators. Comparison and logical operators evaluate with
/// SQL-style three-valued logic (NULL-propagating).
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  /// SQL LIKE: string match with '%' (any sequence) and '_' (any single
  /// character) wildcards. Three-valued on NULL operands.
  kLike,
};

const char* BinaryOpToString(BinaryOp op);

/// True for =, !=, <, <=, >, >=.
bool IsComparison(BinaryOp op);

/// Flips a comparison for operand swap: < becomes >, <= becomes >= etc.
BinaryOp SwapComparison(BinaryOp op);

/// Negates a comparison: < becomes >=, = becomes != etc.
BinaryOp NegateComparison(BinaryOp op);

enum class UnaryOp {
  kNot,
  kNeg,
  /// Oracle-style PRIOR marker inside a CONNECT BY condition: the operand
  /// is evaluated against the parent row of the hierarchy step.
  kPrior,
};

/// Expression tree node. Nodes are immutable after construction and
/// deep-copyable via Clone(); the policy rewriters rely on Clone to graft
/// policy predicates into resource queries.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumnRef,
    kParameter,
    kBinary,
    kUnary,
    kInList,
    kSubquery,
    kInSubquery,
    kFunction,
  };

  explicit Expr(Kind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  virtual std::unique_ptr<Expr> Clone() const = 0;

  /// SQL-ish rendering; parenthesized where precedence requires.
  virtual std::string ToString() const = 0;

 private:
  Kind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(Kind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

/// A (possibly qualified) column reference. In CONNECT BY queries the
/// unqualified name LEVEL resolves to the hierarchy depth pseudo-column.
class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : Expr(Kind::kColumnRef),
        qualifier_(std::move(qualifier)),
        name_(std::move(name)) {}

  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }

  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(qualifier_, name_);
  }
  std::string ToString() const override {
    return qualifier_.empty() ? name_ : qualifier_ + "." + name_;
  }

 private:
  std::string qualifier_;
  std::string name_;
};

/// A named parameter written `[Name]` — the policy language's reference
/// to an attribute of the activity in the resource query (paper §3.2).
class ParameterExpr final : public Expr {
 public:
  explicit ParameterExpr(std::string name)
      : Expr(Kind::kParameter), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  ExprPtr Clone() const override {
    return std::make_unique<ParameterExpr>(name_);
  }
  std::string ToString() const override { return "[" + name_ + "]"; }

 private:
  std::string name_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }

  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
  }
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const Expr& operand() const { return *operand_; }

  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op_, operand_->Clone());
  }
  std::string ToString() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// `expr IN (v1, v2, ...)`.
class InListExpr final : public Expr {
 public:
  InListExpr(ExprPtr needle, std::vector<ExprPtr> haystack)
      : Expr(Kind::kInList),
        needle_(std::move(needle)),
        haystack_(std::move(haystack)) {}

  const Expr& needle() const { return *needle_; }
  const std::vector<ExprPtr>& haystack() const { return haystack_; }

  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  ExprPtr needle_;
  std::vector<ExprPtr> haystack_;
};

/// A scalar subquery `( SELECT ... )`: must produce one column; its
/// value is NULL when the subquery yields no row, an error when it
/// yields more than one row.
class SubqueryExpr final : public Expr {
 public:
  explicit SubqueryExpr(std::unique_ptr<SelectStatement> select);
  ~SubqueryExpr() override;

  const SelectStatement& select() const { return *select_; }

  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::unique_ptr<SelectStatement> select_;
};

/// `expr IN ( SELECT ... )`.
class InSubqueryExpr final : public Expr {
 public:
  InSubqueryExpr(ExprPtr needle, std::unique_ptr<SelectStatement> select);
  ~InSubqueryExpr() override;

  const Expr& needle() const { return *needle_; }
  const SelectStatement& select() const { return *select_; }

  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  ExprPtr needle_;
  std::unique_ptr<SelectStatement> select_;
};

/// A scalar function call. The engine understands UPPER, LOWER, LENGTH,
/// ABS; aggregate functions are recognized by name in select lists.
class FunctionExpr final : public Expr {
 public:
  FunctionExpr(std::string name, std::vector<ExprPtr> args, bool star = false)
      : Expr(Kind::kFunction),
        name_(std::move(name)),
        args_(std::move(args)),
        star_(star) {}

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  /// True for COUNT(*).
  bool star() const { return star_; }

  ExprPtr Clone() const override;
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
  bool star_;
};

/// Convenience constructors used heavily by rewriters and tests.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string name);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeBinary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr MakeComparison(std::string column, BinaryOp op, Value v);
/// Conjoins two (possibly null) predicates; returns the other when one
/// side is null.
ExprPtr AndExprs(ExprPtr a, ExprPtr b);

}  // namespace wfrm::rel

#endif  // WFRM_REL_EXPR_H_
