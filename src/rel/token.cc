#include "rel/token.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace wfrm::rel {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == Kind::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      tok.kind = Token::Kind::kIdentifier;
      tok.text = std::string(input.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          // A second dot ends the number (e.g. range syntax, not used,
          // but keeps the lexer sane).
          if (is_double) break;
          is_double = true;
        }
        ++j;
      }
      // Exponent part.
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(input[j])))
            ++j;
        }
      }
      std::string text(input.substr(i, j - i));
      tok.kind = Token::Kind::kNumber;
      tok.text = text;
      if (is_double) {
        tok.value = Value::Double(std::strtod(text.c_str(), nullptr));
      } else {
        tok.value = Value::Int(std::strtoll(text.c_str(), nullptr, 10));
      }
      i = j;
    } else if (c == '\'') {
      std::string s;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            s.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        s.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      tok.kind = Token::Kind::kString;
      tok.text = s;
      tok.value = Value::String(std::move(s));
      i = j;
    } else if (c == '[') {
      size_t j = i + 1;
      std::string name;
      while (j < n && input[j] != ']') {
        name.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated parameter at offset " +
                                  std::to_string(i));
      }
      std::string trimmed(StripWhitespace(name));
      if (trimmed.empty()) {
        return Status::ParseError("empty parameter name at offset " +
                                  std::to_string(i));
      }
      tok.kind = Token::Kind::kParameter;
      tok.text = trimmed;
      i = j + 1;
    } else {
      // Multi-character symbols first.
      auto two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        tok.kind = Token::Kind::kSymbol;
        tok.text = two == "<>" ? "!=" : std::string(two);
        i += 2;
      } else if (std::string("()=<>,.;*+-/").find(c) != std::string::npos) {
        tok.kind = Token::Kind::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(i));
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

Result<TokenStream> TokenStream::Open(std::string_view input) {
  WFRM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  return TokenStream(std::move(tokens), std::string(input));
}

bool TokenStream::TryKeyword(std::string_view kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::TrySymbol(std::string_view sym) {
  if (Peek().IsSymbol(sym)) {
    Next();
    return true;
  }
  return false;
}

Status TokenStream::ExpectKeyword(std::string_view kw) {
  if (!TryKeyword(kw)) {
    return Error("expected keyword '" + std::string(kw) + "'");
  }
  return Status::OK();
}

Status TokenStream::ExpectSymbol(std::string_view sym) {
  if (!TrySymbol(sym)) {
    return Error("expected '" + std::string(sym) + "'");
  }
  return Status::OK();
}

Result<std::string> TokenStream::ExpectIdentifier(std::string_view what) {
  const Token& t = Peek();
  if (t.kind != Token::Kind::kIdentifier) {
    return Error("expected " + std::string(what));
  }
  Next();
  return t.text;
}

Status TokenStream::Error(const std::string& message) const {
  const Token& t = Peek();
  std::string context;
  if (t.kind == Token::Kind::kEnd) {
    context = "end of input";
  } else {
    context = "'" + t.text + "' at offset " + std::to_string(t.offset);
  }
  return Status::ParseError(message + " (found " + context + ")");
}

}  // namespace wfrm::rel
