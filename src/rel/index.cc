#include "rel/index.h"

#include <algorithm>

namespace wfrm::rel {

namespace {

void ErasePosting(std::vector<RowId>* postings, RowId rid) {
  postings->erase(std::remove(postings->begin(), postings->end(), rid),
                  postings->end());
}

}  // namespace

IndexKey OrderedIndex::KeyFor(const Row& row) const {
  IndexKey key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void OrderedIndex::Insert(const Row& row, RowId rid) {
  entries_[KeyFor(row)].push_back(rid);
}

void OrderedIndex::Erase(const Row& row, RowId rid) {
  auto it = entries_.find(KeyFor(row));
  if (it == entries_.end()) return;
  ErasePosting(&it->second, rid);
  if (it->second.empty()) entries_.erase(it);
}

std::vector<RowId> OrderedIndex::Scan(const IndexProbe& probe) const {
  std::vector<RowId> out;

  // Lower edge of the scanned key range: the equality prefix, extended by
  // the range lower bound when present.
  IndexKey low = probe.equals;
  if (probe.lower) low.push_back(probe.lower->value);

  auto it = entries_.lower_bound(low);
  IndexKeyLess less;
  for (; it != entries_.end(); ++it) {
    const IndexKey& key = it->first;
    ++entries_visited_;
    // Stop when the equality prefix no longer matches.
    bool prefix_ok = key.size() >= probe.equals.size();
    for (size_t i = 0; prefix_ok && i < probe.equals.size(); ++i) {
      if (key[i] != probe.equals[i]) prefix_ok = false;
    }
    if (!prefix_ok) break;

    size_t range_col = probe.equals.size();
    if (probe.lower && key.size() > range_col) {
      const Value& v = key[range_col];
      if (!probe.lower->inclusive && !(probe.lower->value < v) &&
          v == probe.lower->value) {
        continue;  // Exclusive bound: skip keys equal to it.
      }
    }
    if (probe.upper && key.size() > range_col) {
      const Value& v = key[range_col];
      if (probe.upper->value < v) break;
      if (!probe.upper->inclusive && v == probe.upper->value) break;
    }
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  (void)less;
  return out;
}

IndexKey HashIndex::KeyFor(const Row& row) const {
  IndexKey key;
  key.reserve(key_columns_.size());
  for (size_t c : key_columns_) key.push_back(row[c]);
  return key;
}

void HashIndex::Insert(const Row& row, RowId rid) {
  entries_[KeyFor(row)].push_back(rid);
}

void HashIndex::Erase(const Row& row, RowId rid) {
  auto it = entries_.find(KeyFor(row));
  if (it == entries_.end()) return;
  ErasePosting(&it->second, rid);
  if (it->second.empty()) entries_.erase(it);
}

std::vector<RowId> HashIndex::Lookup(const IndexKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  return it->second;
}

}  // namespace wfrm::rel
