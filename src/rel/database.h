#ifndef WFRM_REL_DATABASE_H_
#define WFRM_REL_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/strings.h"
#include "rel/sql_ast.h"
#include "rel/table.h"

namespace wfrm::rel {

/// A named view: a stored SELECT with optional output column renames,
/// e.g. the paper's `ReportsTo(Emp, Mgr)` over BelongsTo ⋈ Manages, or
/// the Figure 13/14 `Relevant_Policies` / `Relevant_Filter` views.
struct ViewDef {
  std::string name;
  std::vector<std::string> column_names;  // Empty: keep query output names.
  SelectPtr query;
};

/// The catalog: tables and views, name-keyed case-insensitively.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table. Fails on duplicate name (table or view).
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Registers a view. Fails on duplicate name.
  Status CreateView(const std::string& name,
                    std::vector<std::string> column_names, SelectPtr query);

  /// Replaces a view definition, creating it if absent.
  void CreateOrReplaceView(const std::string& name,
                           std::vector<std::string> column_names,
                           SelectPtr query);

  Status DropTable(const std::string& name);
  Status DropView(const std::string& name);

  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;
  const ViewDef* GetView(const std::string& name) const;

  bool HasRelation(const std::string& name) const {
    return GetTable(name) != nullptr || GetView(name) != nullptr;
  }

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// Monotone counter bumped by every catalog change (table or view
  /// created, replaced or dropped). Prepared queries record the version
  /// they were planned at; a plan cache serves an entry only while the
  /// versions still match, so replacing a view definition invalidates
  /// every plan that might reference it. Row mutations do NOT bump it —
  /// plans survive data churn.
  uint64_t catalog_version() const {
    return catalog_version_.load(std::memory_order_acquire);
  }

 private:
  void BumpCatalogVersion() {
    catalog_version_.fetch_add(1, std::memory_order_release);
  }

  using NameMap = std::unordered_map<std::string, size_t, CaseInsensitiveHash,
                                     CaseInsensitiveEq>;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::unique_ptr<ViewDef>> views_;
  NameMap table_index_;
  NameMap view_index_;
  std::atomic<uint64_t> catalog_version_{0};
};

}  // namespace wfrm::rel

#endif  // WFRM_REL_DATABASE_H_
