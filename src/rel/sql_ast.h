#ifndef WFRM_REL_SQL_AST_H_
#define WFRM_REL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rel/expr.h"

namespace wfrm::rel {

/// Aggregate functions supported in select lists.
enum class AggregateFn {
  kNone,
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggregateFnToString(AggregateFn fn);

/// One item of a select list: `*`, an expression, or an aggregate over an
/// expression, each with an optional alias.
struct SelectItem {
  bool is_star = false;
  AggregateFn aggregate = AggregateFn::kNone;
  ExprPtr expr;  // Null for `*` and COUNT(*).
  std::string alias;

  SelectItem Clone() const;
  std::string ToString() const;
};

/// A FROM-list entry: a table or view name with an optional alias.
struct TableRef {
  std::string name;
  std::string alias;  // Empty when none; resolution falls back to name.

  std::string BindingName() const { return alias.empty() ? name : alias; }
  std::string ToString() const {
    return alias.empty() ? name : name + " " + alias;
  }
};

/// Oracle-style hierarchical clause:
/// `START WITH <expr> CONNECT BY <expr-with-PRIOR>`.
struct ConnectByClause {
  ExprPtr start_with;
  ExprPtr connect;

  ConnectByClause Clone() const {
    return ConnectByClause{start_with ? start_with->Clone() : nullptr,
                           connect ? connect->Clone() : nullptr};
  }
};

/// One ORDER BY key.
struct OrderKey {
  ExprPtr expr;
  bool descending = false;

  OrderKey Clone() const {
    return OrderKey{expr ? expr->Clone() : nullptr, descending};
  }
};

/// A parsed SELECT statement over the SQL subset:
///
///   SELECT [DISTINCT] items FROM refs [WHERE expr]
///     [START WITH expr CONNECT BY expr]
///     [GROUP BY cols] [ORDER BY expr [DESC], ...] [LIMIT n]
///     [UNION select]
///
/// This covers everything the paper's machinery needs: the Figure 13/14
/// views (joins, GROUP BY + COUNT), the Figure 15 union, and the Figure 8
/// hierarchical manager-chain sub-query.
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // May be null.
  std::optional<ConnectByClause> connect_by;
  std::vector<std::string> group_by;
  /// HAVING filters aggregate output rows; it resolves against the
  /// output schema, so aggregate conditions reference select aliases
  /// (`Select Dept, Count(*) As n ... Having n > 2`).
  ExprPtr having;
  std::vector<OrderKey> order_by;
  std::optional<size_t> limit;
  std::unique_ptr<SelectStatement> union_next;  // UNION (set semantics).

  SelectStatement() = default;
  SelectStatement(const SelectStatement&) = delete;
  SelectStatement& operator=(const SelectStatement&) = delete;
  SelectStatement(SelectStatement&&) = default;
  SelectStatement& operator=(SelectStatement&&) = default;

  std::unique_ptr<SelectStatement> Clone() const;
  std::string ToString() const;
};

using SelectPtr = std::unique_ptr<SelectStatement>;

}  // namespace wfrm::rel

#endif  // WFRM_REL_SQL_AST_H_
