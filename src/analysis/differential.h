#ifndef WFRM_ANALYSIS_DIFFERENTIAL_H_
#define WFRM_ANALYSIS_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace wfrm::analysis {

/// One generated differential instance: a complete random world (RDL
/// org model, PL policy set, workflow spec) plus what happened when the
/// analyzer ran on it. Every field is reproducible from `seed` alone —
/// the scripts round-trip through the normal parsers, so a dumped case
/// replays byte-identically.
struct DifferentialCase {
  uint64_t seed = 0;
  std::string rdl;
  std::string pl;
  std::string workflow;

  /// Filled in by RunDifferentialCase.
  bool satisfiable = false;
  size_t candidate_total = 0;
  std::string report;
};

/// Deterministically generates the scripts for `seed` (outcome fields
/// untouched).
DifferentialCase GenerateCase(uint64_t seed);

/// The oracle-differential check (ISSUE 8): builds the world of `seed`,
/// derives every step's candidate set through the live enforcement
/// pipeline, solves, and then cross-examines the solver with three
/// independent judges:
///
///  * a claimed witness is checked per-activity against a fresh
///    `Submit` — every assignment must be a resource the enforcement
///    oracle itself offers (substitution-tier picks are confirmed by
///    occupying the primaries and re-submitting);
///  * a claimed witness is checked against the spec's constraints by a
///    direct re-implementation that shares no code with the solver;
///  * a claimed UNSAT is confirmed by brute-force enumeration of the
///    full candidate product, and valued mode's minimum cost is compared
///    against the brute-forced optimum.
///
/// Returns OK when every check agrees; otherwise an ExecutionError
/// naming the first disagreement. `out` (optional) receives the case —
/// on failure, dump it with DumpRepro for an offline replay.
Status RunDifferentialCase(uint64_t seed, DifferentialCase* out = nullptr);

/// Writes `<dir>/case-<seed>.{rdl,pl,wf,report.txt}` (creating `dir` if
/// needed) so a failing seed can be replayed outside the harness.
Status DumpRepro(const DifferentialCase& c, const std::string& dir);

}  // namespace wfrm::analysis

#endif  // WFRM_ANALYSIS_DIFFERENTIAL_H_
