#ifndef WFRM_ANALYSIS_WORKFLOW_ANALYZER_H_
#define WFRM_ANALYSIS_WORKFLOW_ANALYZER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/workflow_spec.h"
#include "analysis/wsp_solver.h"
#include "common/result.h"
#include "core/resource_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace wfrm::analysis {

struct AnalysisOptions {
  /// Resiliency level: re-solve under every (or, above
  /// max_resiliency_subsets, a seeded sample of) k-subset of unavailable
  /// resources. 0 = plain WSP only.
  size_t resiliency_k = 0;
  /// Valued WSP: minimize the total substitution-policy cost of the
  /// witness instead of stopping at the first one.
  bool valued = false;
  /// Also derive each step's substitution tier (cost-1 candidates) by
  /// briefly occupying the primary candidates and re-enforcing — the
  /// pipeline itself answers "who substitutes when the primaries are
  /// gone". Disable for a strictly read-only analysis of primaries.
  bool include_substitution_tier = true;
  /// Above this many k-subsets the resiliency sweep samples instead of
  /// enumerating.
  size_t max_resiliency_subsets = 512;
  uint64_t resiliency_sample_seed = 42;
  /// Search budget forwarded to SolveWsp.
  size_t max_search_nodes = 1 << 22;
  /// wfrm_analysis_* instruments are registered here when non-null.
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-null, every Analyze delivers an "analyze" span tree
  /// (candidate derivation, solve, resiliency) here.
  obs::TraceSink* trace_sink = nullptr;
};

struct ResiliencyReport {
  bool checked = false;
  size_t k = 0;
  /// True when every examined k-subset of unavailable resources leaves
  /// the workflow satisfiable (k = 0: identical to plain satisfiability).
  bool resilient = false;
  size_t universe_size = 0;
  size_t subsets_checked = 0;
  bool sampled = false;
  /// First failing subset found (empty when resilient, or when the base
  /// instance is already unsatisfiable with nothing unavailable).
  std::vector<org::ResourceRef> failing_subset;
};

/// Everything one Analyze produced: the derived candidate sets, the
/// solve outcome (witness or minimal core) and the resiliency sweep.
struct AnalysisReport {
  std::string workflow;
  std::vector<StepCandidates> candidates;
  SolveResult solve;
  ResiliencyReport resiliency;
  int64_t elapsed_micros = 0;

  /// Explain-style prose report: per-step candidate tiers, then the
  /// witness assignment (with substitution costs) or the named
  /// unsatisfiable core, then the resiliency verdict.
  std::string ToString() const;
};

/// The offline workflow analyzer (ROADMAP item 4): answers "can every
/// activity of this workflow be staffed, under the current policies and
/// resource directory" by deriving every step's candidate set through
/// the *live* enforcement pipeline (compiled fast path, caches and all)
/// and searching assignments under the spec's binding constraints.
///
/// Because candidates come from ResourceManager::Submit, the analyzer
/// doubles as a differential harness for the rewriter: every claimed
/// witness can be re-verified step-by-step against Enforce (see
/// analysis/differential.h).
///
/// The substitution tier briefly allocates primary candidates to make
/// the pipeline produce its §4.3 alternatives, then releases them —
/// run Analyze on a manager whose allocation state you are free to
/// perturb (an offline copy, or a quiesced instance).
class WorkflowAnalyzer {
 public:
  explicit WorkflowAnalyzer(core::ResourceManager* rm,
                            AnalysisOptions options = {});

  Result<AnalysisReport> Analyze(const WorkflowSpec& spec) const;

  /// Candidate derivation alone (exposed for the differential fuzzer and
  /// tests): element i describes spec.steps[i].
  Result<std::vector<StepCandidates>> DeriveCandidates(
      const WorkflowSpec& spec, obs::TraceSpan* parent = nullptr) const;

  const AnalysisOptions& options() const { return options_; }

 private:
  Result<StepCandidates> DeriveOne(const WorkflowStep& step,
                                   obs::TraceSpan* parent) const;

  Result<ResiliencyReport> CheckResiliency(
      const WorkflowSpec& spec, const std::vector<StepCandidates>& candidates,
      bool base_satisfiable, obs::TraceSpan* parent) const;

  core::ResourceManager* rm_;
  AnalysisOptions options_;

  /// Resolved instruments; all null when options_.metrics is null.
  struct Instruments {
    obs::Counter* solves_sat = nullptr;
    obs::Counter* solves_unsat = nullptr;
    obs::Counter* search_nodes = nullptr;
    obs::Counter* backtracks = nullptr;
    obs::Counter* candidates_derived = nullptr;
    obs::Counter* resiliency_subsets = nullptr;
    obs::Histogram* solve_micros = nullptr;
  };
  Instruments metrics_;
};

}  // namespace wfrm::analysis

#endif  // WFRM_ANALYSIS_WORKFLOW_ANALYZER_H_
