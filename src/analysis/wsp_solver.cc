#include "analysis/wsp_solver.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "common/strings.h"

namespace wfrm::analysis {

namespace {

/// Union-find over step indexes (binding-of-duty block construction).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// A binding-of-duty block: steps forced onto one resource, with the
/// intersection of their candidate sets (cost = sum of member costs per
/// resource, so valued search accounts for every member's tier).
struct Block {
  std::vector<size_t> step_indexes;
  std::vector<WspCandidate> candidates;  // Sorted by (cost, resource).
};

/// The lowered instance the search runs on.
struct Lowered {
  std::vector<Block> blocks;
  std::vector<size_t> block_of_step;
  /// Separation pairs (block a, block b, constraint index).
  struct SodPair {
    size_t a, b, constraint;
  };
  std::vector<SodPair> sod_pairs;
  /// Cardinality scopes (distinct blocks, k, constraint index).
  struct AtMost {
    std::vector<size_t> blocks;
    size_t k;
    size_t constraint;
  };
  std::vector<AtMost> atmost;
};

/// Steps + rendered constraints for a core naming `constraint_indexes`.
UnsatCore MakeCore(const WorkflowSpec& spec,
                   const std::vector<size_t>& constraint_indexes,
                   std::vector<std::string> steps, std::string reason) {
  UnsatCore core;
  std::set<std::string> step_set(steps.begin(), steps.end());
  for (size_t ci : constraint_indexes) {
    const WorkflowConstraint& c = spec.constraints[ci];
    core.constraints.push_back(c.ToString());
    step_set.insert(c.steps.begin(), c.steps.end());
  }
  core.steps.assign(step_set.begin(), step_set.end());
  core.reason = std::move(reason);
  return core;
}

/// Lowers spec + candidates under a constraint mask (enabled[i] — the
/// core minimizer re-lowers with constraints deleted). Returns nullopt
/// with `core` filled when lowering alone proves unsatisfiability (empty
/// step set, empty block intersection, separation inside a block).
std::optional<Lowered> Lower(const WorkflowSpec& spec,
                             const std::vector<StepCandidates>& candidates,
                             const std::vector<bool>& enabled,
                             UnsatCore* core) {
  const size_t n = spec.steps.size();

  // Steps with no candidates at all are unsatisfiable before any
  // constraint applies; name the step and the pipeline's reason.
  for (size_t i = 0; i < n; ++i) {
    if (candidates[i].candidates.empty()) {
      std::string reason =
          "step '" + spec.steps[i].name + "' has no candidate resource";
      if (!candidates[i].enforcement_status.ok()) {
        reason += " (" + candidates[i].enforcement_status.ToString() + ")";
      }
      *core = MakeCore(spec, {}, {spec.steps[i].name}, std::move(reason));
      return std::nullopt;
    }
  }

  UnionFind uf(n);
  for (size_t ci = 0; ci < spec.constraints.size(); ++ci) {
    if (!enabled[ci]) continue;
    const WorkflowConstraint& c = spec.constraints[ci];
    if (c.kind != ConstraintKind::kBindingOfDuty) continue;
    size_t first = spec.FindStep(c.steps[0]);
    for (const std::string& step : c.steps) {
      uf.Union(first, spec.FindStep(step));
    }
  }

  Lowered lowered;
  lowered.block_of_step.assign(n, 0);
  std::map<size_t, size_t> root_to_block;
  for (size_t i = 0; i < n; ++i) {
    size_t root = uf.Find(i);
    auto [it, inserted] = root_to_block.emplace(root, lowered.blocks.size());
    if (inserted) lowered.blocks.emplace_back();
    lowered.blocks[it->second].step_indexes.push_back(i);
    lowered.block_of_step[i] = it->second;
  }

  /// The BoD constraints that merged `block` (for core naming).
  auto bod_constraints_of = [&](const Block& block) {
    std::vector<size_t> out;
    std::set<size_t> members(block.step_indexes.begin(),
                             block.step_indexes.end());
    for (size_t ci = 0; ci < spec.constraints.size(); ++ci) {
      if (!enabled[ci]) continue;
      const WorkflowConstraint& c = spec.constraints[ci];
      if (c.kind != ConstraintKind::kBindingOfDuty) continue;
      bool touches = false;
      for (const std::string& step : c.steps) {
        if (members.count(spec.FindStep(step)) > 0) touches = true;
      }
      if (touches) out.push_back(ci);
    }
    return out;
  };

  // Block candidate sets: intersection over members, costs summed.
  for (Block& block : lowered.blocks) {
    std::map<org::ResourceRef, int> cost_sum;
    for (const WspCandidate& c : candidates[block.step_indexes[0]].candidates) {
      cost_sum[c.resource] = c.cost;
    }
    for (size_t m = 1; m < block.step_indexes.size(); ++m) {
      std::map<org::ResourceRef, int> next;
      for (const WspCandidate& c :
           candidates[block.step_indexes[m]].candidates) {
        auto it = cost_sum.find(c.resource);
        if (it != cost_sum.end()) next[c.resource] = it->second + c.cost;
      }
      cost_sum = std::move(next);
    }
    for (const auto& [ref, cost] : cost_sum) {
      block.candidates.push_back({ref, cost});
    }
    std::sort(block.candidates.begin(), block.candidates.end(),
              [](const WspCandidate& a, const WspCandidate& b) {
                return a.cost != b.cost ? a.cost < b.cost
                                        : a.resource < b.resource;
              });
    if (block.candidates.empty()) {
      std::vector<std::string> steps;
      for (size_t i : block.step_indexes) steps.push_back(spec.steps[i].name);
      *core = MakeCore(spec, bod_constraints_of(block), steps,
                       "bound steps " + Join(steps, ", ") +
                           " share no common candidate resource");
      return std::nullopt;
    }
  }

  for (size_t ci = 0; ci < spec.constraints.size(); ++ci) {
    if (!enabled[ci]) continue;
    const WorkflowConstraint& c = spec.constraints[ci];
    if (c.kind == ConstraintKind::kSeparationOfDuty) {
      for (size_t x = 0; x < c.steps.size(); ++x) {
        for (size_t y = x + 1; y < c.steps.size(); ++y) {
          size_t a = lowered.block_of_step[spec.FindStep(c.steps[x])];
          size_t b = lowered.block_of_step[spec.FindStep(c.steps[y])];
          if (a == b) {
            std::vector<size_t> culprit =
                bod_constraints_of(lowered.blocks[a]);
            culprit.push_back(ci);
            *core = MakeCore(spec, culprit, {},
                             "steps '" + c.steps[x] + "' and '" + c.steps[y] +
                                 "' must be separated but are bound to the "
                                 "same resource");
            return std::nullopt;
          }
          lowered.sod_pairs.push_back({a, b, ci});
        }
      }
    } else if (c.kind == ConstraintKind::kAtMostK) {
      Lowered::AtMost scope;
      std::set<size_t> blocks;
      for (const std::string& step : c.steps) {
        blocks.insert(lowered.block_of_step[spec.FindStep(step)]);
      }
      scope.blocks.assign(blocks.begin(), blocks.end());
      scope.k = c.k;
      scope.constraint = ci;
      lowered.atmost.push_back(std::move(scope));
    }
  }
  return lowered;
}

/// The DFS over blocks. Returns kOk with `found` false/true, or an error
/// when the node budget is exhausted.
class Search {
 public:
  Search(const Lowered& lowered, const SolveOptions& options,
         SolveStats* stats)
      : lowered_(lowered), options_(options), stats_(stats) {
    // Fail-first: fewest candidates earliest (stable, so deterministic).
    order_.resize(lowered.blocks.size());
    std::iota(order_.begin(), order_.end(), size_t{0});
    std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
      return lowered.blocks[a].candidates.size() <
             lowered.blocks[b].candidates.size();
    });
    chosen_.assign(lowered.blocks.size(), nullptr);
    // Per-block minimum candidate cost, for the valued lower bound.
    min_cost_.resize(lowered.blocks.size());
    for (size_t b = 0; b < lowered.blocks.size(); ++b) {
      min_cost_[b] = lowered.blocks[b].candidates.front().cost;
    }
  }

  /// Runs the search; fills best_* when a witness exists.
  Status Run() {
    remaining_min_cost_.assign(order_.size() + 1, 0);
    for (size_t d = order_.size(); d-- > 0;) {
      remaining_min_cost_[d] =
          remaining_min_cost_[d + 1] + min_cost_[order_[d]];
    }
    return Dfs(0, 0);
  }

  bool found() const { return found_; }
  int64_t best_cost() const { return best_cost_; }
  /// The chosen candidate per block (valid when found()).
  const std::vector<const WspCandidate*>& best() const { return best_; }

 private:
  Status Dfs(size_t depth, int64_t cost_so_far) {
    if (found_ && !options_.valued) return Status::OK();
    if (depth == order_.size()) {
      if (!found_ || cost_so_far < best_cost_) {
        found_ = true;
        best_cost_ = cost_so_far;
        best_ = chosen_;
      }
      return Status::OK();
    }
    // Valued lower bound: even staffing every remaining block with its
    // cheapest candidate cannot beat the incumbent. `>=` keeps the
    // first-found witness on ties — the deterministic tie-break.
    if (options_.valued && found_ &&
        cost_so_far + remaining_min_cost_[depth] >= best_cost_) {
      return Status::OK();
    }
    size_t block_index = order_[depth];
    bool any_child = false;
    for (const WspCandidate& candidate :
         lowered_.blocks[block_index].candidates) {
      if (++stats_->nodes > options_.max_nodes) {
        return Status::ExecutionError(
            "WSP search budget exhausted after " +
            std::to_string(stats_->nodes) + " nodes");
      }
      chosen_[block_index] = &candidate;
      if (Consistent(block_index)) {
        any_child = true;
        WFRM_RETURN_NOT_OK(Dfs(depth + 1, cost_so_far + candidate.cost));
        if (found_ && !options_.valued) return Status::OK();
      }
      chosen_[block_index] = nullptr;
    }
    if (!any_child) ++stats_->backtracks;
    return Status::OK();
  }

  /// Checks every separation pair and cardinality scope touching
  /// `block_index` against the currently assigned blocks.
  bool Consistent(size_t block_index) const {
    for (const Lowered::SodPair& pair : lowered_.sod_pairs) {
      if (pair.a != block_index && pair.b != block_index) continue;
      const WspCandidate* a = chosen_[pair.a];
      const WspCandidate* b = chosen_[pair.b];
      if (a != nullptr && b != nullptr && a->resource == b->resource) {
        return false;
      }
    }
    for (const Lowered::AtMost& scope : lowered_.atmost) {
      bool touches = false;
      for (size_t b : scope.blocks) touches |= b == block_index;
      if (!touches) continue;
      std::set<org::ResourceRef> distinct;
      for (size_t b : scope.blocks) {
        if (chosen_[b] != nullptr) distinct.insert(chosen_[b]->resource);
      }
      // Assigned blocks alone already exceed k: no completion fixes it
      // (unassigned blocks can only add resources, never remove).
      if (distinct.size() > scope.k) return false;
    }
    return true;
  }

  const Lowered& lowered_;
  const SolveOptions& options_;
  SolveStats* stats_;
  std::vector<size_t> order_;
  std::vector<int64_t> min_cost_;
  std::vector<int64_t> remaining_min_cost_;
  std::vector<const WspCandidate*> chosen_;
  bool found_ = false;
  int64_t best_cost_ = 0;
  std::vector<const WspCandidate*> best_;
};

/// One full solve under a constraint mask.
Result<SolveResult> SolveMasked(const WorkflowSpec& spec,
                                const std::vector<StepCandidates>& candidates,
                                const std::vector<bool>& enabled,
                                const SolveOptions& options) {
  SolveResult result;
  if (spec.steps.empty()) {
    // The empty workflow is vacuously satisfiable.
    result.satisfiable = true;
    return result;
  }
  UnsatCore core;
  std::optional<Lowered> lowered = Lower(spec, candidates, enabled, &core);
  if (!lowered.has_value()) {
    result.satisfiable = false;
    result.core = std::move(core);
    return result;
  }
  Search search(*lowered, options, &result.stats);
  WFRM_RETURN_NOT_OK(search.Run());
  if (!search.found()) {
    result.satisfiable = false;
    std::vector<size_t> active;
    for (size_t ci = 0; ci < enabled.size(); ++ci) {
      if (enabled[ci]) active.push_back(ci);
    }
    result.core = MakeCore(spec, active, {},
                           "no assignment satisfies the constraints");
    return result;
  }
  result.satisfiable = true;
  result.total_cost = search.best_cost();
  result.witness.resize(spec.steps.size());
  for (size_t b = 0; b < lowered->blocks.size(); ++b) {
    const WspCandidate* choice = search.best()[b];
    for (size_t step_index : lowered->blocks[b].step_indexes) {
      // Per-step cost: the step's own tier for this resource (the block
      // cost is the sum of these).
      int step_cost = 0;
      for (const WspCandidate& c : candidates[step_index].candidates) {
        if (c.resource == choice->resource) step_cost = c.cost;
      }
      result.witness[step_index] = {spec.steps[step_index].name,
                                    choice->resource, step_cost};
    }
  }
  return result;
}

}  // namespace

void StepCandidates::Normalize() {
  std::sort(candidates.begin(), candidates.end(),
            [](const WspCandidate& a, const WspCandidate& b) {
              return a.cost != b.cost ? a.cost < b.cost
                                      : a.resource < b.resource;
            });
  std::set<org::ResourceRef> seen;
  std::vector<WspCandidate> unique;
  for (WspCandidate& c : candidates) {
    if (seen.insert(c.resource).second) unique.push_back(std::move(c));
  }
  candidates = std::move(unique);
}

bool StepCandidates::Contains(const org::ResourceRef& ref) const {
  for (const WspCandidate& c : candidates) {
    if (c.resource == ref) return true;
  }
  return false;
}

std::string UnsatCore::ToString() const {
  std::string out = "UNSATISFIABLE: " + reason + "\n";
  if (!steps.empty()) {
    out += "  steps involved: " + Join(steps, ", ") + "\n";
  }
  for (const std::string& c : constraints) {
    out += "  constraint: " + c + "\n";
  }
  return out;
}

Result<SolveResult> SolveWsp(const WorkflowSpec& spec,
                             const std::vector<StepCandidates>& candidates,
                             const SolveOptions& options) {
  if (candidates.size() != spec.steps.size()) {
    return Status::InvalidArgument(
        "candidate sets (" + std::to_string(candidates.size()) +
        ") do not align with workflow steps (" +
        std::to_string(spec.steps.size()) + ")");
  }
  std::vector<bool> enabled(spec.constraints.size(), true);
  WFRM_ASSIGN_OR_RETURN(SolveResult result,
                        SolveMasked(spec, candidates, enabled, options));
  if (result.satisfiable || !options.minimize_core) return result;

  // Deletion-based core minimization: drop each constraint in turn; if
  // the instance stays UNSAT without it, it is not needed in the core.
  // What survives is subset-minimal with respect to this order, which is
  // exactly the "named core" the report promises.
  SolveStats accumulated = result.stats;
  for (size_t ci = 0; ci < enabled.size(); ++ci) {
    if (!enabled[ci]) continue;
    enabled[ci] = false;
    WFRM_ASSIGN_OR_RETURN(SolveResult probe,
                          SolveMasked(spec, candidates, enabled, options));
    accumulated.nodes += probe.stats.nodes;
    accumulated.backtracks += probe.stats.backtracks;
    if (probe.satisfiable) {
      enabled[ci] = true;  // Needed: removing it flips to SAT.
    } else {
      result.core = std::move(probe.core);
    }
  }
  result.stats = accumulated;
  return result;
}

Result<std::optional<std::vector<WspAssignment>>> BruteForceWitness(
    const WorkflowSpec& spec, const std::vector<StepCandidates>& candidates,
    uint64_t max_assignments) {
  if (candidates.size() != spec.steps.size()) {
    return Status::InvalidArgument("candidate sets do not align with steps");
  }
  const size_t n = spec.steps.size();
  if (n == 0) {
    return std::optional<std::vector<WspAssignment>>(
        std::in_place);  // vacuously satisfiable: the empty witness
  }
  uint64_t product = 1;
  for (const StepCandidates& sc : candidates) {
    if (sc.candidates.empty()) {
      return std::optional<std::vector<WspAssignment>>{std::nullopt};
    }
    product *= sc.candidates.size();
    if (product > max_assignments) {
      return Status::ExecutionError(
          "instance too large to brute-force (> " +
          std::to_string(max_assignments) + " assignments)");
    }
  }

  /// Direct constraint check on a complete assignment — no blocks, no
  /// pruning, independent of the solver's machinery by design.
  auto satisfied = [&](const std::vector<size_t>& pick) {
    for (const WorkflowConstraint& c : spec.constraints) {
      std::vector<const org::ResourceRef*> refs;
      for (const std::string& step : c.steps) {
        size_t i = spec.FindStep(step);
        refs.push_back(&candidates[i].candidates[pick[i]].resource);
      }
      switch (c.kind) {
        case ConstraintKind::kBindingOfDuty:
          for (size_t i = 1; i < refs.size(); ++i) {
            if (!(*refs[i] == *refs[0])) return false;
          }
          break;
        case ConstraintKind::kSeparationOfDuty:
          for (size_t i = 0; i < refs.size(); ++i) {
            for (size_t j = i + 1; j < refs.size(); ++j) {
              if (*refs[i] == *refs[j]) return false;
            }
          }
          break;
        case ConstraintKind::kAtMostK: {
          std::set<org::ResourceRef> distinct;
          for (const org::ResourceRef* r : refs) distinct.insert(*r);
          if (distinct.size() > c.k) return false;
          break;
        }
      }
    }
    return true;
  };

  std::vector<size_t> pick(n, 0);
  while (true) {
    if (satisfied(pick)) {
      std::vector<WspAssignment> witness;
      for (size_t i = 0; i < n; ++i) {
        const WspCandidate& c = candidates[i].candidates[pick[i]];
        witness.push_back({spec.steps[i].name, c.resource, c.cost});
      }
      return std::optional<std::vector<WspAssignment>>{std::move(witness)};
    }
    // Odometer increment.
    size_t i = 0;
    while (i < n && ++pick[i] == candidates[i].candidates.size()) {
      pick[i] = 0;
      ++i;
    }
    if (i == n) return std::optional<std::vector<WspAssignment>>{std::nullopt};
  }
}

}  // namespace wfrm::analysis
