#ifndef WFRM_ANALYSIS_WSP_SOLVER_H_
#define WFRM_ANALYSIS_WSP_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/workflow_spec.h"
#include "common/result.h"
#include "org/org_model.h"

namespace wfrm::analysis {

/// One resource a step may be staffed with, with the substitution cost
/// the enforcement pipeline attached to it: 0 for a resource the primary
/// (qualification + requirement) rewriting offers, 1 for one reachable
/// only through a §4.3 substitution alternative.
struct WspCandidate {
  org::ResourceRef resource;
  int cost = 0;
};

/// The candidate set of one workflow step, derived through the
/// enforcement pipeline (WorkflowAnalyzer::DeriveCandidates) or built by
/// hand in tests. Candidates are kept sorted by (cost, resource) and
/// deduplicated by resource (cheapest tier wins), so search order — and
/// therefore valued-WSP tie-breaking — is deterministic.
struct StepCandidates {
  std::string step;
  std::vector<WspCandidate> candidates;
  /// Why the set is empty when it is (kNoQualifiedResource under the
  /// CWA, kResourceUnavailable, ...). OK for non-empty sets.
  Status enforcement_status;

  /// Sorts by (cost, resource) and drops duplicate resources, keeping
  /// the cheapest tier of each.
  void Normalize();
  bool Contains(const org::ResourceRef& ref) const;
};

/// One step's staffing in a witness.
struct WspAssignment {
  std::string step;
  org::ResourceRef resource;
  int cost = 0;
};

/// A named explanation of unsatisfiability: the minimal constraint set
/// that cannot be met together (deletion-minimized, so every listed
/// constraint is necessary) plus the steps involved.
struct UnsatCore {
  std::vector<std::string> steps;
  /// Rendered constraints (WorkflowConstraint::ToString).
  std::vector<std::string> constraints;
  std::string reason;

  std::string ToString() const;
};

struct SolveStats {
  /// Candidate trials performed by the search.
  size_t nodes = 0;
  size_t backtracks = 0;
};

struct SolveResult {
  bool satisfiable = false;
  /// When satisfiable: one assignment per step, in spec order. Valued
  /// mode returns the minimum-cost witness; ties break toward the
  /// lexicographically first assignment under the deterministic search
  /// order, so repeated solves agree.
  std::vector<WspAssignment> witness;
  int64_t total_cost = 0;
  /// When unsatisfiable.
  UnsatCore core;
  SolveStats stats;
};

struct SolveOptions {
  /// false: stop at the first satisfying assignment. true: valued WSP —
  /// branch-and-bound over total substitution cost.
  bool valued = false;
  /// Abort with an error when the search tries more candidates than
  /// this (malformed or adversarial instances; the analyzer surfaces the
  /// error rather than hanging).
  size_t max_nodes = 1 << 22;
  /// Deletion-minimize the UNSAT core (re-solves with constraint
  /// subsets; disable for bulk resiliency sweeps where only the verdict
  /// matters).
  bool minimize_core = true;
};

/// Decides workflow satisfiability over the given candidate sets:
/// binding-of-duty constraints are collapsed into blocks (intersecting
/// member candidate sets), then the search assigns blocks in a
/// fewest-candidates-first order with forward checks on the
/// user-independent separation/cardinality constraints — the
/// pattern-based pruning of Crampton/Gutin, where only the equal/distinct
/// shape of a partial assignment matters.
///
/// `candidates[i]` must describe `spec.steps[i]`.
Result<SolveResult> SolveWsp(const WorkflowSpec& spec,
                             const std::vector<StepCandidates>& candidates,
                             const SolveOptions& options = {});

/// Deliberately naive enumerator for the differential harness: walks the
/// full cartesian product of the candidate sets and checks every
/// constraint directly per complete assignment — no blocks, no
/// propagation, no shared code with SolveWsp. Returns the first witness
/// found, nullopt when none exists, or an error when the product exceeds
/// `max_assignments` (the instance is too big to brute-force).
Result<std::optional<std::vector<WspAssignment>>> BruteForceWitness(
    const WorkflowSpec& spec, const std::vector<StepCandidates>& candidates,
    uint64_t max_assignments = 1 << 20);

}  // namespace wfrm::analysis

#endif  // WFRM_ANALYSIS_WSP_SOLVER_H_
