#include "analysis/workflow_spec.h"

#include <cctype>

#include "common/strings.h"

namespace wfrm::analysis {

namespace {

/// Strips `--` comments (to end of line); quotes are respected so an
/// RQL string literal may contain a double dash.
std::string StripComments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\'') in_string = !in_string;
    if (!in_string && c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
      out.push_back('\n');
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Splits on ';' outside string literals; empty statements are dropped.
std::vector<std::string> SplitStatements(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (char c : text) {
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      std::string_view trimmed = StripWhitespace(current);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  std::string_view trimmed = StripWhitespace(current);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

/// Pops the leading identifier-like word ([A-Za-z0-9_]+) off `rest`.
std::string TakeWord(std::string_view* rest) {
  *rest = StripWhitespace(*rest);
  size_t n = 0;
  while (n < rest->size() &&
         (std::isalnum(static_cast<unsigned char>((*rest)[n])) != 0 ||
          (*rest)[n] == '_')) {
    ++n;
  }
  std::string word(rest->substr(0, n));
  rest->remove_prefix(n);
  *rest = StripWhitespace(*rest);
  return word;
}

/// Parses a `a, b, c` step-name list (commas optional between names).
Result<std::vector<std::string>> ParseStepList(std::string_view rest,
                                               const std::string& verb) {
  std::vector<std::string> names;
  while (!StripWhitespace(rest).empty()) {
    std::string name = TakeWord(&rest);
    if (name.empty()) {
      return Status::ParseError(verb + ": expected a step name, got '" +
                                std::string(rest) + "'");
    }
    names.push_back(std::move(name));
    if (!rest.empty() && rest.front() == ',') rest.remove_prefix(1);
  }
  if (names.size() < 2) {
    return Status::ParseError(verb + " lists fewer than two steps");
  }
  return names;
}

}  // namespace

std::string WorkflowConstraint::ToString() const {
  std::string out;
  switch (kind) {
    case ConstraintKind::kBindingOfDuty:
      out = "Bind ";
      break;
    case ConstraintKind::kSeparationOfDuty:
      out = "Separate ";
      break;
    case ConstraintKind::kAtMostK:
      out = "AtMost " + std::to_string(k) + " Of ";
      break;
  }
  out += Join(steps, ", ");
  return out;
}

size_t WorkflowSpec::FindStep(const std::string& step_name) const {
  for (size_t i = 0; i < steps.size(); ++i) {
    if (EqualsIgnoreCase(steps[i].name, step_name)) return i;
  }
  return kNotFound;
}

std::string WorkflowSpec::ToString() const {
  std::string out = "Workflow " + (name.empty() ? "Unnamed" : name) + ";\n";
  for (const WorkflowStep& step : steps) {
    out += "Task " + step.name + ": " + step.rql + ";\n";
  }
  for (const WorkflowConstraint& c : constraints) {
    out += c.ToString() + ";\n";
  }
  return out;
}

Result<WorkflowSpec> ParseWorkflowSpec(std::string_view text) {
  WorkflowSpec spec;
  for (const std::string& statement : SplitStatements(StripComments(text))) {
    std::string_view rest = statement;
    std::string verb = AsciiToLower(TakeWord(&rest));
    if (verb == "workflow") {
      std::string name = TakeWord(&rest);
      if (name.empty()) {
        return Status::ParseError("Workflow: expected a name");
      }
      spec.name = std::move(name);
      continue;
    }
    if (verb == "task") {
      WorkflowStep step;
      step.name = TakeWord(&rest);
      if (step.name.empty()) {
        return Status::ParseError("Task: expected a step name");
      }
      if (rest.empty() || rest.front() != ':') {
        return Status::ParseError("Task " + step.name +
                                  ": expected ':' before the RQL query");
      }
      rest.remove_prefix(1);
      step.rql = std::string(StripWhitespace(rest));
      if (step.rql.empty()) {
        return Status::ParseError("Task " + step.name + ": empty RQL query");
      }
      if (spec.FindStep(step.name) != WorkflowSpec::kNotFound) {
        return Status::ParseError("duplicate Task name '" + step.name + "'");
      }
      spec.steps.push_back(std::move(step));
      continue;
    }
    if (verb == "bind" || verb == "separate") {
      WorkflowConstraint c;
      c.kind = verb == "bind" ? ConstraintKind::kBindingOfDuty
                              : ConstraintKind::kSeparationOfDuty;
      WFRM_ASSIGN_OR_RETURN(c.steps, ParseStepList(rest, statement));
      spec.constraints.push_back(std::move(c));
      continue;
    }
    if (verb == "atmost") {
      WorkflowConstraint c;
      c.kind = ConstraintKind::kAtMostK;
      std::string k_word = TakeWord(&rest);
      char* end = nullptr;
      c.k = std::strtoull(k_word.c_str(), &end, 10);
      if (k_word.empty() || *end != '\0' || c.k == 0) {
        return Status::ParseError("AtMost: expected a count >= 1, got '" +
                                  k_word + "'");
      }
      std::string of = AsciiToLower(TakeWord(&rest));
      if (of != "of") {
        return Status::ParseError("AtMost " + k_word +
                                  ": expected 'Of' before the step list");
      }
      WFRM_ASSIGN_OR_RETURN(c.steps, ParseStepList(rest, statement));
      spec.constraints.push_back(std::move(c));
      continue;
    }
    return Status::ParseError("expected Workflow, Task, Bind, Separate or "
                              "AtMost; got '" +
                              statement + "'");
  }
  // Constraints may be written before the tasks they mention, so
  // reference checking happens after the whole script is read.
  for (const WorkflowConstraint& c : spec.constraints) {
    for (const std::string& step : c.steps) {
      if (spec.FindStep(step) == WorkflowSpec::kNotFound) {
        return Status::ParseError("constraint '" + c.ToString() +
                                  "' references unknown step '" + step + "'");
      }
    }
  }
  return spec;
}

}  // namespace wfrm::analysis
