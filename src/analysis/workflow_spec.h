#ifndef WFRM_ANALYSIS_WORKFLOW_SPEC_H_
#define WFRM_ANALYSIS_WORKFLOW_SPEC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace wfrm::analysis {

/// The constraint vocabulary of the workflow satisfiability problem
/// (Crampton/Gutin): all three are user-independent — whether an
/// assignment satisfies them depends only on the *pattern* of equal /
/// distinct resources, never on which concrete resource was picked.
enum class ConstraintKind {
  /// Binding of duty: every listed step is staffed by the same resource.
  kBindingOfDuty,
  /// Separation of duty: the listed steps get pairwise distinct
  /// resources.
  kSeparationOfDuty,
  /// At most `k` distinct resources staff the listed steps.
  kAtMostK,
};

/// One constraint over named workflow steps.
struct WorkflowConstraint {
  ConstraintKind kind = ConstraintKind::kBindingOfDuty;
  std::vector<std::string> steps;
  /// kAtMostK only.
  size_t k = 0;

  /// Renders back to the script syntax ("Separate a, b").
  std::string ToString() const;
};

/// One activity of the workflow: a named step whose staffing question is
/// a full RQL query (the "who" the paper's pipeline answers). The query
/// text is handed to the existing enforcement pipeline verbatim, so
/// everything RQL can express — Where clauses, fully bound activity
/// specifications — is available to the analyzer.
struct WorkflowStep {
  std::string name;
  std::string rql;
};

/// A whole-workflow staffing problem: steps plus binding constraints.
///
/// Script syntax — a small extension of the PL/RDL statement style
/// (';'-separated, keywords case-insensitive, `--` comments):
///
///   Workflow <name>;
///   Task <step>: <rql query>;
///   Bind <step> {, <step>};            -- binding of duty
///   Separate <step> {, <step>};        -- separation of duty
///   AtMost <k> Of <step> {, <step>};   -- cardinality
struct WorkflowSpec {
  std::string name;
  std::vector<WorkflowStep> steps;
  std::vector<WorkflowConstraint> constraints;

  /// Index of the named step, or npos.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t FindStep(const std::string& step_name) const;

  /// Re-renders the spec as a parseable script (repro dumps round-trip
  /// through this).
  std::string ToString() const;
};

/// Parses a workflow script. Validates that step names are unique, every
/// constraint references declared steps, Bind/Separate/AtMost list at
/// least two steps, and AtMost's k is >= 1.
Result<WorkflowSpec> ParseWorkflowSpec(std::string_view text);

}  // namespace wfrm::analysis

#endif  // WFRM_ANALYSIS_WORKFLOW_SPEC_H_
