#include "analysis/differential.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "analysis/workflow_analyzer.h"
#include "analysis/workflow_spec.h"
#include "analysis/wsp_solver.h"
#include "core/resource_manager.h"
#include "org/org_model.h"
#include "org/rdl_parser.h"
#include "policy/policy_store.h"

namespace wfrm::analysis {

namespace {

constexpr const char* kRegions[] = {"North", "South", "East", "West"};

std::string Num(uint64_t v) { return std::to_string(v); }

/// Checks a complete assignment against the spec's constraints with
/// plain set arithmetic — deliberately sharing no machinery with
/// SolveWsp (no blocks, no union-find, no propagation).
bool AssignmentSatisfies(const WorkflowSpec& spec,
                         const std::vector<org::ResourceRef>& picks) {
  for (const WorkflowConstraint& c : spec.constraints) {
    std::vector<org::ResourceRef> scope;
    for (const std::string& step : c.steps) {
      size_t i = spec.FindStep(step);
      if (i == WorkflowSpec::kNotFound) return false;
      scope.push_back(picks[i]);
    }
    switch (c.kind) {
      case ConstraintKind::kBindingOfDuty:
        for (const org::ResourceRef& r : scope) {
          if (!(r == scope.front())) return false;
        }
        break;
      case ConstraintKind::kSeparationOfDuty:
        for (size_t a = 0; a < scope.size(); ++a) {
          for (size_t b = a + 1; b < scope.size(); ++b) {
            if (scope[a] == scope[b]) return false;
          }
        }
        break;
      case ConstraintKind::kAtMostK: {
        std::set<org::ResourceRef> distinct(scope.begin(), scope.end());
        if (distinct.size() > c.k) return false;
        break;
      }
    }
  }
  return true;
}

/// Exhaustive minimum witness cost over the candidate product, or -1
/// when no assignment satisfies the constraints. Independent of both
/// SolveWsp and BruteForceWitness's early exit.
int64_t BruteForceMinCost(const WorkflowSpec& spec,
                          const std::vector<StepCandidates>& candidates) {
  if (spec.steps.empty()) return 0;
  for (const StepCandidates& step : candidates) {
    if (step.candidates.empty()) return -1;
  }
  std::vector<size_t> odo(candidates.size(), 0);
  int64_t best = -1;
  while (true) {
    std::vector<org::ResourceRef> picks;
    int64_t cost = 0;
    for (size_t i = 0; i < odo.size(); ++i) {
      const WspCandidate& c = candidates[i].candidates[odo[i]];
      picks.push_back(c.resource);
      cost += c.cost;
    }
    if (AssignmentSatisfies(spec, picks) && (best < 0 || cost < best)) {
      best = cost;
    }
    size_t i = 0;
    while (i < odo.size() && ++odo[i] == candidates[i].candidates.size()) {
      odo[i] = 0;
      ++i;
    }
    if (i == odo.size()) break;
  }
  return best;
}

/// Confirms one witness assignment against the enforcement oracle: a
/// fresh Submit must offer the resource, either directly or — for a
/// substitution-tier pick — after the primary candidates are occupied.
Status VerifyAgainstOracle(core::ResourceManager* rm, const std::string& rql,
                           const WspAssignment& a) {
  WFRM_ASSIGN_OR_RETURN(core::QueryOutcome outcome, rm->Submit(rql));
  if (!outcome.ok()) {
    return Status::ExecutionError(
        "oracle mismatch: witness assigns " + a.resource.ToString() +
        " to step '" + a.step + "' but Submit fails with " +
        outcome.status.ToString());
  }
  for (const org::ResourceRef& ref : outcome.candidates) {
    if (ref == a.resource) return Status::OK();
  }
  // Substitution tier: the oracle only reveals §4.3 alternatives once
  // the primaries are unavailable — occupy them and ask again.
  std::vector<core::Lease> held;
  for (const org::ResourceRef& ref : outcome.candidates) {
    Result<core::Lease> lease = rm->AllocateLease(ref);
    if (lease.ok()) held.push_back(*lease);
  }
  Result<core::QueryOutcome> shadowed = rm->Submit(rql);
  for (const core::Lease& lease : held) rm->Release(lease);
  if (shadowed.ok() && shadowed->ok()) {
    for (const org::ResourceRef& ref : shadowed->candidates) {
      if (ref == a.resource) return Status::OK();
    }
  }
  return Status::ExecutionError(
      "oracle mismatch: witness assigns " + a.resource.ToString() +
      " to step '" + a.step +
      "' but the enforcement pipeline never offers it");
}

}  // namespace

DifferentialCase GenerateCase(uint64_t seed) {
  DifferentialCase c;
  c.seed = seed;
  // splitmix-style scrambling so neighboring seeds diverge immediately.
  std::mt19937_64 rng(0x9E3779B97F4A7C15ull ^
                      (seed * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull));
  auto pick = [&rng](size_t n) { return static_cast<size_t>(rng() % n); };

  size_t num_types = 2 + pick(3);       // R0..R{n-1}
  size_t num_activities = 2 + pick(2);  // A0..A{n-1}

  // ---- RDL: a Staff hierarchy with random shape and instances ----------
  c.rdl = "Define Resource Type Staff (Grade Int, Region String);\n";
  for (size_t i = 0; i < num_types; ++i) {
    std::string parent =
        (i > 0 && pick(2) == 0) ? "R" + Num(pick(i)) : "Staff";
    c.rdl += "Define Resource Type R" + Num(i) + " Under " + parent + ";\n";
  }
  c.rdl += "Define Activity Type Job;\n";
  for (size_t j = 0; j < num_activities; ++j) {
    c.rdl += "Define Activity Type A" + Num(j) + " Under Job (Size Int);\n";
  }
  for (size_t i = 0; i < num_types; ++i) {
    size_t instances = 2 + pick(3);
    for (size_t k = 0; k < instances; ++k) {
      c.rdl += "Insert Resource R" + Num(i) + " 'r" + Num(i) + "_" + Num(k) +
               "' (Grade = " + Num(pick(10)) + ", Region = '" +
               kRegions[pick(4)] + "');\n";
    }
  }

  // ---- PL: qualifications, requirements, substitutions -----------------
  std::vector<std::vector<size_t>> qualified(num_activities);
  for (size_t j = 0; j < num_activities; ++j) {
    // Mostly qualified activities, with a deliberate CWA-unstaffable
    // minority so UNSAT cores stay exercised.
    size_t qualifies = pick(4) == 0 ? 0 : 1 + pick(2);
    for (size_t q = 0; q < qualifies; ++q) {
      size_t type = pick(num_types);
      qualified[j].push_back(type);
      c.pl += "Qualify R" + Num(type) + " For A" + Num(j) + ";\n";
    }
    if (pick(2) == 0) {
      std::string target =
          pick(2) == 0 ? "Staff" : "R" + Num(pick(num_types));
      c.pl += "Require " + target + " Where Grade >= " + Num(pick(6)) +
              " For A" + Num(j) + " With Size >= " + Num(pick(50)) + ";\n";
    }
    if (pick(2) == 0) {
      c.pl += "Substitute R" + Num(pick(num_types)) + " Where Region = '" +
              kRegions[pick(4)] + "' By R" + Num(pick(num_types)) +
              " For A" + Num(j) + " With Size < " + Num(50 + pick(100)) +
              ";\n";
    }
  }
  if (c.pl.empty()) c.pl = "Qualify R0 For A0;\n";

  // ---- Workflow: tasks plus random binding constraints -----------------
  size_t num_tasks = 2 + pick(3);
  c.workflow = "Workflow Case;\n";
  for (size_t t = 0; t < num_tasks; ++t) {
    size_t activity = pick(num_activities);
    // Mostly coherent (activity, type) pairs — Staff fans out to every
    // qualified subtype, a qualified type hits directly; the random
    // minority keeps unqualified-task UNSAT cores in the corpus.
    std::string rtype;
    if (pick(3) != 0 && !qualified[activity].empty()) {
      size_t q = pick(qualified[activity].size() + 1);
      rtype = q == qualified[activity].size()
                  ? "Staff"
                  : "R" + Num(qualified[activity][q]);
    } else {
      rtype = pick(3) == 0 ? "Staff" : "R" + Num(pick(num_types));
    }
    std::string where =
        pick(2) == 0 ? " Where Grade >= " + Num(pick(5)) : "";
    c.workflow += "Task t" + Num(t) + ": Select Id From " + rtype + where +
                  " For A" + Num(activity) + " With Size = " + Num(pick(100)) +
                  ";\n";
  }
  size_t num_constraints = pick(3);
  for (size_t n = 0; n < num_constraints; ++n) {
    std::vector<size_t> tasks(num_tasks);
    for (size_t i = 0; i < num_tasks; ++i) tasks[i] = i;
    for (size_t i = 0; i + 1 < num_tasks; ++i) {
      std::swap(tasks[i], tasks[i + pick(num_tasks - i)]);
    }
    size_t scope = 2 + pick(num_tasks - 1);
    std::string list;
    for (size_t i = 0; i < scope; ++i) {
      if (i > 0) list += ", ";
      list += "t" + Num(tasks[i]);
    }
    switch (pick(3)) {
      case 0:
        c.workflow += "Bind " + list + ";\n";
        break;
      case 1:
        c.workflow += "Separate " + list + ";\n";
        break;
      default:
        c.workflow +=
            "AtMost " + Num(1 + pick(scope - 1)) + " Of " + list + ";\n";
        break;
    }
  }
  return c;
}

Status RunDifferentialCase(uint64_t seed, DifferentialCase* out) {
  DifferentialCase c = GenerateCase(seed);
  if (out != nullptr) *out = c;

  org::OrgModel org;
  WFRM_RETURN_NOT_OK(org::ExecuteRdl(c.rdl, &org));
  policy::PolicyStore store(&org);
  WFRM_RETURN_NOT_OK(store.AddPolicyText(c.pl));
  core::ResourceManager rm(&org, &store);
  WFRM_ASSIGN_OR_RETURN(WorkflowSpec spec, ParseWorkflowSpec(c.workflow));

  WorkflowAnalyzer analyzer(&rm);
  AnalysisReport analysis;
  {
    WFRM_ASSIGN_OR_RETURN(analysis, analyzer.Analyze(spec));
  }
  if (out != nullptr) {
    out->satisfiable = analysis.solve.satisfiable;
    out->report = analysis.ToString();
    for (const StepCandidates& step : analysis.candidates) {
      out->candidate_total += step.candidates.size();
    }
  }

  // Judge 1+2: a claimed witness must satisfy the constraints (checked
  // independently) and every assignment must come from the oracle.
  if (analysis.solve.satisfiable) {
    std::vector<org::ResourceRef> picks;
    for (const WspAssignment& a : analysis.solve.witness) {
      picks.push_back(a.resource);
    }
    if (analysis.solve.witness.size() != spec.steps.size() ||
        !AssignmentSatisfies(spec, picks)) {
      return Status::ExecutionError(
          "solver witness violates the workflow constraints (seed " +
          Num(seed) + ")");
    }
    for (size_t i = 0; i < spec.steps.size(); ++i) {
      WFRM_RETURN_NOT_OK(VerifyAgainstOracle(&rm, spec.steps[i].rql,
                                             analysis.solve.witness[i]));
    }
  }

  // Judge 3: brute force must agree on satisfiability, and on the
  // minimum cost in valued mode.
  WFRM_ASSIGN_OR_RETURN(
      auto brute, BruteForceWitness(spec, analysis.candidates));
  if (brute.has_value() != analysis.solve.satisfiable) {
    return Status::ExecutionError(
        std::string("solver/brute-force disagreement: solver says ") +
        (analysis.solve.satisfiable ? "SAT" : "UNSAT") +
        ", brute force says " + (brute.has_value() ? "SAT" : "UNSAT") +
        " (seed " + Num(seed) + ")");
  }

  SolveOptions valued;
  valued.valued = true;
  WFRM_ASSIGN_OR_RETURN(SolveResult valued_solve,
                        SolveWsp(spec, analysis.candidates, valued));
  int64_t brute_min = BruteForceMinCost(spec, analysis.candidates);
  if (valued_solve.satisfiable != (brute_min >= 0)) {
    return Status::ExecutionError(
        "valued solver/brute-force SAT disagreement (seed " + Num(seed) +
        ")");
  }
  if (valued_solve.satisfiable && valued_solve.total_cost != brute_min) {
    return Status::ExecutionError(
        "valued solver found cost " + Num(valued_solve.total_cost) +
        " but the brute-forced optimum is " + Num(brute_min) + " (seed " +
        Num(seed) + ")");
  }
  return Status::OK();
}

Status DumpRepro(const DifferentialCase& c, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::ExecutionError("cannot create repro dir " + dir + ": " +
                                  ec.message());
  }
  std::string base = dir + "/case-" + Num(c.seed);
  struct {
    const char* suffix;
    const std::string* body;
  } files[] = {{".rdl", &c.rdl},
               {".pl", &c.pl},
               {".wf", &c.workflow},
               {".report.txt", &c.report}};
  for (const auto& f : files) {
    std::ofstream stream(base + f.suffix, std::ios::trunc);
    stream << *f.body;
    if (!stream.good()) {
      return Status::ExecutionError("cannot write " + base + f.suffix);
    }
  }
  return Status::OK();
}

}  // namespace wfrm::analysis
