#include "analysis/workflow_analyzer.h"

#include <algorithm>
#include <memory>
#include <random>
#include <set>
#include <utility>

namespace wfrm::analysis {

namespace {

/// C(n, k), saturating at cap + 1 (callers only care whether the exact
/// count fits under `cap`).
uint64_t CountCombinations(size_t n, size_t k, uint64_t cap) {
  uint64_t count = 1;
  for (size_t i = 0; i < k; ++i) {
    count = count * (n - i) / (i + 1);  // exact: consecutive product
    if (count > cap) return cap + 1;
  }
  return count;
}

/// Copies `candidates` with every resource in `killed` removed.
std::vector<StepCandidates> FilterUnavailable(
    const std::vector<StepCandidates>& candidates,
    const std::set<org::ResourceRef>& killed) {
  std::vector<StepCandidates> filtered = candidates;
  for (StepCandidates& step : filtered) {
    step.candidates.erase(
        std::remove_if(step.candidates.begin(), step.candidates.end(),
                       [&killed](const WspCandidate& c) {
                         return killed.count(c.resource) > 0;
                       }),
        step.candidates.end());
  }
  return filtered;
}

std::string RenderRefs(const std::vector<org::ResourceRef>& refs) {
  std::string out = "{";
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i > 0) out += ", ";
    out += refs[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace

WorkflowAnalyzer::WorkflowAnalyzer(core::ResourceManager* rm,
                                   AnalysisOptions options)
    : rm_(rm), options_(options) {
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  metrics_.solves_sat =
      reg->GetCounter("wfrm_analysis_solves_total", {{"outcome", "sat"}},
                      "Workflow satisfiability solves by outcome.");
  metrics_.solves_unsat =
      reg->GetCounter("wfrm_analysis_solves_total", {{"outcome", "unsat"}});
  metrics_.search_nodes =
      reg->GetCounter("wfrm_analysis_search_nodes_total", {},
                      "Candidate trials across all WSP searches.");
  metrics_.backtracks =
      reg->GetCounter("wfrm_analysis_backtracks_total", {},
                      "Backtracks across all WSP searches.");
  metrics_.candidates_derived =
      reg->GetCounter("wfrm_analysis_candidates_total", {},
                      "Step candidates derived through the pipeline.");
  metrics_.resiliency_subsets =
      reg->GetCounter("wfrm_analysis_resiliency_subsets_total", {},
                      "Unavailability subsets re-solved by resiliency sweeps.");
  metrics_.solve_micros =
      reg->GetHistogram("wfrm_analysis_solve_micros",
                        obs::Histogram::LatencyBucketsMicros(), {},
                        "End-to-end Analyze latency.");
}

Result<StepCandidates> WorkflowAnalyzer::DeriveOne(
    const WorkflowStep& step, obs::TraceSpan* parent) const {
  obs::ScopedSpan span(parent, "step");
  obs::Attr(span, "step", step.name);

  StepCandidates out;
  out.step = step.name;

  // Round 1: the pipeline as-is. A parse/bind error in the step's RQL is
  // an error of the spec, not an unsatisfiable instance — propagate it.
  WFRM_ASSIGN_OR_RETURN(core::QueryOutcome outcome, rm_->Submit(step.rql));
  if (!outcome.ok()) {
    out.enforcement_status = outcome.status;
    obs::Attr(span, "status", outcome.status.ToString());
    return out;
  }
  int primary_cost = outcome.used_substitution ? 1 : 0;
  for (const org::ResourceRef& ref : outcome.candidates) {
    out.candidates.push_back({ref, primary_cost});
  }

  // Round 2 (substitution tier): briefly occupy every primary candidate
  // and ask again — the pipeline itself falls through to its §4.3
  // alternatives, telling us who substitutes (at cost 1) when the
  // primaries are gone. The leases are released before returning.
  if (options_.include_substitution_tier && !outcome.used_substitution &&
      rm_->options().enable_substitution) {
    std::vector<core::Lease> held;
    held.reserve(outcome.candidates.size());
    for (const org::ResourceRef& ref : outcome.candidates) {
      Result<core::Lease> lease = rm_->AllocateLease(ref);
      if (lease.ok()) held.push_back(*lease);
    }
    Result<core::QueryOutcome> shadowed = rm_->Submit(step.rql);
    for (const core::Lease& lease : held) {
      rm_->Release(lease);  // best effort; the grant is ours and live
    }
    if (shadowed.ok() && shadowed->ok() && shadowed->used_substitution) {
      for (const org::ResourceRef& ref : shadowed->candidates) {
        out.candidates.push_back({ref, 1});
      }
    }
  }

  out.Normalize();
  if (span != nullptr) {
    size_t substitutes = 0;
    for (const WspCandidate& c : out.candidates) {
      if (c.cost > 0) ++substitutes;
    }
    obs::Attr(span, "candidates",
              static_cast<int64_t>(out.candidates.size()));
    obs::Attr(span, "substitutes", static_cast<int64_t>(substitutes));
  }
  return out;
}

Result<std::vector<StepCandidates>> WorkflowAnalyzer::DeriveCandidates(
    const WorkflowSpec& spec, obs::TraceSpan* parent) const {
  obs::ScopedSpan span(parent, "candidates");
  std::vector<StepCandidates> out;
  out.reserve(spec.steps.size());
  size_t total = 0;
  for (const WorkflowStep& step : spec.steps) {
    WFRM_ASSIGN_OR_RETURN(StepCandidates derived, DeriveOne(step, span));
    total += derived.candidates.size();
    out.push_back(std::move(derived));
  }
  if (metrics_.candidates_derived != nullptr) {
    metrics_.candidates_derived->Increment(total);
  }
  return out;
}

Result<ResiliencyReport> WorkflowAnalyzer::CheckResiliency(
    const WorkflowSpec& spec, const std::vector<StepCandidates>& candidates,
    bool base_satisfiable, obs::TraceSpan* parent) const {
  obs::ScopedSpan span(parent, "resiliency");
  ResiliencyReport report;
  report.checked = true;
  report.k = options_.resiliency_k;

  std::set<org::ResourceRef> universe;
  for (const StepCandidates& step : candidates) {
    for (const WspCandidate& c : step.candidates) universe.insert(c.resource);
  }
  report.universe_size = universe.size();
  obs::Attr(span, "k", static_cast<int64_t>(report.k));
  obs::Attr(span, "universe", static_cast<int64_t>(report.universe_size));

  // k = 0 is plain satisfiability; an already-unsatisfiable base cannot
  // be resilient to anything (the failing "subset" is the empty one).
  if (report.k == 0 || !base_satisfiable) {
    report.resilient = base_satisfiable;
    obs::Attr(span, "resilient", report.resilient ? "true" : "false");
    return report;
  }

  // Unsatisfiability is monotone in the unavailable set, so checking
  // exactly min(k, |universe|)-sized subsets covers every smaller loss.
  std::vector<org::ResourceRef> pool(universe.begin(), universe.end());
  size_t kk = std::min(report.k, pool.size());
  uint64_t total =
      CountCombinations(pool.size(), kk, options_.max_resiliency_subsets);
  report.sampled = total > options_.max_resiliency_subsets;

  SolveOptions solve_options;
  solve_options.valued = false;
  solve_options.max_nodes = options_.max_search_nodes;
  solve_options.minimize_core = false;

  report.resilient = true;
  auto check_subset =
      [&](const std::vector<size_t>& picked) -> Result<bool> {
    std::set<org::ResourceRef> killed;
    for (size_t i : picked) killed.insert(pool[i]);
    WFRM_ASSIGN_OR_RETURN(
        SolveResult solved,
        SolveWsp(spec, FilterUnavailable(candidates, killed), solve_options));
    ++report.subsets_checked;
    if (metrics_.resiliency_subsets != nullptr) {
      metrics_.resiliency_subsets->Increment();
    }
    if (metrics_.search_nodes != nullptr) {
      metrics_.search_nodes->Increment(solved.stats.nodes);
      metrics_.backtracks->Increment(solved.stats.backtracks);
    }
    if (!solved.satisfiable) {
      report.resilient = false;
      report.failing_subset.assign(killed.begin(), killed.end());
    }
    return report.resilient;
  };

  if (!report.sampled) {
    // Exhaustive: lexicographic enumeration of all kk-subsets.
    std::vector<size_t> idx(kk);
    for (size_t i = 0; i < kk; ++i) idx[i] = i;
    while (true) {
      WFRM_ASSIGN_OR_RETURN(bool still_resilient, check_subset(idx));
      if (!still_resilient) break;
      // Advance to the next combination.
      size_t i = kk;
      while (i > 0 && idx[i - 1] == pool.size() - kk + (i - 1)) --i;
      if (i == 0) break;
      ++idx[i - 1];
      for (size_t j = i; j < kk; ++j) idx[j] = idx[j - 1] + 1;
    }
  } else {
    // Sampled: seeded random kk-subsets via partial Fisher-Yates.
    std::mt19937_64 rng(options_.resiliency_sample_seed);
    std::vector<size_t> deck(pool.size());
    for (size_t i = 0; i < deck.size(); ++i) deck[i] = i;
    for (size_t s = 0; s < options_.max_resiliency_subsets; ++s) {
      for (size_t i = 0; i < kk; ++i) {
        std::uniform_int_distribution<size_t> pick(i, deck.size() - 1);
        std::swap(deck[i], deck[pick(rng)]);
      }
      std::vector<size_t> picked(deck.begin(), deck.begin() + kk);
      WFRM_ASSIGN_OR_RETURN(bool still_resilient, check_subset(picked));
      if (!still_resilient) break;
    }
  }

  obs::Attr(span, "subsets", static_cast<int64_t>(report.subsets_checked));
  obs::Attr(span, "sampled", report.sampled ? "true" : "false");
  obs::Attr(span, "resilient", report.resilient ? "true" : "false");
  return report;
}

Result<AnalysisReport> WorkflowAnalyzer::Analyze(
    const WorkflowSpec& spec) const {
  int64_t start_micros = rm_->clock().NowMicros();
  std::shared_ptr<obs::EnforcementTrace> trace;
  obs::TraceSpan* root = nullptr;
  if (options_.trace_sink != nullptr) {
    trace = std::make_shared<obs::EnforcementTrace>(
        "analyze " + (spec.name.empty() ? std::string("Unnamed") : spec.name),
        &rm_->clock());
    root = trace->root();
    obs::Attr(root, "steps", static_cast<int64_t>(spec.steps.size()));
    obs::Attr(root, "constraints",
              static_cast<int64_t>(spec.constraints.size()));
  }

  AnalysisReport report;
  report.workflow = spec.name;
  WFRM_ASSIGN_OR_RETURN(report.candidates, DeriveCandidates(spec, root));

  {
    obs::ScopedSpan solve_span(root, "solve");
    SolveOptions solve_options;
    solve_options.valued = options_.valued;
    solve_options.max_nodes = options_.max_search_nodes;
    WFRM_ASSIGN_OR_RETURN(report.solve,
                          SolveWsp(spec, report.candidates, solve_options));
    obs::Attr(solve_span, "outcome",
              report.solve.satisfiable ? "sat" : "unsat");
    obs::Attr(solve_span, "nodes",
              static_cast<int64_t>(report.solve.stats.nodes));
    obs::Attr(solve_span, "backtracks",
              static_cast<int64_t>(report.solve.stats.backtracks));
    if (report.solve.satisfiable) {
      obs::Attr(solve_span, "cost", report.solve.total_cost);
    }
  }
  if (metrics_.solves_sat != nullptr) {
    (report.solve.satisfiable ? metrics_.solves_sat : metrics_.solves_unsat)
        ->Increment();
    metrics_.search_nodes->Increment(report.solve.stats.nodes);
    metrics_.backtracks->Increment(report.solve.stats.backtracks);
  }

  WFRM_ASSIGN_OR_RETURN(
      report.resiliency,
      CheckResiliency(spec, report.candidates, report.solve.satisfiable,
                      root));

  report.elapsed_micros = rm_->clock().NowMicros() - start_micros;
  if (metrics_.solve_micros != nullptr) {
    metrics_.solve_micros->Observe(
        static_cast<double>(report.elapsed_micros));
  }
  if (trace != nullptr) {
    trace->Finish();
    options_.trace_sink->Add(std::move(trace));
  }
  return report;
}

std::string AnalysisReport::ToString() const {
  std::string out = "Workflow analysis: " +
                    (workflow.empty() ? std::string("Unnamed") : workflow);
  out += " (" + std::to_string(candidates.size()) + " steps)\n";

  out += "\n[1] Candidates (derived through the enforcement pipeline)\n";
  for (const StepCandidates& step : candidates) {
    size_t substitutes = 0;
    for (const WspCandidate& c : step.candidates) {
      if (c.cost > 0) ++substitutes;
    }
    if (step.candidates.empty()) {
      out += "    " + step.step + ": NONE";
      if (!step.enforcement_status.ok()) {
        out += " — " + step.enforcement_status.ToString();
      }
      out += "\n";
      continue;
    }
    out += "    " + step.step + ": " +
           std::to_string(step.candidates.size() - substitutes) +
           " primary + " + std::to_string(substitutes) + " substitute\n";
    for (const WspCandidate& c : step.candidates) {
      out += "      - " + c.resource.ToString() +
             (c.cost > 0 ? " (substitute, cost " + std::to_string(c.cost) +
                               ")"
                         : " (primary)") +
             "\n";
    }
  }

  out += "\n[2] Satisfiability: ";
  if (solve.satisfiable) {
    out += "SATISFIABLE (total cost " + std::to_string(solve.total_cost) +
           "; " + std::to_string(solve.stats.nodes) + " nodes, " +
           std::to_string(solve.stats.backtracks) + " backtracks)\n";
    for (const WspAssignment& a : solve.witness) {
      out += "      " + a.step + " -> " + a.resource.ToString() +
             (a.cost > 0 ? " (substitute, cost " + std::to_string(a.cost) +
                               ")"
                         : "") +
             "\n";
    }
  } else {
    out += "UNSATISFIABLE\n";
    out += "    " + solve.core.ToString() + "\n";
  }

  out += "\n[3] Resiliency";
  if (!resiliency.checked) {
    out += ": not checked\n";
  } else if (resiliency.k == 0) {
    out += " (k=0): equivalent to plain satisfiability — ";
    out += resiliency.resilient ? "resilient\n" : "not resilient\n";
  } else if (resiliency.resilient) {
    out += " (k=" + std::to_string(resiliency.k) + "): resilient — " +
           std::to_string(resiliency.subsets_checked) +
           (resiliency.sampled ? " sampled" : "") +
           " unavailability subsets over " +
           std::to_string(resiliency.universe_size) +
           " resources all satisfiable\n";
  } else {
    out += " (k=" + std::to_string(resiliency.k) + "): NOT resilient";
    if (resiliency.failing_subset.empty()) {
      out += " — unsatisfiable before any resource is lost\n";
    } else {
      out += " — fails when " + RenderRefs(resiliency.failing_subset) +
             " unavailable\n";
    }
  }
  return out;
}

}  // namespace wfrm::analysis
