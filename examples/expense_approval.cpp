// The Figure 8 scenario: approval authority depends on the requested
// amount. Small amounts route to the requester's manager (a nested SQL
// sub-query against the ReportsTo view); mid-range amounts to the
// manager's manager (an Oracle-style START WITH / CONNECT BY PRIOR
// hierarchical sub-query); larger amounts are not covered by any
// requirement policy, so any manager may approve.
//
//   ./build/examples/expense_approval

#include <cstdlib>
#include <iostream>

#include "core/resource_manager.h"
#include "testutil/paper_org.h"

namespace {

using wfrm::Status;

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Check(wfrm::Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

std::string ApprovalQuery(int64_t amount, const std::string& requester) {
  return "Select ContactInfo From Manager For Approval With Amount = " +
         std::to_string(amount) + " And Requester = '" + requester +
         "' And Location = 'PA'";
}

}  // namespace

int main() {
  auto world = Check(wfrm::testutil::BuildPaperWorld());
  wfrm::core::ResourceManager rm(world.org.get(), world.store.get());

  std::cout << "Management chain: alice -> carol -> dave -> erin\n"
            << "Figure 8 policies:\n"
            << "  Amount < 1000          -> the requester's manager\n"
            << "  1000 < Amount < 5000   -> the manager's manager\n"
            << "  otherwise              -> no extra requirement\n\n";

  for (int64_t amount : {250, 999, 1001, 2500, 4999, 5000, 9000}) {
    auto outcome = Check(rm.Submit(ApprovalQuery(amount, "alice")));
    std::cout << "Expense of $" << amount << " requested by alice:\n";
    std::cout << "  enforced: " << outcome.primary_queries[0] << "\n";
    if (outcome.ok()) {
      std::cout << "  approver candidate(s):";
      for (const auto& ref : outcome.candidates) {
        std::cout << " " << ref.id;
      }
      std::cout << "\n\n";
    } else {
      std::cout << "  " << outcome.status.ToString() << "\n\n";
    }
  }

  // The same policies route differently for a different requester:
  // carol's expenses go to dave (manager) or erin (manager's manager).
  for (int64_t amount : {500, 2500}) {
    auto outcome = Check(rm.Submit(ApprovalQuery(amount, "carol")));
    std::cout << "Expense of $" << amount << " requested by carol -> ";
    for (const auto& ref : outcome.candidates) std::cout << ref.id << " ";
    std::cout << "\n";
  }
  return 0;
}
