// A structured process graph on top of the resource manager: a product
// release where implementation and analysis run in PARALLEL (AND-split /
// AND-join), and an XOR-split routes the sign-off by expense amount —
// every activity staffed through policy enforcement.
//
//   ./build/examples/product_release

#include <cstdlib>
#include <iostream>

#include "testutil/paper_org.h"
#include "wf/graph.h"

namespace {

using wfrm::Status;

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Check(wfrm::Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  auto world = Check(wfrm::testutil::BuildPaperWorld());
  wfrm::core::ResourceManager rm(world.org.get(), world.store.get());
  wfrm::wf::GraphEngine engine(&rm);

  // fork ─┬─ implement ─┐
  //       └─ analyze  ──┴─ join ── triage ─┬─ big:  exec_signoff
  //                                        └─ else: signoff
  wfrm::wf::ProcessGraph release("product_release");
  Check(release.AddAndSplit("fork", {"implement", "analyze"}));
  Check(release.AddActivity(
      "implement",
      "Select ContactInfo From Engineer Where Location = 'PA' "
      "For Programming With NumberOfLines = 20000 And Location = 'PA'",
      "join"));
  Check(release.AddActivity(
      "analyze",
      "Select ContactInfo From Analyst Where Location = 'PA' "
      "For Analysis With NumberOfLines = 20000 And Location = 'PA'",
      "join"));
  Check(release.AddAndJoin("join", "triage"));
  Check(release.AddXorSplit(
      "triage", {{"${amount} > 1000", "exec_signoff"}, {"", "signoff"}}));
  Check(release.AddActivity(
      "signoff",
      "Select ContactInfo From Manager For Approval With "
      "Amount = ${amount} And Requester = ${requester} And Location = 'PA'",
      ""));
  Check(release.AddActivity(
      "exec_signoff",
      "Select ContactInfo From Manager For Approval With "
      "Amount = ${amount} And Requester = ${requester} And Location = 'PA'",
      ""));
  Check(release.SetStart("fork"));
  Check(release.Validate());

  for (const char* amount : {"800", "3000"}) {
    std::cout << "=== release with budget $" << amount << " ===\n";
    size_t id = Check(engine.StartCase(
        release, {{"amount", amount}, {"requester", "'alice'"}}));

    // Phase 1: both branches run in parallel, holding resources at once.
    auto pending = Check(engine.PendingActivities(id));
    std::cout << "parallel phase:";
    for (const auto& node : pending) std::cout << " " << node;
    std::cout << "\n";
    for (const std::string& node : pending) {
      auto item = Check(engine.StartActivity(id, node));
      std::cout << "  " << node << " -> " << item.resource.ToString() << "\n";
    }
    std::cout << "  (holding " << rm.num_allocated()
              << " resources concurrently)\n";
    for (const std::string& node : pending) {
      Check(engine.CompleteActivity(id, node));
    }

    // Phase 2: the join fired; the XOR routed the sign-off.
    pending = Check(engine.PendingActivities(id));
    for (const std::string& node : pending) {
      auto item = Check(engine.StartActivity(id, node));
      std::cout << "sign-off via '" << node << "' -> "
                << item.resource.ToString() << "\n";
      Check(engine.CompleteActivity(id, node));
    }
    std::cout << "case state: "
              << (Check(engine.GetState(id)) == wfrm::wf::CaseState::kCompleted
                      ? "completed"
                      : "running")
              << "\n\n";
  }
  return 0;
}
