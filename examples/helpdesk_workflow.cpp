// A workflow engine driving the resource manager: concurrent expense
// cases step through implement -> approve, competing for the same
// resource pool. Shows work-item assignment, allocation holds,
// policy-routed approvals, and substitution under contention (the
// paper's Figure 1 architecture in motion).
//
//   ./build/examples/helpdesk_workflow

#include <cstdlib>
#include <iostream>

#include "testutil/paper_org.h"
#include "wf/engine.h"

namespace {

using wfrm::Status;

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Check(wfrm::Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  auto world = Check(wfrm::testutil::BuildPaperWorld());
  wfrm::core::ResourceManager rm(world.org.get(), world.store.get());
  wfrm::wf::WorkflowEngine engine(&rm);

  // Each case: a PA engineer implements a 35k-line change for the Mexico
  // office (policy: Spanish-speaking, > 5 years), then a manager
  // approves the expense (policy: routed by amount).
  wfrm::wf::ProcessDefinition expense{
      "expense",
      {{"implement",
        "Select ContactInfo From Engineer Where Location = 'PA' "
        "For Programming With NumberOfLines = 35000 And "
        "Location = 'Mexico'"},
       {"approve",
        "Select ContactInfo From Manager For Approval With "
        "Amount = ${amount} And Requester = ${requester} And "
        "Location = 'PA'"}}};

  struct CaseSpec {
    const char* requester;
    const char* amount;
  };
  const CaseSpec specs[] = {{"alice", "400"}, {"carol", "2500"},
                            {"alice", "7000"}};

  std::vector<size_t> case_ids;
  for (const CaseSpec& spec : specs) {
    case_ids.push_back(engine.StartCase(
        expense,
        {{"requester", std::string("'") + spec.requester + "'"},
         {"amount", spec.amount}}));
  }

  // Phase 1: all cases request an implementer concurrently. The pool has
  // one compliant PA programmer; the second case is staffed through the
  // substitution policy (Cupertino); the third finds nothing — a
  // transient condition, so its case stays running and tries again
  // later.
  std::cout << "== implement phase ==\n";
  std::vector<size_t> staffed, stalled;
  for (size_t id : case_ids) {
    auto item = engine.Advance(id);
    if (item.ok()) {
      std::cout << "case " << id << ": '" << item->step_name
                << "' assigned to " << item->resource.ToString() << "\n";
      staffed.push_back(id);
    } else {
      std::cout << "case " << id << ": " << item.status().ToString()
                << " (case stays running)\n";
      stalled.push_back(id);
    }
  }

  // Phase 2: finish implementation, then route approvals.
  std::cout << "\n== approve phase ==\n";
  for (size_t id : staffed) {
    Check(engine.Complete(id));
    auto item = engine.Advance(id);
    if (item.ok()) {
      std::cout << "case " << id << ": '" << item->step_name
                << "' assigned to " << item->resource.ToString() << "\n";
      Check(engine.Complete(id));
    } else {
      std::cout << "case " << id << ": " << item.status().ToString() << "\n";
    }
  }

  // Phase 3: the implementers are free again — the stalled case resumes
  // where it left off instead of having failed.
  std::cout << "\n== retry phase ==\n";
  for (size_t id : stalled) {
    auto item = engine.Advance(id);
    if (!item.ok()) {
      std::cout << "case " << id << ": " << item.status().ToString() << "\n";
      continue;
    }
    std::cout << "case " << id << ": '" << item->step_name
              << "' assigned to " << item->resource.ToString()
              << " (after retry)\n";
    Check(engine.Complete(id));
    auto approve = Check(engine.Advance(id));
    std::cout << "case " << id << ": '" << approve.step_name
              << "' assigned to " << approve.resource.ToString() << "\n";
    Check(engine.Complete(id));
  }

  std::cout << "\n== audit trail ==\n";
  for (const auto& item : engine.history()) {
    std::cout << "case " << item.case_id << " step '" << item.step_name
              << "' done by " << item.resource.ToString() << "\n";
  }
  return 0;
}
