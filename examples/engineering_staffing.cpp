// The paper's running example, end to end: the Figure 4 query is pushed
// through the three rewritings (Figures 10, 11 and 12) and executed
// against the Figure 2/3 organization. Allocating the only compliant PA
// programmer then demonstrates the substitution fallback.
//
//   ./build/examples/engineering_staffing

#include <cstdlib>
#include <iostream>

#include "core/resource_manager.h"
#include "policy/rewriter.h"
#include "testutil/paper_org.h"

namespace {

using wfrm::Status;

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Check(wfrm::Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

constexpr char kFigure4[] =
    "Select ContactInfo From Engineer Where Location = 'PA' "
    "For Programming With NumberOfLines = 35000 And Location = 'Mexico'";

}  // namespace

int main() {
  auto world = Check(wfrm::testutil::BuildPaperWorld());
  wfrm::org::OrgModel& org = *world.org;
  wfrm::policy::PolicyStore& store = *world.store;

  std::cout << "Policy base (paper Figures 5, 6, 8, 9):\n"
            << wfrm::testutil::kPaperPolicies << "\n\n";

  auto query = Check(wfrm::rql::ParseAndBindRql(kFigure4, org));
  std::cout << "Figure 4  (initial query):\n  " << query.ToString() << "\n\n";

  wfrm::policy::Rewriter rewriter(&org, &store);

  // -- Figure 10: qualification-based rewriting --------------------------
  auto fanned = Check(rewriter.RewriteQualification(query));
  std::cout << "Figure 10 (qualification rewriting, " << fanned.size()
            << " query/queries):\n";
  for (const auto& q : fanned) std::cout << "  " << q.ToString() << "\n";
  std::cout << "\n";

  // -- Figure 11: requirement-based rewriting ----------------------------
  std::cout << "Figure 11 (requirement rewriting):\n";
  for (const auto& q : fanned) {
    auto enhanced = Check(rewriter.RewriteRequirement(q));
    std::cout << "  " << enhanced.ToString() << "\n";
  }
  std::cout << "\n";

  // -- Figure 12: substitution-based rewriting of the initial query ------
  auto alternatives = Check(rewriter.RewriteSubstitution(query));
  std::cout << "Figure 12 (substitution rewriting of the initial query):\n";
  for (const auto& q : alternatives) std::cout << "  " << q.ToString() << "\n";
  std::cout << "\n";

  // -- Execute through the resource manager ------------------------------
  wfrm::core::ResourceManager rm(&org, &store);
  auto outcome = Check(rm.Submit(kFigure4));
  std::cout << "Execution: " << outcome.candidates.size()
            << " available, policy-compliant resource(s):\n"
            << outcome.resources.ToString() << "\n";

  // Allocate bob; the next identical request must fall back to the
  // Figure 9 substitution policy and staff the Cupertino programmer.
  auto bob = Check(rm.Acquire(kFigure4));
  std::cout << "Allocated " << bob.resource.ToString()
            << "; resubmitting the same request...\n\n";
  auto fallback = Check(rm.Submit(kFigure4));
  std::cout << "Substitution used: "
            << (fallback.used_substitution ? "yes" : "no") << "\n";
  for (const auto& q : fallback.alternative_queries) {
    std::cout << "  alternative: " << q << "\n";
  }
  std::cout << fallback.resources.ToString();
  return 0;
}
