// Quickstart: build an organization model, load policies written in the
// policy language (PL), and submit resource queries (RQL) through the
// resource manager.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "core/resource_manager.h"
#include "org/org_model.h"
#include "policy/policy_store.h"

namespace {

using wfrm::Status;
using wfrm::rel::DataType;
using wfrm::rel::Value;

// Aborts with a message on failure — fine for an example.
void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

template <typename T>
T Check(wfrm::Result<T> result) {
  Check(result.status());
  return std::move(result).ValueOrDie();
}

}  // namespace

int main() {
  // 1. Model the organization: a small support team.
  wfrm::org::OrgModel org;
  Check(org.DefineResourceType("Staff", "",
                               {{"Name", DataType::kString},
                                {"Level", DataType::kInt},
                                {"Site", DataType::kString}}));
  Check(org.DefineResourceType("Agent", "Staff"));
  Check(org.DefineResourceType("Supervisor", "Staff"));

  Check(org.DefineActivityType("Ticket", "",
                               {{"Severity", DataType::kInt}}));
  Check(org.DefineActivityType("Incident", "Ticket"));

  Check(org.AddResource("Agent", "a1",
                        {{"Name", Value::String("Asha")},
                         {"Level", Value::Int(1)},
                         {"Site", Value::String("Lyon")}})
            .status());
  Check(org.AddResource("Agent", "a2",
                        {{"Name", Value::String("Ben")},
                         {"Level", Value::Int(3)},
                         {"Site", Value::String("Lyon")}})
            .status());
  Check(org.AddResource("Supervisor", "s1",
                        {{"Name", Value::String("Cora")},
                         {"Level", Value::Int(5)},
                         {"Site", Value::String("Lyon")}})
            .status());

  // 2. State the policies in PL. Qualification opens a resource type to
  // an activity type (closed world: everything else is ruled out);
  // requirement policies add necessary conditions per activity range.
  wfrm::policy::PolicyStore store(&org);
  Check(store.AddPolicyText(R"(
    Qualify Agent For Ticket;
    Require Agent Where Level >= 2 For Incident With Severity >= 3
  )"));

  // 3. Ask for resources in RQL. The policy manager rewrites the query
  // (qualification fan-out + requirement conjunction) before execution.
  wfrm::core::ResourceManager rm(&org, &store);

  std::cout << "-- low-severity incident: any agent qualifies --\n";
  auto low = Check(rm.Submit(
      "Select Name From Staff Where Site = 'Lyon' "
      "For Incident With Severity = 1"));
  std::cout << "enforced: " << low.primary_queries[0] << "\n"
            << low.resources.ToString() << "\n";

  std::cout << "-- high-severity incident: Level >= 2 enforced --\n";
  auto high = Check(rm.Submit(
      "Select Name From Staff Where Site = 'Lyon' "
      "For Incident With Severity = 4"));
  std::cout << "enforced: " << high.primary_queries[0] << "\n"
            << high.resources.ToString() << "\n";

  // 4. Allocation: acquired resources stop matching until released.
  auto ben = Check(rm.Acquire(
      "Select Name From Staff Where Site = 'Lyon' "
      "For Incident With Severity = 4"));
  std::cout << "acquired " << ben.resource.ToString() << " for the incident\n";
  auto rerun = Check(rm.Submit(
      "Select Name From Staff Where Site = 'Lyon' "
      "For Incident With Severity = 4"));
  std::cout << "while busy, the same request finds "
            << rerun.candidates.size() << " candidate(s); status: "
            << rerun.status.ToString() << "\n";
  Check(rm.Release(ben));
  std::cout << "released " << ben.resource.ToString() << "\n";
  return 0;
}
