// An interactive shell over the three Figure 1 interfaces:
//
//   * RDL  — Define ... / Insert ...           (resource definition)
//   * PL   — Qualify / Require / Substitute    (policy definition)
//   * RQL  — Select ... For ... With ...       (resource queries)
//
// plus management verbs:
//
//   policies            list the policy base
//   allocate <type> <id>  / release <type> <id>
//   explain <rql>       full decision report (stages, PIDs) without allocating
//   open <dir>          open a durable home: paged B-tree + WAL recovery
//                       (exclusive lockfile; stale locks are broken),
//                       then journal every later mutation
//   save <dir>          checkpoint the open home / export this session
//   status              health report (degraded state, WAL, replication)
//   replica <dir>       attach a follower store; WAL frames ship to it
//   sync                pump the replication link until the follower is
//                       caught up
//   partition on|off    sever / heal the replication link
//   failover            promote the follower (fenced epoch bump) and
//                       continue the session on it
//   shards <dir> <n>    open a sharded cluster (n primary+standby pairs);
//                       RDL/PL/RQL then route by the current tenant key
//   tenant <name>       set the routing key (prints its home shard)
//   kill <i>            crash shard i's primary, promote its standby,
//                       re-attach a fresh standby
//   rebalance <i>       migrate shard i onto a fresh home (chunked
//                       snapshot catch-up, epoch-fenced cutover)
//   demo                load the paper's running example
//   help, quit
//
// Degraded mutations fail fast with a typed reason plus a repair hint
// (checkpoint for a broken WAL, failover/heal for a lost replica link).
//
// Run interactively, or pipe a script:
//   echo "demo
//   Select ContactInfo From Engineer Where Location = 'PA' For Programming
//   With NumberOfLines = 35000 And Location = 'Mexico'" | ./build/examples/wfrm_shell

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include <fstream>

#include "analysis/workflow_analyzer.h"
#include "analysis/workflow_spec.h"
#include "common/retry.h"
#include "core/resource_manager.h"
#include "org/rdl_dump.h"
#include "org/rdl_parser.h"
#include "policy/analyzer.h"
#include "policy/pl_dump.h"
#include "policy/policy_manager.h"
#include "shard/shard_cluster.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "store/durable_rm.h"
#include "store/replication.h"
#include "testutil/paper_org.h"

namespace {

using namespace wfrm;  // NOLINT

struct Shell {
  std::unique_ptr<org::OrgModel> org = std::make_unique<org::OrgModel>();
  std::unique_ptr<policy::PolicyStore> store =
      std::make_unique<policy::PolicyStore>(org.get());
  std::unique_ptr<core::ResourceManager> rm =
      std::make_unique<core::ResourceManager>(org.get(), store.get());
  /// Non-null after `open <dir>`: every mutation is then journaled to
  /// the directory's WAL and survives a crash or restart.
  std::unique_ptr<store::DurableResourceManager> durable;
  /// Replication pair, non-null after `replica <dir>`: a standby store
  /// fed by a WAL shipper over an in-process link (with a partition
  /// toggle for demonstrating degraded mode and failover).
  std::unique_ptr<store::DurableResourceManager> replica;
  std::unique_ptr<store::ReplicaApplier> applier;
  std::unique_ptr<store::InProcessTransport> link;
  std::unique_ptr<store::FaultInjectingTransport> chaos_link;
  std::unique_ptr<store::WalShipper> shipper;
  /// Sharded mode, non-null after `shards <dir> <n>`: RDL/PL/RQL route
  /// through the router under the current tenant's home shard.
  std::unique_ptr<shard::ShardCluster> cluster;
  std::unique_ptr<shard::ShardMap> shard_map;
  std::unique_ptr<shard::ShardRouter> router;
  std::string tenant = "default";

  /// In sharded mode, the current tenant's home primary (pinned so
  /// references handed out by Org()/Store()/Rm() stay alive across a
  /// concurrent failover). Null otherwise, or while a shard is offline
  /// between a kill and its promotion.
  std::shared_ptr<store::DurableResourceManager> pinned_home;

  store::DurableResourceManager* TenantHome() {
    if (!cluster) return nullptr;
    pinned_home = cluster->Primary(shard_map->Resolve(tenant));
    return pinned_home.get();
  }

  org::OrgModel& Org() {
    if (auto* home = TenantHome()) return home->org();
    return durable ? durable->org() : *org;
  }
  policy::PolicyStore& Store() {
    if (auto* home = TenantHome()) return home->store();
    return durable ? durable->store() : *store;
  }
  core::ResourceManager& Rm() {
    if (auto* home = TenantHome()) return home->rm();
    return durable ? durable->rm() : *rm;
  }

  void DropReplication() {
    shipper.reset();
    chaos_link.reset();
    link.reset();
    applier.reset();
    replica.reset();
  }

  /// One quiet replication pump after each command — the shell's
  /// equivalent of a background shipping loop.
  void PumpReplication() {
    if (shipper) (void)shipper->Pump();
    if (cluster) (void)cluster->PumpAll();
  }

  void DropShards() {
    router.reset();
    shard_map.reset();
    pinned_home.reset();
    cluster.reset();
  }

  /// Prints a mutation outcome; a typed kDegraded refusal also gets the
  /// matching repair hint so the operator knows which verb heals it.
  void ReportMutation(const Status& st) {
    if (st.ok()) {
      std::cout << "ok\n";
      return;
    }
    std::cout << st.ToString() << "\n";
    if (st.code() != StatusCode::kDegraded) return;
    const std::string& reason = st.message();
    const bool wal_broken =
        reason.find("wal") != std::string::npos ||
        reason.find("WAL") != std::string::npos ||
        (durable && !durable->wal_healthy());
    if (wal_broken) {
      std::cout << "  repair: 'save' — a checkpoint rewrites the snapshot "
                   "and starts a fresh WAL\n";
    } else if (cluster) {
      std::cout << "  repair: 'kill <i>' promotes the shard's standby; "
                   "'partition <i> off' heals a severed link\n";
    } else {
      std::cout << "  repair: 'failover' promotes the replica; "
                   "'partition off' heals the link\n";
    }
  }

  void PrintShardStatus() {
    for (size_t s = 0; s < cluster->num_shards(); ++s) {
      const shard::ShardStatus st = cluster->StatusOf(s);
      std::cout << "  shard " << s << ": " << st.primary_dir << " (epoch "
                << st.epoch << ", seq " << st.last_seq << ", "
                << (st.has_standby
                        ? "standby lag " + std::to_string(st.lag_records)
                        : "NO STANDBY")
                << ")";
      if (st.partitioned) std::cout << " PARTITIONED";
      if (st.degraded) std::cout << " DEGRADED: " << st.degraded_reason;
      if (st.diverged) std::cout << " DIVERGED";
      std::cout << "\n";
    }
    std::cout << "  tenant '" << tenant << "' -> shard "
              << shard_map->Resolve(tenant) << "\n";
  }

  void PrintStatus() {
    if (!durable) {
      std::cout << "mode: volatile (in-memory only; 'open <dir>' for "
                   "durability)\n";
      return;
    }
    std::cout << "mode: durable home " << durable->dir() << " (last seq "
              << durable->last_seq() << ")\n";
    std::cout << "wal: " << (durable->wal_healthy() ? "healthy" : "BROKEN")
              << "\n";
    if (durable->degraded()) {
      std::cout << "health: DEGRADED — " << durable->degraded_reason()
                << " (reads keep serving; mutations fail fast)\n";
    } else {
      std::cout << "health: ok\n";
    }
    if (shipper) {
      std::cout << "replica: " << replica->dir() << " (epoch "
                << shipper->epoch() << ", lag " << shipper->lag_records()
                << " records / " << shipper->lag_bytes() << " bytes";
      if (chaos_link->partitioned()) std::cout << ", link PARTITIONED";
      if (shipper->fenced()) std::cout << ", FENCED";
      if (shipper->divergence_detected() || applier->diverged()) {
        std::cout << ", DIVERGED";
      }
      std::cout << ")\n";
    }
  }

  void LoadDemo() {
    auto world = testutil::BuildPaperWorld();
    if (!world.ok()) {
      std::cout << "demo failed: " << world.status().ToString() << "\n";
      return;
    }
    durable.reset();
    org = std::move(world->org);
    store = std::move(world->store);
    rm = std::make_unique<core::ResourceManager>(org.get(), store.get());
    std::cout << "loaded the paper's organization and policy base "
              << "(Figures 2, 3, 5, 6, 8, 9)\n";
  }

  void ListPolicies() {
    for (const auto& q : Store().ListQualifications()) {
      std::cout << "  #" << q.pid << "  " << q.policy.ToString() << "\n";
    }
    auto reqs = Store().ListRequirements();
    if (reqs.ok()) {
      for (const auto& g : *reqs) {
        std::cout << "  group " << g.group << "  Require " << g.resource;
        if (!g.where_clause.empty()) {
          std::cout << " Where " << g.where_clause;
        }
        std::cout << " For " << g.activity << "\n";
        for (const std::string& r : g.ranges) {
          std::cout << "      With " << r << "\n";
        }
      }
    }
    auto subs = Store().ListSubstitutions();
    if (subs.ok()) {
      for (const auto& g : *subs) {
        std::cout << "  group " << g.group << "  Substitute " << g.resource;
        if (!g.where_clause.empty()) std::cout << " Where " << g.where_clause;
        std::cout << " By " << g.substituting_resource;
        if (!g.substituting_where.empty()) {
          std::cout << " Where " << g.substituting_where;
        }
        std::cout << " For " << g.activity << "\n";
      }
    }
  }

  void Explain(const std::string& rql) {
    // The full per-stage decision report (qualification fan-out,
    // requirement conjuncts with their PIDs, substitution alternatives,
    // availability) — enforcement runs, but nothing is allocated.
    if (durable && durable->degraded()) {
      std::cout << "note: store is degraded (" << durable->degraded_reason()
                << ") — reads like this keep serving, mutations fail fast\n";
    }
    auto report = Rm().Explain(rql);
    if (!report.ok()) {
      std::cout << "error: " << report.status().ToString() << "\n";
      return;
    }
    std::cout << *report;
  }

  void Submit(const std::string& rql) {
    auto outcome = cluster ? router->Enforce(tenant, rql) : Rm().Submit(rql);
    if (!outcome.ok()) {
      std::cout << "error: " << outcome.status().ToString() << "\n";
      if (outcome.status().code() == StatusCode::kDegraded) {
        std::cout << "  (reads can be served from the degraded shard with "
                     "read_on_degraded routers; this shell routes strictly)\n";
      }
      return;
    }
    for (const auto& q : outcome->primary_queries) {
      std::cout << "  enforced: " << q << "\n";
    }
    for (const auto& q : outcome->alternative_queries) {
      std::cout << "  alternative: " << q << "\n";
    }
    if (!outcome->ok()) {
      std::cout << "  " << outcome->status.ToString() << "\n";
      return;
    }
    std::cout << outcome->resources.ToString();
  }

  // Returns false on quit.
  bool Dispatch(const std::string& line) {
    std::istringstream words(line);
    std::string verb;
    words >> verb;
    std::string lower = AsciiToLower(verb);

    if (lower.empty()) return true;
    if (lower == "quit" || lower == "exit") return false;
    if (lower == "help") {
      std::cout
          << "  Define/Insert ...   RDL (types, relationships, resources)\n"
          << "  Qualify/Require/Substitute ...   PL (policies)\n"
          << "  Select ... For ... With ...      RQL (resource query)\n"
          << "  explain <rql>       full decision report without allocating\n"
          << "  why <rql>           per-policy applicability verdicts\n"
          << "  policies            list the policy base\n"
          << "  allocate <type> <id> | release <type> <id>\n"
          << "  analyze             policy-base consistency report\n"
          << "  analyze <file> [k] [valued]   workflow satisfiability\n"
          << "                      report: staffing witness or minimal\n"
          << "                      UNSAT core, plus k-resiliency when\n"
          << "                      k > 0 and min-cost staffing when\n"
          << "                      'valued'\n"
          << "  open <dir>          open a durable home (paged B-tree +\n"
          << "                      WAL); mutations are journaled from\n"
          << "                      then on. Takes an exclusive lockfile:\n"
          << "                      a second open of a live home fails\n"
          << "                      fast; a stale lock left by a dead\n"
          << "                      process is broken automatically\n"
          << "  save <dir>          checkpoint the open home, or write a\n"
          << "                      fresh durable home from this session\n"
          << "  status              health report (degraded state, WAL,\n"
          << "                      replication lag/epoch)\n"
          << "  stats               retrieval/cache counters (plan cache,\n"
          << "                      compiled tables, rewrite LRU, epoch);\n"
          << "                      with a cluster open, also per-shard\n"
          << "                      admission queue depth, shed/rejected\n"
          << "                      counts and breaker state\n"
          << "  replica <dir>       attach a follower store fed by WAL\n"
          << "                      shipping\n"
          << "  sync                pump replication until caught up\n"
          << "  partition on|off    sever / heal the replication link\n"
          << "  failover            promote the follower (fenced epoch\n"
          << "                      bump) and continue the session on it\n"
          << "  shards <dir> <n>    open a sharded cluster of n\n"
          << "                      primary+standby pairs; RDL/PL/RQL then\n"
          << "                      route by the current tenant key\n"
          << "  tenant <name>       set the routing key (prints home shard)\n"
          << "  kill <i>            crash shard i's primary, promote its\n"
          << "                      standby, re-attach a fresh standby\n"
          << "  rebalance <i>       migrate shard i onto a fresh home\n"
          << "  partition <i> on|off  sever / heal shard i's standby link\n"
          << "  load <file>         read a plain-text RDL+PL script\n"
          << "  demo                load the paper's example org\n"
          << "  quit\n";
      return true;
    }
    if (lower == "demo") {
      DropReplication();
      DropShards();
      LoadDemo();
      return true;
    }
    if (lower == "status") {
      if (cluster) {
        PrintShardStatus();
      } else {
        PrintStatus();
      }
      return true;
    }
    if (lower == "stats") {
      const policy::PolicyStore& s = Store();
      const policy::StoreStatsSnapshot snap = s.StatsSnapshot();
      std::cout << "retrievals:          " << snap.retrievals << "\n"
                << "candidate rows:      " << snap.candidate_rows << "\n"
                << "interval rows:       " << snap.interval_rows << "\n"
                << "plans filter-first:  " << snap.plans_filter_first << "\n"
                << "plans policies-first:" << snap.plans_policies_first << "\n"
                << "retrieval cache:     " << snap.cache_hits << " hit / "
                << snap.cache_misses << " miss / "
                << snap.cache_invalidations << " stale\n"
                << "rewrite cache:       " << snap.rewrite_cache_hits
                << " hit / " << snap.rewrite_cache_misses << " miss\n"
                << "plan cache:          " << snap.plan_cache_hits
                << " hit / " << snap.plan_cache_misses << " miss ("
                << s.plan_cache().size() << " plans resident)\n"
                << "compiled tables:     " << snap.compiled_builds
                << " built / " << snap.compiled_probes << " probes\n"
                << "epoch:               " << snap.epoch << "\n";
      if (router) {
        std::cout << "admission:           " << router->admission_shed()
                  << " shed / " << router->admission_rejected()
                  << " rejected, " << router->breaker_fast_failures()
                  << " breaker fast-fails\n";
        for (shard::ShardId s = 0; s < cluster->num_shards(); ++s) {
          std::cout << "shard " << s << ":             queue depth "
                    << router->queue_depth(s) << ", breaker "
                    << BreakerStateName(router->BreakerStateOf(s)) << "\n";
        }
      }
      return true;
    }
    if (lower == "shards") {
      std::string path;
      size_t n = 0;
      words >> path >> n;
      if (path.empty() && cluster) {
        PrintShardStatus();
        return true;
      }
      if (path.empty() || n == 0) {
        std::cout << "usage: shards <dir> <n>\n";
        return true;
      }
      shard::ShardClusterOptions options;
      options.num_shards = n;
      auto opened = shard::ShardCluster::Open(path, options);
      if (!opened.ok()) {
        std::cout << "shards failed: " << opened.status().ToString() << "\n";
        return true;
      }
      DropReplication();
      DropShards();
      durable.reset();
      cluster = std::move(*opened);
      shard_map = std::make_unique<shard::ShardMap>(n);
      // Interactive shell: no retry loop — a typed refusal surfaces
      // immediately with its repair hint instead of stalling the prompt.
      shard::ShardRouterOptions router_options;
      router_options.retry = RetryPolicy::None();
      router = std::make_unique<shard::ShardRouter>(
          cluster.get(), shard_map.get(), router_options);
      std::cout << "opened " << n << "-shard cluster at " << path
                << " (each shard a primary+standby pair)\n";
      PrintShardStatus();
      return true;
    }
    if (lower == "tenant") {
      std::string name;
      words >> name;
      if (name.empty()) {
        std::cout << "usage: tenant <name>\n";
        return true;
      }
      tenant = name;
      if (cluster) {
        std::cout << "tenant '" << tenant << "' -> shard "
                  << shard_map->Resolve(tenant) << "\n";
      } else {
        std::cout << "tenant '" << tenant
                  << "' (takes effect under 'shards <dir> <n>')\n";
      }
      return true;
    }
    if (lower == "kill") {
      shard::ShardId id = 0;
      if (!(words >> id) || !cluster || id >= cluster->num_shards()) {
        std::cout << (cluster ? "usage: kill <shard>\n"
                              : "no cluster open ('shards <dir> <n>')\n");
        return true;
      }
      (void)cluster->Drain(id);  // Promotion should not lose tail records.
      auto epoch = cluster->Failover(id, shard::ShardCluster::FailoverMode::kKillPrimary);
      if (!epoch.ok()) {
        std::cout << "kill failed: " << epoch.status().ToString() << "\n";
        return true;
      }
      std::cout << "shard " << id << ": primary killed, standby promoted at "
                << "epoch " << *epoch << "\n";
      Status st = cluster->AttachStandby(id);
      if (st.ok()) st = cluster->Drain(id);
      std::cout << (st.ok() ? "shard " + std::to_string(id) +
                                  ": fresh standby attached and caught up"
                            : st.ToString())
                << "\n";
      return true;
    }
    if (lower == "rebalance") {
      shard::ShardId id = 0;
      if (!(words >> id) || !cluster || id >= cluster->num_shards()) {
        std::cout << (cluster ? "usage: rebalance <shard>\n"
                              : "no cluster open ('shards <dir> <n>')\n");
        return true;
      }
      auto epoch = cluster->Rebalance(id);
      if (!epoch.ok()) {
        std::cout << "rebalance failed: " << epoch.status().ToString() << "\n";
        return true;
      }
      const shard::ShardStatus st = cluster->StatusOf(id);
      std::cout << "shard " << id << ": migrated onto " << st.primary_dir
                << " at epoch " << *epoch << " (" << st.rebalance_records
                << " records/chunks shipped so far)\n";
      Status attach = cluster->AttachStandby(id);
      if (attach.ok()) attach = cluster->Drain(id);
      std::cout << (attach.ok() ? "shard " + std::to_string(id) +
                                      ": fresh standby attached and caught up"
                                : attach.ToString())
                << "\n";
      return true;
    }
    if (lower == "replica") {
      std::string path;
      words >> path;
      if (path.empty()) {
        std::cout << "usage: replica <dir>\n";
        return true;
      }
      if (!durable) {
        std::cout << "no durable home open ('open <dir>' first) — only a "
                     "journaled store can ship its WAL\n";
        return true;
      }
      auto standby = store::DurableResourceManager::Open(path);
      if (!standby.ok()) {
        std::cout << "replica failed: " << standby.status().ToString() << "\n";
        return true;
      }
      auto attached = store::ReplicaApplier::Attach(standby->get());
      if (!attached.ok()) {
        std::cout << "replica failed: " << attached.status().ToString()
                  << "\n";
        return true;
      }
      DropReplication();
      replica = std::move(*standby);
      applier = std::move(*attached);
      link = std::make_unique<store::InProcessTransport>(applier.get());
      chaos_link = std::make_unique<store::FaultInjectingTransport>(
          link.get(), nullptr);
      // The primary must ship above every epoch the follower has lived
      // through, or a follower that was once promoted would fence us.
      shipper = std::make_unique<store::WalShipper>(
          durable.get(), chaos_link.get(), applier->epoch() + 1);
      Status st = shipper->Pump();
      if (!st.ok()) {
        std::cout << "replica attached, first pump failed: " << st.ToString()
                  << "\n";
        return true;
      }
      std::cout << "replicating " << durable->dir() << " -> " << path
                << " (epoch " << shipper->epoch() << ", follower at seq "
                << shipper->acked_seq() << ")\n";
      return true;
    }
    if (lower == "sync") {
      if (!shipper) {
        std::cout << "no replica attached ('replica <dir>' first)\n";
        return true;
      }
      Status st = shipper->Pump();
      if (!st.ok()) {
        std::cout << "sync failed: " << st.ToString() << "\n";
        return true;
      }
      std::cout << "follower at seq " << shipper->acked_seq() << " (lag "
                << shipper->lag_records() << ")\n";
      return true;
    }
    if (lower == "partition" && cluster) {
      shard::ShardId id = 0;
      std::string setting;
      if (!(words >> id >> setting) || id >= cluster->num_shards() ||
          (setting != "on" && setting != "off")) {
        std::cout << "usage: partition <shard> on|off\n";
        return true;
      }
      Status st = cluster->SetPartitioned(id, setting == "on");
      if (!st.ok()) {
        std::cout << st.ToString() << "\n";
      } else if (setting == "on") {
        std::cout << "shard " << id << ": link severed; shard degraded "
                  << "(mutations fail fast with a typed reason)\n";
      } else {
        std::cout << "shard " << id << ": link healed\n";
      }
      return true;
    }
    if (lower == "partition") {
      std::string setting;
      words >> setting;
      if (!chaos_link || (setting != "on" && setting != "off")) {
        std::cout << (chaos_link ? "usage: partition on|off\n"
                                 : "no replica attached\n");
        return true;
      }
      chaos_link->SetPartitioned(setting == "on");
      if (setting == "on") {
        // Surface the partition as an explicit degraded state so reads
        // keep serving while mutations fail fast with a typed status.
        durable->EnterDegraded("replication link partitioned");
        std::cout << "link severed; primary degraded (reads only)\n";
      } else {
        durable->ExitDegraded();
        std::cout << "link healed\n";
      }
      return true;
    }
    if (lower == "failover") {
      if (!applier) {
        std::cout << "no replica attached ('replica <dir>' first)\n";
        return true;
      }
      auto epoch = applier->Promote();
      if (!epoch.ok()) {
        std::cout << "failover failed: " << epoch.status().ToString() << "\n";
        return true;
      }
      // Show the fence working: the demoted primary's next ship is
      // rejected as stale.
      if (shipper) (void)shipper->Pump();
      const bool fenced = shipper && shipper->fenced();
      std::cout << "promoted " << replica->dir() << " at epoch " << *epoch
                << " (follower seq " << replica->last_seq() << ")"
                << (fenced ? "; old primary fenced" : "") << "\n";
      durable = std::move(replica);
      DropReplication();
      return true;
    }
    if (lower == "open") {
      std::string path;
      words >> path;
      if (path.empty()) {
        std::cout << "usage: open <dir>\n";
        return true;
      }
      auto opened = store::DurableResourceManager::Open(path);
      if (!opened.ok()) {
        std::cout << "open failed: " << opened.status().ToString() << "\n";
        return true;
      }
      DropReplication();
      DropShards();
      durable = std::move(*opened);
      const auto& info = durable->recovery_info();
      std::cout << "opened " << path << " (snapshot "
                << (info.snapshot_loaded ? "loaded" : "absent") << ", "
                << info.wal_records_replayed << " wal records replayed";
      if (info.wal_records_skipped > 0) {
        std::cout << ", " << info.wal_records_skipped << " skipped";
      }
      if (info.torn_tail) std::cout << ", torn tail truncated";
      if (info.migrated_legacy) std::cout << ", legacy snapshot migrated";
      if (info.tmp_files_reaped > 0) {
        std::cout << ", " << info.tmp_files_reaped << " orphaned tmp reaped";
      }
      std::cout << ")\n";
      return true;
    }
    if (lower == "save") {
      std::string path;
      words >> path;
      if (durable && (path.empty() || path == durable->dir())) {
        Status st = durable->Checkpoint();
        std::cout << (st.ok() ? "checkpointed " + durable->dir()
                              : st.ToString())
                  << "\n";
        return true;
      }
      if (path.empty()) {
        std::cout << "usage: save <dir>\n";
        return true;
      }
      Status st =
          store::DurableResourceManager::SaveWorld(path, Org(), Store(), Rm());
      std::cout << (st.ok() ? "saved durable home " + path : st.ToString())
                << "\n";
      return true;
    }
    if (lower == "load") {
      std::string path;
      words >> path;
      if (path.empty()) {
        std::cout << "usage: load <file>\n";
        return true;
      }
      std::ifstream in(path);
      if (!in) {
        std::cout << "cannot open " << path << "\n";
        return true;
      }
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      size_t split = content.find("-- POLICIES --");
      std::string rdl_part = content.substr(0, split);
      std::string pl_part =
          split == std::string::npos ? "" : content.substr(split + 14);
      auto fresh_org = std::make_unique<wfrm::org::OrgModel>();
      Status st = wfrm::org::ExecuteRdl(rdl_part, fresh_org.get());
      if (!st.ok()) {
        std::cout << "load failed: " << st.ToString() << "\n";
        return true;
      }
      auto fresh_store =
          std::make_unique<wfrm::policy::PolicyStore>(fresh_org.get());
      if (!pl_part.empty()) {
        st = fresh_store->AddPolicyText(pl_part);
        if (!st.ok()) {
          std::cout << "load failed: " << st.ToString() << "\n";
          return true;
        }
      }
      DropReplication();
      DropShards();
      durable.reset();
      org = std::move(fresh_org);
      store = std::move(fresh_store);
      rm = std::make_unique<wfrm::core::ResourceManager>(org.get(),
                                                         store.get());
      std::cout << "loaded " << path << "\n";
      return true;
    }
    if (lower == "why") {
      std::string rql = line.substr(line.find(verb) + verb.size());
      auto query = rql::ParseAndBindRql(rql, Org());
      if (!query.ok()) {
        std::cout << "error: " << query.status().ToString() << "\n";
        return true;
      }
      auto quals =
          Store().QualifiedSubtypes(query->resource(), query->activity());
      if (quals.ok()) {
        std::cout << "qualification (CWA): ";
        if (quals->empty()) {
          std::cout << "NO sub-type of " << query->resource()
                    << " is qualified for " << query->activity() << "\n";
        } else {
          for (const auto& t : *quals) std::cout << t << " ";
          std::cout << "\n";
        }
      }
      auto diags = Store().DiagnoseRequirements(
          query->resource(), query->activity(), query->spec.AsParams());
      if (!diags.ok()) {
        std::cout << "error: " << diags.status().ToString() << "\n";
        return true;
      }
      using V = wfrm::policy::PolicyStore::RequirementDiagnosis::Verdict;
      for (const auto& d : *diags) {
        const char* verdict = d.verdict == V::kApplied ? "APPLIED "
                              : d.verdict == V::kResourceMismatch
                                  ? "resource"
                              : d.verdict == V::kActivityMismatch
                                  ? "activity"
                                  : "range   ";
        std::cout << "  [" << verdict << "] group " << d.group << " ("
                  << d.resource << " / " << d.activity << "): " << d.detail
                  << "\n";
      }
      return true;
    }
    if (lower == "analyze") {
      std::string file;
      words >> file;
      if (file.empty()) {
        wfrm::policy::PolicyAnalyzer analyzer(&Store());
        auto report = analyzer.Report();
        std::cout << (report.ok() ? *report : report.status().ToString())
                  << "\n";
        return true;
      }
      std::ifstream in(file);
      if (!in) {
        std::cout << "error: cannot open '" << file << "'\n";
        return true;
      }
      std::stringstream script;
      script << in.rdbuf();
      analysis::AnalysisOptions options;
      std::string flag;
      while (words >> flag) {
        if (AsciiToLower(flag) == "valued") {
          options.valued = true;
          continue;
        }
        char* end = nullptr;
        unsigned long k = std::strtoul(flag.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          std::cout << "usage: analyze <file> [k] [valued]\n";
          return true;
        }
        options.resiliency_k = static_cast<size_t>(k);
      }
      auto spec = analysis::ParseWorkflowSpec(script.str());
      if (!spec.ok()) {
        std::cout << "error: " << spec.status().ToString() << "\n";
        return true;
      }
      analysis::WorkflowAnalyzer analyzer(&Rm(), options);
      auto report = analyzer.Analyze(*spec);
      std::cout << (report.ok() ? report->ToString()
                                : "error: " + report.status().ToString())
                << "\n";
      return true;
    }
    if (lower == "policies") {
      ListPolicies();
      return true;
    }
    if (lower == "allocate" || lower == "release") {
      std::string type, id;
      words >> type >> id;
      if (type.empty() || id.empty()) {
        std::cout << "usage: " << lower << " <type> <id>\n";
        return true;
      }
      org::ResourceRef ref{type, id};
      Status st;
      store::DurableResourceManager* home =
          cluster ? TenantHome() : durable.get();
      if (home != nullptr) {
        st = lower == "allocate" ? home->AllocateLease(ref).status()
                                 : home->Release(ref);
      } else if (cluster) {
        st = Status::ResourceUnavailable("tenant's home shard is offline");
      } else {
        st = lower == "allocate" ? rm->Allocate(ref) : rm->Release(ref);
      }
      ReportMutation(st);
      return true;
    }
    if (lower == "explain") {
      Explain(line.substr(line.find(verb) + verb.size()));
      return true;
    }
    if (lower == "define" || lower == "insert") {
      Status st = cluster   ? router->ExecuteRdl(tenant, line)
                  : durable ? durable->ExecuteRdl(line)
                            : org::ExecuteRdl(line, org.get());
      ReportMutation(st);
      return true;
    }
    if (lower == "qualify" || lower == "require" || lower == "substitute") {
      Status st = cluster   ? router->AddPolicyText(tenant, line)
                  : durable ? durable->AddPolicyText(line)
                            : store->AddPolicyText(line);
      ReportMutation(st);
      return true;
    }
    if (lower == "select") {
      Submit(line);
      return true;
    }
    std::cout << "unknown command '" << verb << "' (try: help)\n";
    return true;
  }
};

}  // namespace

int main() {
  Shell shell;
  std::cout << "wfrm shell — type 'help' for commands, 'demo' to load the "
               "paper's example.\n";
  std::string line;
  // Statements may span lines; a line ending in '\' continues.
  while (true) {
    std::cout << "wfrm> " << std::flush;
    std::string statement;
    while (true) {
      if (!std::getline(std::cin, line)) return 0;
      if (!line.empty() && line.back() == '\\') {
        statement += line.substr(0, line.size() - 1) + " ";
        continue;
      }
      statement += line;
      break;
    }
    if (!shell.Dispatch(statement)) return 0;
    shell.PumpReplication();
  }
}
